//! The installation engine: dependency-ordered parallel builds from source
//! or binary cache (paper §3.1, component 4).
//!
//! Build *durations* are simulated from each recipe's cost model (compiling
//! real compilers is out of scope), but the execution machinery is real: the
//! shared [`benchpark_engine`] executor runs a crossbeam worker pool over the
//! package DAG in dependency order and mutates the shared install database
//! and binary cache concurrently. Virtual wall-clock time comes from the
//! engine's deterministic LPT plan with `jobs` workers, so reports are
//! reproducible regardless of thread timing.

use crate::cache::{BinaryCache, CacheEntry};
use crate::db::{InstallDatabase, InstalledRecord};
use benchpark_concretizer::{ConcreteSpec, Origin};
use benchpark_engine::{Engine, TaskGraph};
use benchpark_pkg::Repo;
use benchpark_resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;

/// Installer knobs.
#[derive(Debug, Clone)]
pub struct InstallOptions {
    /// Parallel build jobs (the `-j` of the build farm).
    pub jobs: usize,
    /// Fetch from the binary cache when a build is available.
    pub use_cache: bool,
    /// Publish successful source builds to the cache.
    pub push_to_cache: bool,
    /// Root of the install tree.
    pub install_tree: String,
}

impl Default for InstallOptions {
    fn default() -> Self {
        InstallOptions {
            jobs: 4,
            use_cache: true,
            push_to_cache: true,
            install_tree: "/opt/spack/opt".to_string(),
        }
    }
}

/// What the engine did for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Compiled from source.
    Build,
    /// Extracted from the binary cache.
    FetchFromCache,
    /// Hash already present in the database.
    AlreadyInstalled,
    /// System-provided external; registered, never built.
    UseExternal,
    /// Adopted from a previous installation by the concretizer.
    Reused,
}

/// Per-package outcome.
#[derive(Debug, Clone)]
pub struct PackageResult {
    pub name: String,
    pub hash: String,
    pub action: Action,
    /// Virtual seconds this step took.
    pub seconds: f64,
    /// Virtual start/finish under list scheduling.
    pub start: f64,
    pub finish: f64,
}

/// The result of an install run.
#[derive(Debug, Clone)]
pub struct InstallReport {
    pub results: Vec<PackageResult>,
    /// Virtual wall-clock with `jobs` parallel workers.
    pub makespan_seconds: f64,
    /// Sum of all step durations.
    pub total_cpu_seconds: f64,
    /// Packages newly added to the database by this run.
    pub newly_installed: usize,
}

impl InstallReport {
    /// Outcomes by action kind.
    pub fn count(&self, action: Action) -> usize {
        self.results.iter().filter(|r| r.action == action).count()
    }
}

/// Simulated fetch bandwidth advantage: extracting a cached binary is ~20×
/// faster than compiling it (mirrors Spack's observed build-vs-fetch ratio).
const CACHE_SPEEDUP: f64 = 20.0;
/// Simulated archive bytes per build-second (for cache entry sizes).
const BYTES_PER_BUILD_SECOND: u64 = 5_000_000;

/// The installation engine.
pub struct Installer<'a> {
    repo: &'a Repo,
    db: InstallDatabase,
    cache: Option<BinaryCache>,
    telemetry: TelemetrySink,
    retry: RetryPolicy,
    breaker_config: BreakerConfig,
}

impl<'a> Installer<'a> {
    /// Creates an installer over a repository with a fresh database.
    pub fn new(repo: &'a Repo) -> Installer<'a> {
        Installer {
            repo,
            db: InstallDatabase::new(),
            cache: None,
            telemetry: TelemetrySink::noop(),
            retry: RetryPolicy::new(1),
            breaker_config: BreakerConfig::default(),
        }
    }

    /// Routes install telemetry (plan/execute spans, cache hit/miss/push
    /// counters, makespan and worker-utilization observations) to `sink`.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Uses an existing (shared) database.
    pub fn with_database(mut self, db: InstallDatabase) -> Self {
        self.db = db;
        self
    }

    /// Attaches a (shared) binary cache.
    pub fn with_cache(mut self, cache: BinaryCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Retries transient cache-fetch failures under `policy` before falling
    /// back to a source build. The default policy makes a single attempt
    /// (no retries), matching the pre-resilience behavior.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Configures the per-install-run circuit breaker guarding cache
    /// fetches. After `failure_threshold` consecutive exhausted fetch
    /// attempts the breaker opens and the rest of the run degrades to
    /// source builds without hammering the broken cache.
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> Self {
        self.breaker_config = config;
        self
    }

    /// The install database.
    pub fn database(&self) -> &InstallDatabase {
        &self.db
    }

    /// The binary cache, if attached.
    pub fn cache(&self) -> Option<&BinaryCache> {
        self.cache.as_ref()
    }

    /// Installs a concrete DAG.
    pub fn install(&self, dag: &ConcreteSpec, opts: &InstallOptions) -> InstallReport {
        let install_span = self.telemetry.span("install");
        // ---- plan: action + duration per node --------------------------------
        let plan_span = self.telemetry.span("install.plan");
        let order = dag.build_order();
        // the breaker lives for one install run: a cache outage degrades the
        // rest of this run to source builds, the next run probes again
        let mut breaker = CircuitBreaker::new(self.breaker_config);
        // virtual clock over the fetch sequence, advanced by retry backoff;
        // drives the breaker's open → half-open recovery window
        let mut fetch_clock = 0.0f64;
        let mut actions: BTreeMap<String, (Action, f64)> = BTreeMap::new();
        for node in &order {
            let name = node.spec.name.clone().unwrap_or_default();
            let (action, seconds) = if self.db.contains(&node.hash) {
                (Action::AlreadyInstalled, 0.0)
            } else {
                match &node.origin {
                    Origin::External { .. } => (Action::UseExternal, 1.0),
                    Origin::Reused => (Action::Reused, 0.0),
                    Origin::Source => {
                        let cost = self.repo.get(&name).map(|p| p.build_cost).unwrap_or(10.0);
                        match self.plan_fetch(node, opts, &mut breaker, &mut fetch_clock) {
                            Some(backoff_s) => {
                                (Action::FetchFromCache, cost / CACHE_SPEEDUP + backoff_s)
                            }
                            None => (Action::Build, cost),
                        }
                    }
                }
            };
            actions.insert(node.hash.clone(), (action, seconds));
        }

        // ---- task graph: one node per package, edges from the DAG ------------
        // tasks are added in `dag.nodes` key order, so the engine's
        // insertion-order LPT tie-break reproduces the old key-order one
        let mut graph = TaskGraph::new();
        for (key, node) in &dag.nodes {
            let (_, seconds) = actions[&node.hash];
            graph
                .add_task(key, node, seconds)
                .expect("concrete node keys are unique");
        }
        for (key, node) in &dag.nodes {
            let task = graph.id(key).expect("just added");
            for dep in node.deps.values() {
                let dep = graph.id(dep).expect("dependency is a DAG node");
                graph.depends_on(task, dep).expect("distinct keys");
            }
        }
        drop(plan_span);

        // ---- real parallel execution: engine worker pool over the DAG --------
        let execute_span = self.telemetry.span("install.execute");
        let report = Engine::new(opts.jobs.max(1))
            .with_telemetry(self.telemetry.clone())
            .with_span_prefix("install.pkg")
            .run_pool(&graph, |task, ctx| {
                let node = task.payload;
                let (action, _) = actions[&node.hash];
                Ok::<bool, String>(self.install_node(
                    dag,
                    node,
                    task.key == dag.root,
                    action,
                    ctx.finish,
                    opts,
                ))
            })
            .expect("concretizer output is acyclic");
        let makespan = report.makespan;
        let newly = report
            .tasks
            .iter()
            .filter(|t| t.output == Some(true))
            .count();
        drop(execute_span);

        // report slots by hash: graph tasks and report tasks share one order
        let slots: BTreeMap<&str, (f64, f64)> = graph
            .tasks()
            .iter()
            .zip(report.tasks.iter())
            .map(|(task, rep)| (task.payload.hash.as_str(), (rep.start, rep.finish)))
            .collect();

        let mut results: Vec<PackageResult> = order
            .iter()
            .map(|node| {
                let (action, seconds) = actions[&node.hash];
                let (start, finish) = slots[node.hash.as_str()];
                PackageResult {
                    name: node.spec.name.clone().unwrap_or_default(),
                    hash: node.hash.clone(),
                    action,
                    seconds,
                    start,
                    finish,
                }
            })
            .collect();
        results.sort_by(|a, b| a.start.total_cmp(&b.start));
        let total_cpu: f64 = results.iter().map(|r| r.seconds).sum();

        if self.telemetry.is_enabled() {
            let hits = results
                .iter()
                .filter(|r| r.action == Action::FetchFromCache)
                .count();
            let misses = results.iter().filter(|r| r.action == Action::Build).count();
            self.telemetry.incr("cache.hit", hits as u64);
            self.telemetry.incr("cache.miss", misses as u64);
            if opts.push_to_cache && self.cache.is_some() {
                self.telemetry.incr("cache.push", misses as u64);
            }
            // makespan and utilization depend on the worker count, so they
            // are volatile; total CPU seconds and package counts are not
            self.telemetry
                .observe_volatile("install.makespan_seconds", makespan);
            self.telemetry
                .observe("install.total_cpu_seconds", total_cpu);
            if makespan > 0.0 {
                let jobs = opts.jobs.max(1) as f64;
                self.telemetry
                    .observe_volatile("install.worker_utilization", total_cpu / (makespan * jobs));
            }
            install_span.set_virtual_volatile(makespan);
            install_span.set_attr("packages", results.len());
            install_span.set_attr("cache.hits", hits);
            install_span.set_attr("builds", misses);
            install_span.set_attr("newly_installed", newly);
        }
        drop(install_span);

        InstallReport {
            results,
            makespan_seconds: makespan,
            total_cpu_seconds: total_cpu,
            newly_installed: newly,
        }
    }

    /// Plans one cache fetch under the retry policy and circuit breaker.
    /// Returns `Some(virtual backoff seconds)` when the package can be
    /// extracted from the cache, `None` for a source build (miss, cache
    /// disabled, fetch attempts exhausted, or breaker open).
    fn plan_fetch(
        &self,
        node: &benchpark_concretizer::ConcreteNode,
        opts: &InstallOptions,
        breaker: &mut CircuitBreaker,
        fetch_clock: &mut f64,
    ) -> Option<f64> {
        if !opts.use_cache {
            return None;
        }
        let cache = self.cache.as_ref()?;
        if !breaker.allow(*fetch_clock) {
            return None; // open circuit: degrade to source build immediately
        }
        let outcome = self
            .retry
            .run(&self.telemetry, |_attempt| cache.try_fetch(&node.hash));
        *fetch_clock += outcome.virtual_backoff_s;
        match outcome.result {
            Ok(entry) => {
                breaker.record_success();
                entry.map(|_| outcome.virtual_backoff_s)
            }
            Err(_) => {
                let trips_before = breaker.trips();
                breaker.record_failure(*fetch_clock);
                if breaker.trips() > trips_before {
                    self.telemetry.incr("cache.breaker.trips", 1);
                }
                None
            }
        }
    }

    /// Runs one node's install side effects (database registration, cache
    /// push) from an engine worker. Thread-safe: the database and cache are
    /// internally synchronized. Returns whether a new record was registered.
    fn install_node(
        &self,
        dag: &ConcreteSpec,
        node: &benchpark_concretizer::ConcreteNode,
        explicit: bool,
        action: Action,
        finish: f64,
        opts: &InstallOptions,
    ) -> bool {
        if action == Action::AlreadyInstalled {
            return false;
        }
        let prefix = match &node.origin {
            Origin::External { prefix } => prefix.clone(),
            _ => InstallDatabase::prefix_for(&opts.install_tree, node),
        };
        let registered = self.db.register(InstalledRecord {
            hash: node.hash.clone(),
            spec_short: node.spec.short(),
            name: node.spec.name.clone().unwrap_or_default(),
            prefix,
            origin: node.origin.clone(),
            installed_at: finish,
            explicit,
            deps: node
                .deps
                .values()
                .map(|dep_key| dag.nodes[dep_key].hash.clone())
                .collect(),
        });
        if action == Action::Build && opts.push_to_cache {
            if let Some(cache) = &self.cache {
                let cost = self
                    .repo
                    .get(node.spec.name.as_deref().unwrap_or(""))
                    .map(|p| p.build_cost)
                    .unwrap_or(10.0);
                cache.push(CacheEntry {
                    hash: node.hash.clone(),
                    spec_short: node.spec.short(),
                    size_bytes: (cost * BYTES_PER_BUILD_SECOND as f64) as u64,
                });
            }
        }
        registered
    }
}
