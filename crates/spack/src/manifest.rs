//! The environment manifest (`spack.yaml`, paper Figure 3).

use benchpark_yamlite::{parse, ParseError, Value};

/// A parsed environment manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Abstract root specs, in declaration order.
    pub specs: Vec<String>,
    /// `concretizer: unify:` (defaults to true, as in Figure 3).
    pub unify: bool,
    /// Whether to maintain a merged view of the installations.
    pub view: bool,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            specs: Vec::new(),
            unify: true,
            view: false,
        }
    }
}

impl Manifest {
    /// Parses a `spack.yaml` document.
    pub fn from_yaml(text: &str) -> Result<Manifest, ParseError> {
        let doc = parse(text)?;
        let spack = doc.get("spack").unwrap_or(&doc);
        let specs = spack
            .get("specs")
            .and_then(Value::string_list)
            .unwrap_or_default();
        let unify = spack
            .get_path(&["concretizer", "unify"])
            .and_then(Value::as_bool)
            .unwrap_or(true);
        let view = spack.get("view").and_then(Value::as_bool).unwrap_or(false);
        Ok(Manifest { specs, unify, view })
    }

    /// Renders the manifest back to `spack.yaml` text.
    pub fn to_yaml(&self) -> String {
        use benchpark_yamlite::{emit, Map};
        let mut concretizer = Map::new();
        concretizer.insert("unify", Value::Bool(self.unify));
        let mut spack = Map::new();
        spack.insert(
            "specs",
            Value::Seq(self.specs.iter().map(|s| Value::str(s.clone())).collect()),
        );
        spack.insert("concretizer", Value::Map(concretizer));
        spack.insert("view", Value::Bool(self.view));
        let mut root = Map::new();
        root.insert("spack", Value::Map(spack));
        emit(&Value::Map(root))
    }
}
