//! Layered YAML configuration scopes (paper §3.1.2).
//!
//! Benchpark ships per-system directories of Spack configuration (Figure 1a,
//! `configs/<system>/…`). A [`ConfigScopes`] stack merges those files with
//! Spack precedence (later scopes override earlier ones, mappings deep-merge)
//! and lowers the result to a [`SiteConfig`] the concretizer consumes.

use benchpark_concretizer::{CompilerEntry, External, SiteConfig};
use benchpark_yamlite::{parse, Map, ParseError, Value};
use std::collections::BTreeMap;

/// A stack of named configuration scopes (`site` < `system` < `user`).
#[derive(Debug, Clone, Default)]
pub struct ConfigScopes {
    /// `(scope name, merged document per file name)` in precedence order —
    /// later entries override earlier ones.
    scopes: Vec<(String, BTreeMap<String, Value>)>,
}

impl ConfigScopes {
    /// An empty configuration.
    pub fn new() -> ConfigScopes {
        ConfigScopes::default()
    }

    /// Pushes a scope. `files` maps file names (`"packages.yaml"`) to YAML
    /// text. Later scopes take precedence.
    pub fn push_scope(&mut self, name: &str, files: &[(&str, &str)]) -> Result<(), ParseError> {
        let mut docs = BTreeMap::new();
        for (file, text) in files {
            docs.insert(file.to_string(), parse(text)?);
        }
        self.scopes.push((name.to_string(), docs));
        Ok(())
    }

    /// The merged document for one file across all scopes.
    pub fn merged(&self, file: &str) -> Value {
        let mut acc = Map::new();
        for (_, docs) in &self.scopes {
            if let Some(Value::Map(m)) = docs.get(file) {
                acc.merge_from(m);
            }
        }
        Value::Map(acc)
    }

    /// Scope names in precedence order.
    pub fn scope_names(&self) -> Vec<&str> {
        self.scopes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Lowers the merged configuration to the concretizer's [`SiteConfig`].
    ///
    /// Recognized structure:
    ///
    /// ```yaml
    /// # packages.yaml (Figure 4)
    /// packages:
    ///   all:
    ///     target: [skylake_avx512]
    ///     providers:
    ///       mpi: [mvapich2]
    ///   blas:
    ///     externals:
    ///     - spec: intel-oneapi-mkl@2022.1.0
    ///       prefix: /path/to/intel-oneapi-mkl
    ///     buildable: false
    ///   cmake:
    ///     version: ['3.23.1']
    ///
    /// # compilers.yaml
    /// compilers:
    /// - compiler:
    ///     spec: gcc@12.1.1
    ///     prefix: /usr/tce/gcc-12.1.1
    /// ```
    ///
    /// An `externals:` entry under a *virtual* name (as in Figure 4, where
    /// the MKL external lives under `blas:`) is attached to the provider
    /// named by its spec.
    pub fn site_config(&self) -> SiteConfig {
        let mut config = SiteConfig {
            default_target: "x86_64".to_string(),
            ..SiteConfig::default()
        };

        // compilers.yaml
        if let Some(list) = self
            .merged("compilers.yaml")
            .get("compilers")
            .and_then(|v| v.as_seq().map(<[Value]>::to_vec))
        {
            for entry in &list {
                let body = entry.get("compiler").unwrap_or(entry);
                let Some(spec_text) = body.get("spec").and_then(Value::as_str) else {
                    continue;
                };
                if let Ok(cspec) = spec_text.parse::<benchpark_spec::Spec>() {
                    if let (Some(name), Some(version)) =
                        (cspec.name.clone(), cspec.versions.highest_mentioned())
                    {
                        let prefix = body
                            .get("prefix")
                            .and_then(Value::as_str)
                            .unwrap_or("/usr")
                            .to_string();
                        config
                            .compilers
                            .push(CompilerEntry::new(&name, version.as_str(), &prefix));
                    }
                }
            }
        }

        // packages.yaml
        if let Some(packages) = self
            .merged("packages.yaml")
            .get("packages")
            .and_then(|v| v.as_map().cloned())
        {
            for (pkg_name, body) in packages.iter() {
                if pkg_name == "all" {
                    if let Some(providers) = body.get("providers").and_then(Value::as_map) {
                        for (virt, provs) in providers.iter() {
                            if let Some(list) = provs.string_list() {
                                config.provider_prefs.insert(virt.clone(), list);
                            }
                        }
                    }
                    if let Some(targets) = body.get("target").and_then(Value::string_list) {
                        if let Some(first) = targets.first() {
                            config.default_target = first.clone();
                        }
                    }
                    if let Some(compiler_prefs) = body.get("compiler").and_then(Value::string_list)
                    {
                        // reorder config.compilers to honor the preference
                        let prefs = compiler_prefs;
                        config.compilers.sort_by_key(|c| {
                            prefs
                                .iter()
                                .position(|p| {
                                    p.parse::<benchpark_spec::Spec>()
                                        .ok()
                                        .and_then(|s| s.name)
                                        .is_some_and(|n| n == c.name)
                                        || *p == c.name
                                })
                                .unwrap_or(usize::MAX)
                        });
                    }
                    continue;
                }
                if let Some(externals) = body
                    .get("externals")
                    .and_then(|v| v.as_seq().map(<[Value]>::to_vec))
                {
                    for ext in &externals {
                        let Some(spec_text) = ext.get("spec").and_then(Value::as_str) else {
                            continue;
                        };
                        let Ok(espec) = spec_text.parse::<benchpark_spec::Spec>() else {
                            continue;
                        };
                        let prefix = ext
                            .get("prefix")
                            .and_then(Value::as_str)
                            .unwrap_or("/opt")
                            .to_string();
                        // attach under the provider named in the spec (handles
                        // Figure 4's externals declared under virtual names);
                        // the same external may be listed under several
                        // virtuals (MKL provides blas *and* lapack) — dedupe
                        let owner = espec.name.clone().unwrap_or_else(|| pkg_name.clone());
                        let entry = config.externals.entry(owner).or_default();
                        if !entry.iter().any(|e| e.prefix == prefix && e.spec == espec) {
                            entry.push(External {
                                spec: espec,
                                prefix,
                            });
                        }
                    }
                }
                if body.get("buildable").and_then(Value::as_bool) == Some(false) {
                    // `buildable: false` under a virtual applies to the
                    // externals' owners; under a real package, to itself.
                    let mut owners: Vec<String> = Vec::new();
                    if let Some(externals) = body.get("externals").and_then(Value::as_seq) {
                        for ext in externals {
                            if let Some(spec_text) = ext.get("spec").and_then(Value::as_str) {
                                if let Ok(espec) = spec_text.parse::<benchpark_spec::Spec>() {
                                    if let Some(n) = espec.name {
                                        owners.push(n);
                                    }
                                }
                            }
                        }
                    }
                    if owners.is_empty() {
                        owners.push(pkg_name.clone());
                    }
                    for owner in owners {
                        if !config.not_buildable.contains(&owner) {
                            config.not_buildable.push(owner);
                        }
                    }
                    // a non-buildable virtual also pins its providers
                    if !config.not_buildable.contains(pkg_name) {
                        config.not_buildable.push(pkg_name.clone());
                    }
                }
                if let Some(vers) = body.get("version").and_then(Value::string_list) {
                    if let Some(first) = vers.first() {
                        if let Ok(vc) =
                            format!("{pkg_name}@{first}").parse::<benchpark_spec::Spec>()
                        {
                            config.version_prefs.insert(pkg_name.clone(), vc.versions);
                        }
                    }
                }
            }
            // externals under virtual names also become provider preferences
            let virtuals = ["mpi", "blas", "lapack"];
            for virt in virtuals {
                if let Some(body) = packages.get(virt) {
                    if let Some(externals) = body.get("externals").and_then(Value::as_seq) {
                        let mut provs = Vec::new();
                        for ext in externals {
                            if let Some(spec_text) = ext.get("spec").and_then(Value::as_str) {
                                if let Ok(espec) = spec_text.parse::<benchpark_spec::Spec>() {
                                    if let Some(n) = espec.name {
                                        if !provs.contains(&n) {
                                            provs.push(n);
                                        }
                                    }
                                }
                            }
                        }
                        if !provs.is_empty() {
                            config
                                .provider_prefs
                                .entry(virt.to_string())
                                .or_insert(provs);
                        }
                    }
                }
            }
        }
        config
    }
}
