//! The installation database: content-hashed records of what is installed.

use benchpark_concretizer::{ConcreteNode, Origin};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One installed package.
#[derive(Debug, Clone)]
pub struct InstalledRecord {
    /// DAG hash of the node.
    pub hash: String,
    /// `name@version%compiler…` short form.
    pub spec_short: String,
    /// Package name.
    pub name: String,
    /// Installation prefix.
    pub prefix: String,
    /// Provenance.
    pub origin: Origin,
    /// Virtual simulation time (seconds) when the install finished.
    pub installed_at: f64,
    /// Whether the user asked for this spec directly (vs. as a dependency).
    pub explicit: bool,
    /// Hashes of this record's direct dependencies (for uninstall safety and
    /// garbage collection).
    pub deps: Vec<String>,
}

/// A thread-safe installation database, shared between installer workers and
/// (in the CI substrate) between pipeline jobs.
#[derive(Debug, Clone, Default)]
pub struct InstallDatabase {
    inner: Arc<RwLock<BTreeMap<String, InstalledRecord>>>,
}

impl InstallDatabase {
    /// An empty database.
    pub fn new() -> InstallDatabase {
        InstallDatabase::default()
    }

    /// True if a node with this hash is installed.
    pub fn contains(&self, hash: &str) -> bool {
        self.inner.read().contains_key(hash)
    }

    /// Fetches a record by hash.
    pub fn get(&self, hash: &str) -> Option<InstalledRecord> {
        self.inner.read().get(hash).cloned()
    }

    /// Registers an installed node. Returns false if it was already present.
    pub fn register(&self, record: InstalledRecord) -> bool {
        self.inner
            .write()
            .insert(record.hash.clone(), record)
            .is_none()
    }

    /// Installed records for a package name.
    pub fn query_name(&self, name: &str) -> Vec<InstalledRecord> {
        self.inner
            .read()
            .values()
            .filter(|r| r.name == name)
            .cloned()
            .collect()
    }

    /// All records, sorted by hash.
    pub fn all(&self) -> Vec<InstalledRecord> {
        self.inner.read().values().cloned().collect()
    }

    /// Number of installed packages.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Removes a record by hash. Refuses when another installed record still
    /// depends on it, unless `force` — exactly `spack uninstall`'s check.
    pub fn uninstall(&self, hash: &str, force: bool) -> Result<InstalledRecord, String> {
        let mut map = self.inner.write();
        if !map.contains_key(hash) {
            return Err(format!("no installed package with hash {hash}"));
        }
        if !force {
            let dependents: Vec<&str> = map
                .values()
                .filter(|r| r.deps.iter().any(|d| d == hash))
                .map(|r| r.spec_short.as_str())
                .collect();
            if !dependents.is_empty() {
                return Err(format!(
                    "cannot uninstall: still required by {}",
                    dependents.join(", ")
                ));
            }
        }
        Ok(map.remove(hash).expect("checked above"))
    }

    /// Garbage collection (`spack gc`): removes every record not reachable
    /// from an explicitly installed root. Returns the removed records.
    pub fn gc(&self) -> Vec<InstalledRecord> {
        let mut map = self.inner.write();
        let mut live: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut stack: Vec<String> = map
            .values()
            .filter(|r| r.explicit)
            .map(|r| r.hash.clone())
            .collect();
        while let Some(hash) = stack.pop() {
            if live.insert(hash.clone()) {
                if let Some(record) = map.get(&hash) {
                    stack.extend(record.deps.iter().cloned());
                }
            }
        }
        let dead: Vec<String> = map.keys().filter(|h| !live.contains(*h)).cloned().collect();
        dead.into_iter().filter_map(|h| map.remove(&h)).collect()
    }

    /// The canonical install prefix for a node
    /// (`<root>/<target>/<compiler>/<name>-<version>-<hash8>`).
    pub fn prefix_for(root: &str, node: &ConcreteNode) -> String {
        let spec = &node.spec;
        let target = spec.target.as_deref().unwrap_or("unknown");
        let compiler = spec
            .compiler
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "none".to_string());
        let name = spec.name.as_deref().unwrap_or("unknown");
        let version = spec
            .versions
            .concrete()
            .map(|v| v.as_str().to_string())
            .unwrap_or_else(|| "0".to_string());
        let hash8 = &node.hash[..8.min(node.hash.len())];
        format!("{root}/{target}/{compiler}/{name}-{version}-{hash8}")
    }
}
