//! The content-addressed binary cache (paper §7.2: *"the Spack build pipeline
//! and rolling binary cache makes packages available to all Spack users"*).

use benchpark_resilience::FaultInjector;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached binary package.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub hash: String,
    pub spec_short: String,
    /// Simulated archive size in bytes (drives fetch-time modeling).
    pub size_bytes: u64,
}

/// A transient cache transport failure: the entry may well exist, but this
/// fetch attempt did not reach the bucket (the simulated S3 hiccup). Retry
/// or fall back to a source build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheFetchError {
    /// The hash whose fetch attempt failed.
    pub hash: String,
}

impl fmt::Display for CacheFetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transient failure fetching {} from binary cache",
            self.hash
        )
    }
}

impl std::error::Error for CacheFetchError {}

/// Cache hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub pushes: AtomicU64,
    /// Transient fetch errors (injected transport failures).
    pub errors: AtomicU64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed) as f64;
        let misses = self.misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }
}

/// A shared, thread-safe binary cache (the S3 bucket in Figure 6).
#[derive(Debug, Clone, Default)]
pub struct BinaryCache {
    entries: Arc<RwLock<BTreeMap<String, CacheEntry>>>,
    stats: Arc<CacheStats>,
    faults: Arc<RwLock<Option<FaultInjector>>>,
}

impl BinaryCache {
    /// An empty cache.
    pub fn new() -> BinaryCache {
        BinaryCache::default()
    }

    /// Makes fetches flaky: each [`BinaryCache::try_fetch`] consults the
    /// injector and may return a transient [`CacheFetchError`]. Shared across
    /// clones, so a plan wired after handles were passed around still applies
    /// everywhere. Plain [`BinaryCache::fetch`] is unaffected.
    pub fn inject_faults(&self, injector: FaultInjector) {
        *self.faults.write() = Some(injector);
    }

    /// Removes any fault injector.
    pub fn clear_faults(&self) {
        *self.faults.write() = None;
    }

    /// Looks up a build by hash, counting hit/miss.
    pub fn fetch(&self, hash: &str) -> Option<CacheEntry> {
        let result = self.entries.read().get(hash).cloned();
        match &result {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Like [`BinaryCache::fetch`], but the transport can fail: when a fault
    /// injector is wired in, an attempt may return `Err(CacheFetchError)`
    /// without touching hit/miss stats (the bucket was never reached).
    /// `Ok(None)` is a genuine miss.
    pub fn try_fetch(&self, hash: &str) -> Result<Option<CacheEntry>, CacheFetchError> {
        let flaked = self.faults.read().as_ref().is_some_and(|i| i.should_fail());
        if flaked {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(CacheFetchError {
                hash: hash.to_string(),
            });
        }
        Ok(self.fetch(hash))
    }

    /// True if the hash is cached (does not affect stats).
    pub fn contains(&self, hash: &str) -> bool {
        self.entries.read().contains_key(hash)
    }

    /// Publishes a build.
    pub fn push(&self, entry: CacheEntry) {
        self.stats.pushes.fetch_add(1, Ordering::Relaxed);
        self.entries.write().insert(entry.hash.clone(), entry);
    }

    /// Number of cached builds.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.stats.hits.load(Ordering::Relaxed),
            self.stats.misses.load(Ordering::Relaxed),
            self.stats.pushes.load(Ordering::Relaxed),
        )
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// Number of injected transient fetch errors observed so far.
    pub fn fetch_errors(&self) -> u64 {
        self.stats.errors.load(Ordering::Relaxed)
    }
}
