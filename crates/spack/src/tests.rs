//! Tests for configuration scopes, environments, installer, and cache.

use crate::{
    Action, BinaryCache, ConfigScopes, Environment, InstallDatabase, InstallOptions, Installer,
    Manifest,
};
use benchpark_concretizer::{Concretizer, SiteConfig};
use benchpark_pkg::Repo;

/// Figure 4's packages.yaml, verbatim.
const FIG4_PACKAGES: &str = r#"packages:
  blas:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  mpi:
    externals:
    - spec: mvapich2@2.3.7-gcc12.1.1-magic
      prefix: /path/to/mvapich2
    buildable: false
"#;

const COMPILERS: &str = r#"compilers:
- compiler:
    spec: gcc@12.1.1
    prefix: /usr/tce/gcc-12.1.1
- compiler:
    spec: intel@2021.6.0
    prefix: /usr/tce/intel
"#;

fn scopes() -> ConfigScopes {
    let mut scopes = ConfigScopes::new();
    scopes
        .push_scope(
            "system",
            &[
                ("packages.yaml", FIG4_PACKAGES),
                ("compilers.yaml", COMPILERS),
            ],
        )
        .unwrap();
    scopes
}

// ---------------------------------------------------------------------------
// Config scopes
// ---------------------------------------------------------------------------

#[test]
fn golden_fig4_lowered_to_site_config() {
    let config = scopes().site_config();
    // compilers
    assert_eq!(config.compilers.len(), 2);
    assert_eq!(config.compilers[0].name, "gcc");
    assert_eq!(config.compilers[0].version.as_str(), "12.1.1");
    // externals attached to the provider named in the spec
    assert_eq!(config.externals_for("intel-oneapi-mkl").len(), 1);
    assert_eq!(config.externals_for("mvapich2").len(), 1);
    assert_eq!(
        config.externals_for("mvapich2")[0].prefix,
        "/path/to/mvapich2"
    );
    // buildable: false propagates to the owning packages
    assert!(!config.buildable("intel-oneapi-mkl"));
    assert!(!config.buildable("mvapich2"));
    assert!(config.buildable("cmake"));
    // externals under virtual names imply provider preferences
    assert_eq!(config.provider_prefs["mpi"], vec!["mvapich2".to_string()]);
    assert_eq!(
        config.provider_prefs["blas"],
        vec!["intel-oneapi-mkl".to_string()]
    );
}

#[test]
fn scope_precedence_deep_merges() {
    let mut scopes = scopes();
    scopes
        .push_scope(
            "user",
            &[(
                "packages.yaml",
                "packages:\n  cmake:\n    version: ['3.20.2']\n  mpi:\n    buildable: true\n",
            )],
        )
        .unwrap();
    let merged = scopes.merged("packages.yaml");
    // user override wins
    assert_eq!(
        merged
            .get_path(&["packages", "mpi", "buildable"])
            .unwrap()
            .as_bool(),
        Some(true)
    );
    // system settings survive
    assert!(merged
        .get_path(&["packages", "blas", "externals"])
        .is_some());
    // new keys added
    let config = scopes.site_config();
    assert!(config.version_prefs.contains_key("cmake"));
    assert_eq!(scopes.scope_names(), vec!["system", "user"]);
}

#[test]
fn providers_and_target_from_packages_all() {
    let mut scopes = ConfigScopes::new();
    scopes
        .push_scope(
            "system",
            &[
                (
                    "packages.yaml",
                    "packages:\n  all:\n    target: [zen3]\n    providers:\n      mpi: [openmpi]\n",
                ),
                ("compilers.yaml", COMPILERS),
            ],
        )
        .unwrap();
    let config = scopes.site_config();
    assert_eq!(config.default_target, "zen3");
    assert_eq!(config.provider_prefs["mpi"], vec!["openmpi".to_string()]);
}

// ---------------------------------------------------------------------------
// Manifest (Figure 3)
// ---------------------------------------------------------------------------

#[test]
fn golden_fig3_manifest() {
    let text =
        "spack:\n  specs: [amg2023+caliper]\n  concretizer:\n    unify: true\n  view: true\n";
    let m = Manifest::from_yaml(text).unwrap();
    assert_eq!(m.specs, vec!["amg2023+caliper"]);
    assert!(m.unify);
    assert!(m.view);

    // round trip
    let again = Manifest::from_yaml(&m.to_yaml()).unwrap();
    assert_eq!(m, again);
}

#[test]
fn manifest_defaults() {
    let m = Manifest::from_yaml("spack:\n  specs: [saxpy]\n").unwrap();
    assert!(m.unify, "unify defaults to true");
    assert!(!m.view);
}

// ---------------------------------------------------------------------------
// Environment workflow (Figure 2)
// ---------------------------------------------------------------------------

/// The five commands of Figure 2, end to end.
#[test]
fn golden_fig2_environment_workflow() {
    let repo = Repo::builtin();
    // 1-2: spack env create/activate
    let mut env = Environment::create("paper-fig2");
    // 3: spack add amg2023+caliper
    env.add("amg2023+caliper").unwrap();
    // 4: spack --config-scope /path/to/configs concretize
    env.push_config_scope(
        "system",
        &[
            ("packages.yaml", FIG4_PACKAGES),
            ("compilers.yaml", COMPILERS),
        ],
    )
    .unwrap();
    let mut site = env.site_config();
    site.default_target = "skylake_avx512".to_string();
    env.concretize_with(&repo, &site).unwrap();
    let lock = env.lockfile.as_ref().unwrap();
    assert_eq!(lock.roots.len(), 1);
    let dag = lock.get("amg2023+caliper").unwrap();
    assert!(dag.nodes.contains_key("caliper"));
    assert!(dag.nodes.contains_key("mvapich2"));

    // 5: spack install
    let installer = Installer::new(&repo);
    let reports = env.install(&installer, &InstallOptions::default()).unwrap();
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert!(report.count(Action::Build) >= 4, "{:?}", report.results);
    assert_eq!(report.count(Action::UseExternal), 2); // mkl + mvapich2
    assert_eq!(installer.database().len(), dag.len());
    // lockfile renders with hashes for storage with results
    assert!(lock.render().contains("dag_hash"));
}

#[test]
fn lockfile_yaml_roundtrip() {
    let repo = Repo::builtin();
    let mut env = Environment::create("lock-rt");
    env.add("amg2023+caliper").unwrap();
    env.add("saxpy+openmp").unwrap();
    let site = benchpark_concretizer::SiteConfig::example_cts();
    env.concretize_with(&repo, &site).unwrap();
    let lock = env.lockfile.as_ref().unwrap();

    let text = lock.to_yaml();
    assert!(text.contains("spack_lock_version"));
    let restored = crate::Lockfile::from_yaml(&text).unwrap();
    assert_eq!(restored.roots.len(), lock.roots.len());
    for ((a_text, a_dag), (b_text, b_dag)) in lock.roots.iter().zip(&restored.roots) {
        assert_eq!(a_text, b_text);
        assert_eq!(a_dag.root, b_dag.root);
        assert_eq!(a_dag.nodes.len(), b_dag.nodes.len());
        for (key, a_node) in &a_dag.nodes {
            let b_node = &b_dag.nodes[key];
            assert_eq!(a_node.hash, b_node.hash, "{key}");
            assert_eq!(a_node.deps, b_node.deps, "{key}");
            assert_eq!(a_node.origin, b_node.origin, "{key}");
            assert_eq!(a_node.spec.short(), b_node.spec.short(), "{key}");
            assert!(b_node.spec.is_concrete(), "{key} must stay concrete");
        }
    }
    // restored lockfile still satisfies the abstract roots
    let amg = restored.get("amg2023+caliper").unwrap();
    assert!(amg.to_spec().satisfies(&"amg2023+caliper".parse().unwrap()));

    // and the restored specs remain installable
    let installer = Installer::new(&repo);
    let report = installer.install(amg, &InstallOptions::default());
    assert!(report.newly_installed > 0);

    // corrupted input errors cleanly
    assert!(crate::Lockfile::from_yaml("roots: nope\n").is_err());
    assert!(crate::Lockfile::from_yaml("{{{{").is_err());
}

#[test]
fn add_validates_and_dedups() {
    let mut env = Environment::create("t");
    env.add("saxpy+openmp").unwrap();
    env.add("saxpy+openmp").unwrap();
    assert_eq!(env.manifest.specs.len(), 1);
    assert!(env.add("saxpy@@bad").is_err());
}

#[test]
fn install_before_concretize_fails() {
    let repo = Repo::builtin();
    let env = Environment::create("t");
    let installer = Installer::new(&repo);
    assert!(env.install(&installer, &InstallOptions::default()).is_err());
}

// ---------------------------------------------------------------------------
// Installer
// ---------------------------------------------------------------------------

fn concretize(spec: &str) -> benchpark_concretizer::ConcreteSpec {
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    Concretizer::new(&repo, &config)
        .concretize(&spec.parse().unwrap())
        .unwrap()
}

#[test]
fn install_actions_and_idempotence() {
    let repo = Repo::builtin();
    let dag = concretize("saxpy+openmp");
    let installer = Installer::new(&repo);
    let opts = InstallOptions::default();

    let first = installer.install(&dag, &opts);
    assert!(first.count(Action::Build) >= 2); // saxpy, cmake, hwloc…
    assert_eq!(first.newly_installed, dag.len());

    let second = installer.install(&dag, &opts);
    assert_eq!(second.count(Action::AlreadyInstalled), dag.len());
    assert_eq!(second.newly_installed, 0);
    assert_eq!(second.makespan_seconds, 0.0);
}

#[test]
fn binary_cache_speedup() {
    let repo = Repo::builtin();
    let dag = concretize("amg2023+caliper");
    let cache = BinaryCache::new();

    // first machine builds from source and populates the cache
    let builder = Installer::new(&repo).with_cache(cache.clone());
    let cold = builder.install(&dag, &InstallOptions::default());
    assert!(cold.count(Action::Build) > 0);
    assert!(cache.len() >= cold.count(Action::Build));

    // second machine fetches everything buildable from the cache
    let consumer = Installer::new(&repo)
        .with_database(InstallDatabase::new())
        .with_cache(cache.clone());
    let warm = consumer.install(&dag, &InstallOptions::default());
    assert_eq!(warm.count(Action::Build), 0);
    assert_eq!(
        warm.count(Action::FetchFromCache),
        cold.count(Action::Build)
    );
    assert!(
        warm.makespan_seconds < cold.makespan_seconds / 5.0,
        "cache must be much faster: warm {} vs cold {}",
        warm.makespan_seconds,
        cold.makespan_seconds
    );
    assert!(cache.hit_ratio() > 0.0);
}

#[test]
fn cache_disabled_forces_builds() {
    let repo = Repo::builtin();
    let dag = concretize("saxpy+openmp");
    let cache = BinaryCache::new();
    Installer::new(&repo)
        .with_cache(cache.clone())
        .install(&dag, &InstallOptions::default());

    let opts = InstallOptions {
        use_cache: false,
        ..InstallOptions::default()
    };
    let report = Installer::new(&repo)
        .with_database(InstallDatabase::new())
        .with_cache(cache.clone())
        .install(&dag, &opts);
    assert_eq!(report.count(Action::FetchFromCache), 0);
    assert!(report.count(Action::Build) > 0);
}

#[test]
fn parallel_jobs_reduce_makespan() {
    let repo = Repo::builtin();
    let dag = concretize("amg2023+caliper");
    let serial = Installer::new(&repo).install(
        &dag,
        &InstallOptions {
            jobs: 1,
            use_cache: false,
            ..InstallOptions::default()
        },
    );
    let parallel = Installer::new(&repo).install(
        &dag,
        &InstallOptions {
            jobs: 8,
            use_cache: false,
            ..InstallOptions::default()
        },
    );
    assert!(parallel.makespan_seconds < serial.makespan_seconds);
    // same total work either way
    assert!((parallel.total_cpu_seconds - serial.total_cpu_seconds).abs() < 1e-9);
    // makespan is bounded below by the critical path and above by total work
    assert!(parallel.makespan_seconds >= parallel.total_cpu_seconds / 8.0 - 1e-9);
}

#[test]
fn schedule_respects_dependencies() {
    let repo = Repo::builtin();
    let dag = concretize("amg2023+caliper");
    let report = Installer::new(&repo).install(
        &dag,
        &InstallOptions {
            jobs: 4,
            use_cache: false,
            ..InstallOptions::default()
        },
    );
    let finish_of = |name: &str| {
        report
            .results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.finish)
            .unwrap()
    };
    let start_of = |name: &str| {
        report
            .results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.start)
            .unwrap()
    };
    assert!(finish_of("hypre") <= start_of("amg2023") + 1e-9);
    assert!(finish_of("adiak") <= start_of("caliper") + 1e-9);
}

#[test]
fn database_records() {
    let repo = Repo::builtin();
    let dag = concretize("saxpy+openmp");
    let installer = Installer::new(&repo);
    installer.install(&dag, &InstallOptions::default());
    let db = installer.database();

    let saxpy = &db.query_name("saxpy")[0];
    assert!(saxpy.explicit);
    assert!(saxpy.prefix.contains("saxpy-1.0.0-"));
    assert!(saxpy.prefix.contains("skylake_avx512"));

    let mvapich = &db.query_name("mvapich2")[0];
    assert!(!mvapich.explicit);
    assert_eq!(mvapich.prefix, "/path/to/mvapich2"); // external prefix
    assert!(db.get(&saxpy.hash).is_some());
    assert!(db.get("no-such-hash").is_none());
}

#[test]
fn uninstall_respects_dependents() {
    let repo = Repo::builtin();
    let dag = concretize("saxpy+openmp");
    let installer = Installer::new(&repo);
    installer.install(&dag, &InstallOptions::default());
    let db = installer.database();

    let cmake_hash = db.query_name("cmake")[0].hash.clone();
    let saxpy_hash = db.query_name("saxpy")[0].hash.clone();

    // cmake is needed by saxpy: refuse
    let err = db.uninstall(&cmake_hash, false).unwrap_err();
    assert!(err.contains("still required by"), "{err}");
    // removing the dependent first makes it legal
    db.uninstall(&saxpy_hash, false).unwrap();
    db.uninstall(&cmake_hash, false).unwrap();
    assert!(db.query_name("cmake").is_empty());
    // unknown hash errors; force overrides dependency checks
    assert!(db.uninstall("nope", false).is_err());
}

#[test]
fn gc_removes_orphaned_dependencies() {
    let repo = Repo::builtin();
    let dag = concretize("saxpy+openmp");
    let installer = Installer::new(&repo);
    installer.install(&dag, &InstallOptions::default());
    let db = installer.database();
    let before = db.len();
    assert_eq!(db.gc().len(), 0, "everything is reachable from saxpy");
    assert_eq!(db.len(), before);

    // force-remove the explicit root: its dependencies become garbage
    let saxpy_hash = db.query_name("saxpy")[0].hash.clone();
    db.uninstall(&saxpy_hash, true).unwrap();
    let removed = db.gc();
    assert_eq!(removed.len(), before - 1, "all deps were orphaned");
    assert!(db.is_empty());
}

#[test]
fn gc_keeps_shared_dependencies_alive() {
    let repo = Repo::builtin();
    let db = InstallDatabase::new();
    let installer = Installer::new(&repo).with_database(db.clone());
    installer.install(&concretize("saxpy+openmp"), &InstallOptions::default());
    installer.install(&concretize("lulesh+openmp"), &InstallOptions::default());

    // uninstall lulesh; shared mpi/cmake must survive gc (saxpy needs them)
    let lulesh_hash = db.query_name("lulesh")[0].hash.clone();
    db.uninstall(&lulesh_hash, true).unwrap();
    db.gc();
    assert!(!db.query_name("saxpy").is_empty());
    assert!(!db.query_name("cmake").is_empty());
    assert!(!db.query_name("mvapich2").is_empty());
    assert!(db.query_name("lulesh").is_empty());
}

#[test]
fn shared_database_across_installers() {
    let repo = Repo::builtin();
    let db = InstallDatabase::new();
    let a = Installer::new(&repo).with_database(db.clone());
    a.install(&concretize("saxpy+openmp"), &InstallOptions::default());
    let before = db.len();

    // second installer sees the shared database; cmake etc. already present
    let b = Installer::new(&repo).with_database(db.clone());
    let report = b.install(&concretize("lulesh+openmp"), &InstallOptions::default());
    assert!(report.count(Action::AlreadyInstalled) > 0);
    assert!(db.len() > before);
}

// ---------------------------------------------------------------------------
// Resilience: flaky cache fetches, retries, circuit breaker
// ---------------------------------------------------------------------------

#[test]
fn flaky_cache_fetch_recovers_with_retries() {
    use benchpark_resilience::{FaultInjector, RetryPolicy};
    use benchpark_telemetry::TelemetrySink;

    let repo = Repo::builtin();
    let dag = concretize("amg2023+caliper");
    let cache = BinaryCache::new();
    let cold = Installer::new(&repo)
        .with_cache(cache.clone())
        .install(&dag, &InstallOptions::default());
    assert!(
        cold.count(Action::Build) >= 3,
        "{}",
        cold.count(Action::Build)
    );

    // the first two fetch attempts fail; the retry policy absorbs both
    cache.inject_faults(FaultInjector::new(1.0, 42).with_budget(2));
    let sink = TelemetrySink::recording();
    let warm = Installer::new(&repo)
        .with_database(InstallDatabase::new())
        .with_cache(cache.clone())
        .with_retry_policy(RetryPolicy::new(4).with_jitter(0.2, 7))
        .with_telemetry(sink.clone())
        .install(&dag, &InstallOptions::default());

    assert_eq!(warm.count(Action::Build), 0, "retries must mask the flakes");
    assert_eq!(
        warm.count(Action::FetchFromCache),
        cold.count(Action::Build)
    );
    assert_eq!(cache.fetch_errors(), 2);
    let report = sink.report().unwrap();
    assert_eq!(report.counter("retry.attempts"), 2);
    assert_eq!(report.counter("cache.breaker.trips"), 0);

    // the recovered fetch pays its backoff in virtual seconds
    let paid: f64 = warm
        .results
        .iter()
        .filter(|r| r.action == Action::FetchFromCache)
        .map(|r| r.seconds)
        .sum();
    assert!(paid > 0.0);
}

#[test]
fn cache_outage_trips_breaker_and_degrades_to_builds() {
    use benchpark_resilience::{BreakerConfig, FaultInjector, RetryPolicy};
    use benchpark_telemetry::TelemetrySink;

    let repo = Repo::builtin();
    let dag = concretize("amg2023+caliper");
    let cache = BinaryCache::new();
    let cold = Installer::new(&repo)
        .with_cache(cache.clone())
        .install(&dag, &InstallOptions::default());
    assert!(cold.count(Action::Build) >= 3);

    // total outage: every attempt fails, retries cannot help
    cache.inject_faults(FaultInjector::new(1.0, 3));
    let sink = TelemetrySink::recording();
    let report = Installer::new(&repo)
        .with_database(InstallDatabase::new())
        .with_cache(cache.clone())
        .with_retry_policy(RetryPolicy::new(2))
        .with_breaker_config(BreakerConfig {
            failure_threshold: 3,
            reset_after_s: 1e9, // stay open for the whole run
        })
        .with_telemetry(sink.clone())
        .install(&dag, &InstallOptions::default());

    // graceful degradation: everything still installs, from source
    assert_eq!(report.count(Action::FetchFromCache), 0);
    assert_eq!(report.count(Action::Build), cold.count(Action::Build));
    let counters = sink.report().unwrap();
    assert_eq!(counters.counter("cache.breaker.trips"), 1);
    // once open, the breaker stops hammering the cache: exactly three
    // packages made (two) attempts each before the circuit opened
    assert_eq!(cache.fetch_errors(), 6);
    assert_eq!(counters.counter("retry.attempts"), 3);
}
