//! Pattern compilation errors.

use std::fmt;

/// An error produced while compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RexError {
    /// Byte position in the pattern where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl RexError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        Self {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for RexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex error at position {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RexError {}
