//! `benchpark-rex` — a small regular-expression engine with named groups.
//!
//! Ramble extracts figures of merit (FOMs) and evaluates success criteria by
//! running regular expressions with *named capture groups* over experiment
//! output (paper Figure 8: `fom_regex=r'(?P<done>Kernel done)'`). The `regex`
//! crate is not part of this project's allowed dependency set, so this crate
//! implements the required engine from scratch:
//!
//! * literals, `.`, escapes (`\d \w \s \D \W \S \n \t \r` and escaped
//!   metacharacters),
//! * character classes `[a-z0-9_]` and negated classes `[^…]`, with ranges,
//! * greedy and lazy quantifiers `* + ? {m} {m,} {m,n}` (`*?` etc.),
//! * alternation `|`, grouping `(…)`, non-capturing `(?:…)`,
//! * named groups `(?P<name>…)` (Python style, as the paper uses) and
//!   `(?<name>…)`,
//! * anchors `^` and `$`, and word boundary `\b`.
//!
//! The implementation compiles to a bytecode program executed by a Pike VM
//! (breadth-first NFA simulation with capture slots), so matching is
//! `O(len(pattern) · len(input))` — no catastrophic backtracking, which
//! matters when scanning large benchmark logs.
//!
//! # Example
//!
//! ```
//! use benchpark_rex::Regex;
//!
//! let re = Regex::new(r"Total time: (?P<time>\d+\.\d+) s").unwrap();
//! let caps = re.captures("Total time: 12.5 s").unwrap();
//! assert_eq!(caps.name("time").unwrap().text, "12.5");
//! ```

mod ast;
mod error;
mod prog;
mod vm;

pub use error::RexError;

use prog::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A single matched span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match<'t> {
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
    /// The matched text.
    pub text: &'t str,
}

/// The capture groups of one match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    haystack: &'t str,
    slots: Vec<Option<usize>>,
    names: Vec<(String, usize)>,
}

impl<'t> Captures<'t> {
    /// Returns capture group `idx` if it participated in the match.
    pub fn get(&self, idx: usize) -> Option<Match<'t>> {
        let start = self.slots.get(idx * 2).copied().flatten()?;
        let end = self.slots.get(idx * 2 + 1).copied().flatten()?;
        Some(Match {
            start,
            end,
            text: &self.haystack[start..end],
        })
    }

    /// Returns the named capture group `name` if it participated.
    pub fn name(&self, name: &str) -> Option<Match<'t>> {
        let idx = self
            .names
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| *i)?;
        self.get(idx)
    }

    /// Names defined by the pattern, in definition order.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|(n, _)| n.as_str())
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always false: group 0 exists.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RexError> {
        let ast = ast::parse(pattern)?;
        let program = prog::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Names of capture groups defined in the pattern.
    pub fn capture_names(&self) -> impl Iterator<Item = &str> {
        self.program.names.iter().map(|(n, _)| n.as_str())
    }

    /// True if the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Finds the leftmost match.
    pub fn find<'t>(&self, haystack: &'t str) -> Option<Match<'t>> {
        let slots = vm::search(&self.program, haystack, 0)?;
        let (start, end) = (slots[0]?, slots[1]?);
        Some(Match {
            start,
            end,
            text: &haystack[start..end],
        })
    }

    /// Finds the leftmost match and returns all capture groups.
    pub fn captures<'t>(&self, haystack: &'t str) -> Option<Captures<'t>> {
        let slots = vm::search(&self.program, haystack, 0)?;
        slots[0]?;
        Some(Captures {
            haystack,
            slots,
            names: self.program.names.clone(),
        })
    }

    /// Iterates over all non-overlapping matches, leftmost-first.
    pub fn find_iter<'r, 't>(&'r self, haystack: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// Iterates over the captures of all non-overlapping matches.
    pub fn captures_iter<'r, 't>(&'r self, haystack: &'t str) -> CapturesIter<'r, 't> {
        CapturesIter {
            re: self,
            haystack,
            at: 0,
        }
    }
}

/// Iterator over non-overlapping matches.
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    at: usize,
}

impl<'t> Iterator for FindIter<'_, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let slots = vm::search(&self.re.program, self.haystack, self.at)?;
        let (start, end) = (slots[0]?, slots[1]?);
        self.at = bump(self.haystack, start, end);
        Some(Match {
            start,
            end,
            text: &self.haystack[start..end],
        })
    }
}

/// Iterator over captures of non-overlapping matches.
pub struct CapturesIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    at: usize,
}

impl<'t> Iterator for CapturesIter<'_, 't> {
    type Item = Captures<'t>;

    fn next(&mut self) -> Option<Captures<'t>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let slots = vm::search(&self.re.program, self.haystack, self.at)?;
        let (start, end) = (slots[0]?, slots[1]?);
        self.at = bump(self.haystack, start, end);
        Some(Captures {
            haystack: self.haystack,
            slots,
            names: self.re.program.names.clone(),
        })
    }
}

/// Advances past a match; empty matches advance by one character to guarantee
/// progress.
fn bump(haystack: &str, start: usize, end: usize) -> usize {
    if end > start {
        end
    } else {
        haystack[end..]
            .chars()
            .next()
            .map(|c| end + c.len_utf8())
            .unwrap_or(end + 1)
    }
}

#[cfg(test)]
mod tests;
