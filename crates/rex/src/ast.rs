//! Pattern parser producing an abstract syntax tree.

use crate::error::RexError;

/// A set of character ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Inclusive `(lo, hi)` ranges, unsorted.
    pub ranges: Vec<(char, char)>,
    /// True for `[^…]`.
    pub negated: bool,
}

impl ClassSet {
    pub fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }

    fn digits() -> Self {
        ClassSet {
            ranges: vec![('0', '9')],
            negated: false,
        }
    }

    fn word() -> Self {
        ClassSet {
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            negated: false,
        }
    }

    fn space() -> Self {
        ClassSet {
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
            negated: false,
        }
    }

    fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// True if `c` is a word character (used for `\b`).
    pub fn is_word_char(c: char) -> bool {
        c.is_ascii_alphanumeric() || c == '_'
    }
}

/// Zero-width assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `^` — start of input (or after `\n`, but we implement start-of-input;
    /// Ramble applies patterns per line).
    Start,
    /// `$` — end of input.
    End,
    /// `\b` — word boundary.
    WordBoundary,
    /// `\B` — not a word boundary.
    NotWordBoundary,
}

/// Regular expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Lit(char),
    /// `.` — any character except `\n`.
    Dot,
    /// A character class.
    Class(ClassSet),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation (`a|b|c`).
    Alt(Vec<Ast>),
    /// Repetition of the inner expression.
    Repeat {
        inner: Box<Ast>,
        min: u32,
        /// `None` means unbounded.
        max: Option<u32>,
        greedy: bool,
    },
    /// Capturing group (index 1..) with optional name.
    Group {
        index: usize,
        name: Option<String>,
        inner: Box<Ast>,
    },
    /// Non-capturing group.
    NonCapturing(Box<Ast>),
}

/// The result of parsing: the AST plus group metadata.
#[derive(Debug, Clone)]
pub struct Parsed {
    pub ast: Ast,
    /// Total number of capture groups, including group 0.
    pub group_count: usize,
    /// `(name, group_index)` in definition order.
    pub names: Vec<(String, usize)>,
}

/// Parses `pattern` into an AST.
pub fn parse(pattern: &str) -> Result<Parsed, RexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parser = Parser {
        chars: &chars,
        pos: 0,
        next_group: 1,
        names: Vec::new(),
    };
    let ast = parser.parse_alt()?;
    if parser.pos != parser.chars.len() {
        return Err(RexError::new(
            parser.pos,
            format!("unexpected `{}`", parser.chars[parser.pos]),
        ));
    }
    Ok(Parsed {
        ast,
        group_count: parser.next_group,
        names: parser.names,
    })
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    next_group: usize,
    names: Vec<(String, usize)>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), RexError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(RexError::new(self.pos, format!("expected `{c}`")))
        }
    }

    /// alt := concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<Ast, RexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alt(branches))
        }
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, RexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().unwrap()),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeat := atom ('*'|'+'|'?'|'{m,n}') '?'?
    fn parse_repeat(&mut self) -> Result<Ast, RexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                // `{` only begins a counted repetition if it looks like one;
                // otherwise it is a literal (Ramble templates contain `{var}`).
                if let Some(parsed) = self.try_parse_counted()? {
                    parsed
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if let Some(m) = max {
            if min > m {
                return Err(RexError::new(
                    self.pos,
                    format!("invalid repetition {{{min},{m}}}"),
                ));
            }
        }
        if zero_width(&atom) {
            return Err(RexError::new(
                self.pos,
                "cannot repeat a zero-width assertion",
            ));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Attempts `{m}`, `{m,}`, `{m,n}`. Returns `Ok(None)` (without consuming)
    /// when the braces do not form a counted repetition.
    fn try_parse_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, RexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let m = self.parse_number();
        let result = match (m, self.peek()) {
            (Some(m), Some('}')) => {
                self.pos += 1;
                Some((m, Some(m)))
            }
            (Some(m), Some(',')) => {
                self.pos += 1;
                let n = self.parse_number();
                if self.eat('}') {
                    Some((m, n))
                } else {
                    None
                }
            }
            _ => None,
        };
        if result.is_none() {
            self.pos = start; // rewind: `{` is a literal
            return Ok(None);
        }
        Ok(result)
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().ok()
    }

    /// atom := group | class | escape | anchor | literal
    fn parse_atom(&mut self) -> Result<Ast, RexError> {
        let c = self
            .bump()
            .ok_or_else(|| RexError::new(self.pos, "unexpected end of pattern"))?;
        match c {
            '(' => self.parse_group(),
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Ok(Ast::Dot),
            '^' => Ok(Ast::Assert(Assertion::Start)),
            '$' => Ok(Ast::Assert(Assertion::End)),
            '*' | '+' | '?' => Err(RexError::new(
                self.pos - 1,
                format!("dangling quantifier `{c}`"),
            )),
            ')' => Err(RexError::new(self.pos - 1, "unmatched `)`")),
            other => Ok(Ast::Lit(other)),
        }
    }

    fn parse_group(&mut self) -> Result<Ast, RexError> {
        if self.eat('?') {
            if self.eat(':') {
                let inner = self.parse_alt()?;
                self.expect(')')?;
                return Ok(Ast::NonCapturing(Box::new(inner)));
            }
            // (?P<name>…) or (?<name>…)
            let _ = self.eat('P');
            self.expect('<')?;
            let name_start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
            if self.pos == name_start {
                return Err(RexError::new(self.pos, "empty group name"));
            }
            let name: String = self.chars[name_start..self.pos].iter().collect();
            self.expect('>')?;
            if self.names.iter().any(|(n, _)| *n == name) {
                return Err(RexError::new(
                    name_start,
                    format!("duplicate group name `{name}`"),
                ));
            }
            let index = self.next_group;
            self.next_group += 1;
            self.names.push((name.clone(), index));
            let inner = self.parse_alt()?;
            self.expect(')')?;
            return Ok(Ast::Group {
                index,
                name: Some(name),
                inner: Box::new(inner),
            });
        }
        let index = self.next_group;
        self.next_group += 1;
        let inner = self.parse_alt()?;
        self.expect(')')?;
        Ok(Ast::Group {
            index,
            name: None,
            inner: Box::new(inner),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RexError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = self
                .bump()
                .ok_or_else(|| RexError::new(self.pos, "unterminated character class"))?;
            let lo = match c {
                ']' if !first => break,
                ']' => ']', // `[]]` — first `]` is a literal
                '\\' => {
                    let e = self
                        .bump()
                        .ok_or_else(|| RexError::new(self.pos, "trailing backslash in class"))?;
                    match class_escape(e) {
                        ClassEscape::Set(set) => {
                            ranges.extend(expand_set(&set));
                            first = false;
                            continue;
                        }
                        ClassEscape::Char(c) => c,
                    }
                }
                other => other,
            };
            first = false;
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.pos += 1; // consume '-'
                let hi = match self
                    .bump()
                    .ok_or_else(|| RexError::new(self.pos, "unterminated character class"))?
                {
                    '\\' => {
                        let e = self.bump().ok_or_else(|| {
                            RexError::new(self.pos, "trailing backslash in class")
                        })?;
                        match class_escape(e) {
                            ClassEscape::Char(c) => c,
                            ClassEscape::Set(_) => {
                                return Err(RexError::new(
                                    self.pos,
                                    "class escape cannot end a range",
                                ))
                            }
                        }
                    }
                    other => other,
                };
                if hi < lo {
                    return Err(RexError::new(
                        self.pos,
                        format!("invalid range `{lo}-{hi}`"),
                    ));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class(ClassSet { ranges, negated }))
    }

    fn parse_escape(&mut self) -> Result<Ast, RexError> {
        let c = self
            .bump()
            .ok_or_else(|| RexError::new(self.pos, "trailing backslash"))?;
        Ok(match c {
            'd' => Ast::Class(ClassSet::digits()),
            'D' => Ast::Class(ClassSet::digits().negate()),
            'w' => Ast::Class(ClassSet::word()),
            'W' => Ast::Class(ClassSet::word().negate()),
            's' => Ast::Class(ClassSet::space()),
            'S' => Ast::Class(ClassSet::space().negate()),
            'b' => Ast::Assert(Assertion::WordBoundary),
            'B' => Ast::Assert(Assertion::NotWordBoundary),
            'n' => Ast::Lit('\n'),
            't' => Ast::Lit('\t'),
            'r' => Ast::Lit('\r'),
            '0' => Ast::Lit('\0'),
            other if other.is_ascii_alphanumeric() => {
                return Err(RexError::new(
                    self.pos - 1,
                    format!("unknown escape `\\{other}`"),
                ))
            }
            other => Ast::Lit(other),
        })
    }
}

enum ClassEscape {
    Set(ClassSet),
    Char(char),
}

fn class_escape(c: char) -> ClassEscape {
    match c {
        'd' => ClassEscape::Set(ClassSet::digits()),
        'w' => ClassEscape::Set(ClassSet::word()),
        's' => ClassEscape::Set(ClassSet::space()),
        'n' => ClassEscape::Char('\n'),
        't' => ClassEscape::Char('\t'),
        'r' => ClassEscape::Char('\r'),
        other => ClassEscape::Char(other),
    }
}

fn expand_set(set: &ClassSet) -> Vec<(char, char)> {
    // Only non-negated shorthand sets appear inside classes.
    set.ranges.clone()
}

/// True if the AST can only match the empty string (pure assertions), which
/// makes repetition meaningless.
fn zero_width(ast: &Ast) -> bool {
    match ast {
        Ast::Assert(_) | Ast::Empty => true,
        Ast::NonCapturing(inner) | Ast::Group { inner, .. } => zero_width(inner),
        _ => false,
    }
}
