//! Unit and property tests for the regex engine.

use crate::Regex;

fn m(pattern: &str, haystack: &str) -> Option<(usize, usize)> {
    Regex::new(pattern)
        .unwrap()
        .find(haystack)
        .map(|m| (m.start, m.end))
}

#[test]
fn literal_match() {
    assert_eq!(m("abc", "xxabcxx"), Some((2, 5)));
    assert_eq!(m("abc", "ab"), None);
    assert_eq!(m("", "anything"), Some((0, 0)));
}

#[test]
fn leftmost_match() {
    assert_eq!(m("a", "xaxa"), Some((1, 2)));
}

#[test]
fn dot_does_not_match_newline() {
    assert_eq!(m("a.c", "abc"), Some((0, 3)));
    assert_eq!(m("a.c", "a\nc"), None);
}

#[test]
fn classes() {
    assert_eq!(m("[a-c]+", "zzabcaz"), Some((2, 6)));
    assert_eq!(m("[^a-c]+", "abcxyz"), Some((3, 6)));
    assert_eq!(m(r"[\d]+", "ab123cd"), Some((2, 5)));
    assert_eq!(m("[-a]", "b-"), Some((1, 2))); // trailing/leading dash literal
    assert_eq!(m("[a-]", "-"), Some((0, 1)));
}

#[test]
fn escapes() {
    assert_eq!(m(r"\d+", "abc 42 def"), Some((4, 6)));
    assert_eq!(m(r"\w+", "  hello_1 "), Some((2, 9)));
    assert_eq!(m(r"\s", "ab cd"), Some((2, 3)));
    assert_eq!(m(r"\D+", "12ab34"), Some((2, 4)));
    assert_eq!(m(r"a\.b", "a.b"), Some((0, 3)));
    assert_eq!(m(r"a\.b", "axb"), None);
    assert_eq!(m(r"\(\)", "()"), Some((0, 2)));
}

#[test]
fn quantifiers() {
    assert_eq!(m("ab*c", "ac"), Some((0, 2)));
    assert_eq!(m("ab*c", "abbbc"), Some((0, 5)));
    assert_eq!(m("ab+c", "ac"), None);
    assert_eq!(m("ab?c", "abc"), Some((0, 3)));
    assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
    assert_eq!(m("a{2,}", "aaa"), Some((0, 3)));
    assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)));
    assert_eq!(m("a{2,3}", "a"), None);
}

#[test]
fn greedy_vs_lazy() {
    assert_eq!(m("<.*>", "<a><b>"), Some((0, 6)));
    assert_eq!(m("<.*?>", "<a><b>"), Some((0, 3)));
    assert_eq!(m("a+?", "aaa"), Some((0, 1)));
}

#[test]
fn literal_braces_allowed() {
    // Ramble variable templates like `{n_threads}` appear in patterns.
    assert_eq!(m(r"\{n\}", "{n}"), Some((0, 3)));
    assert_eq!(m("{n}", "x{n}y"), Some((1, 4))); // `{` not a valid counted rep → literal
    assert_eq!(m("a{,3}", "a{,3}"), Some((0, 5))); // `{,3}` is literal in our dialect
}

#[test]
fn alternation() {
    assert_eq!(m("cat|dog", "hotdog"), Some((3, 6)));
    assert_eq!(m("a|ab", "ab"), Some((0, 1))); // leftmost-first: prefers `a`
    assert_eq!(m("ab|a", "ab"), Some((0, 2)));
    assert_eq!(m("x(a|b)+y", "xababy"), Some((0, 6)));
}

#[test]
fn anchors() {
    assert_eq!(m("^abc", "abcdef"), Some((0, 3)));
    assert_eq!(m("^abc", "xabc"), None);
    assert_eq!(m("def$", "abcdef"), Some((3, 6)));
    assert_eq!(m("def$", "defx"), None);
    assert_eq!(m("^$", ""), Some((0, 0)));
    assert_eq!(m("^$", "x"), None);
}

#[test]
fn word_boundaries() {
    assert_eq!(m(r"\bcat\b", "a cat sat"), Some((2, 5)));
    assert_eq!(m(r"\bcat\b", "concatenate"), None);
    assert_eq!(m(r"\Bcat\B", "concatenate"), Some((3, 6)));
}

#[test]
fn captures_numbered() {
    let re = Regex::new(r"(\d+)-(\d+)").unwrap();
    let caps = re.captures("range 10-25 end").unwrap();
    assert_eq!(caps.get(0).unwrap().text, "10-25");
    assert_eq!(caps.get(1).unwrap().text, "10");
    assert_eq!(caps.get(2).unwrap().text, "25");
    assert_eq!(caps.len(), 3);
}

#[test]
fn captures_named() {
    let re = Regex::new(r"(?P<lo>\d+)-(?P<hi>\d+)").unwrap();
    let caps = re.captures("10-25").unwrap();
    assert_eq!(caps.name("lo").unwrap().text, "10");
    assert_eq!(caps.name("hi").unwrap().text, "25");
    assert!(caps.name("missing").is_none());
    let names: Vec<&str> = re.capture_names().collect();
    assert_eq!(names, vec!["lo", "hi"]);
}

#[test]
fn rust_style_named_group() {
    let re = Regex::new(r"(?<val>\w+)").unwrap();
    assert_eq!(re.captures("abc").unwrap().name("val").unwrap().text, "abc");
}

#[test]
fn optional_group_not_participating() {
    let re = Regex::new(r"a(b)?c").unwrap();
    let caps = re.captures("ac").unwrap();
    assert_eq!(caps.get(0).unwrap().text, "ac");
    assert!(caps.get(1).is_none());
}

#[test]
fn repeated_group_keeps_last() {
    let re = Regex::new(r"(a|b)+").unwrap();
    let caps = re.captures("abab").unwrap();
    assert_eq!(caps.get(1).unwrap().text, "b");
}

#[test]
fn non_capturing_group() {
    let re = Regex::new(r"(?:ab)+(c)").unwrap();
    let caps = re.captures("ababc").unwrap();
    assert_eq!(caps.get(0).unwrap().text, "ababc");
    assert_eq!(caps.get(1).unwrap().text, "c");
    assert_eq!(caps.len(), 2);
}

#[test]
fn find_iter_non_overlapping() {
    let re = Regex::new(r"\d+").unwrap();
    let nums: Vec<&str> = re.find_iter("a1b22c333").map(|m| m.text).collect();
    assert_eq!(nums, vec!["1", "22", "333"]);
}

#[test]
fn find_iter_empty_matches_progress() {
    let re = Regex::new(r"x*").unwrap();
    let spans: Vec<(usize, usize)> = re.find_iter("axa").map(|m| (m.start, m.end)).collect();
    // Must terminate and cover each position at most once.
    assert!(spans.len() <= 4);
    assert!(spans.contains(&(1, 2)));
}

#[test]
fn captures_iter() {
    let re = Regex::new(r"(?P<k>\w+)=(?P<v>\d+)").unwrap();
    let pairs: Vec<(String, String)> = re
        .captures_iter("a=1 b=22 c=333")
        .map(|c| {
            (
                c.name("k").unwrap().text.to_string(),
                c.name("v").unwrap().text.to_string(),
            )
        })
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("a".into(), "1".into()),
            ("b".into(), "22".into()),
            ("c".into(), "333".into())
        ]
    );
}

#[test]
fn unicode_input() {
    assert_eq!(m("é+", "café is café"), Some((3, 5)));
    let re = Regex::new(".").unwrap();
    assert_eq!(re.find("λx").unwrap().text, "λ");
}

/// The exact FOM regex from paper Figure 8.
#[test]
fn golden_fig8_fom_regex() {
    let re = Regex::new(r"(?P<done>Kernel done)").unwrap();
    let out = "initializing\nKernel done\ncleanup\n";
    let caps = re.captures(out).unwrap();
    assert_eq!(caps.name("done").unwrap().text, "Kernel done");
}

/// Typical FOM extraction patterns used by real Ramble applications.
#[test]
fn realistic_fom_patterns() {
    let re = Regex::new(r"Figure of Merit \(FOM_2\):\s+(?P<fom>[0-9]+\.[0-9]+)").unwrap();
    let caps = re.captures("Figure of Merit (FOM_2):   123.456").unwrap();
    assert_eq!(caps.name("fom").unwrap().text, "123.456");

    let re = Regex::new(r"^Solve time: (?P<t>\d+\.\d+(e[+-]?\d+)?) seconds$").unwrap();
    let caps = re.captures("Solve time: 1.25e+01 seconds").unwrap();
    assert_eq!(caps.name("t").unwrap().text, "1.25e+01");
}

#[test]
fn compile_errors() {
    assert!(Regex::new("(abc").is_err());
    assert!(Regex::new("abc)").is_err());
    assert!(Regex::new("[abc").is_err());
    assert!(Regex::new("*a").is_err());
    assert!(Regex::new(r"\q").is_err());
    assert!(Regex::new("[z-a]").is_err());
    assert!(Regex::new("a{3,2}").is_err());
    assert!(Regex::new("(?P<dup>a)(?P<dup>b)").is_err());
    assert!(Regex::new("(?P<>a)").is_err());
    assert!(Regex::new("^*").is_err());
}

#[test]
fn pathological_pattern_is_linear() {
    // (a+)+b on a long run of 'a's: catastrophic for backtrackers,
    // linear for the Pike VM.
    let re = Regex::new("(a+)+b").unwrap();
    let haystack = "a".repeat(2000);
    let start = std::time::Instant::now();
    assert!(!re.is_match(&haystack));
    assert!(start.elapsed().as_secs() < 5, "matching took too long");
}

// ---------------------------------------------------------------------------
// Property tests against a reference backtracking matcher.
// ---------------------------------------------------------------------------

mod reference {
    //! An obviously-correct oracle: enumerates *all* positions at which each
    //! sub-expression can stop matching. Exponential in principle, fine on the
    //! tiny generated inputs, and free of the engine's cleverness.

    use crate::ast::{parse, Assertion, Ast, ClassSet};
    use std::collections::BTreeSet;

    pub fn is_match(pattern: &str, haystack: &str) -> Option<bool> {
        let parsed = parse(pattern).ok()?;
        let chars: Vec<char> = haystack.chars().collect();
        Some((0..=chars.len()).any(|start| !ends(&parsed.ast, &chars, start).is_empty()))
    }

    /// All positions where `ast`, starting at `pos`, can stop matching.
    fn ends(ast: &Ast, chars: &[char], pos: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        match ast {
            Ast::Empty => {
                out.insert(pos);
            }
            Ast::Lit(c) => {
                if chars.get(pos) == Some(c) {
                    out.insert(pos + 1);
                }
            }
            Ast::Dot => {
                if chars.get(pos).is_some_and(|&c| c != '\n') {
                    out.insert(pos + 1);
                }
            }
            Ast::Class(set) => {
                if chars.get(pos).is_some_and(|&c| set.matches(c)) {
                    out.insert(pos + 1);
                }
            }
            Ast::Assert(a) => {
                let prev = pos.checked_sub(1).and_then(|i| chars.get(i));
                let next = chars.get(pos);
                let boundary = prev.is_some_and(|&c| ClassSet::is_word_char(c))
                    != next.is_some_and(|&c| ClassSet::is_word_char(c));
                let holds = match a {
                    Assertion::Start => pos == 0,
                    Assertion::End => pos == chars.len(),
                    Assertion::WordBoundary => boundary,
                    Assertion::NotWordBoundary => !boundary,
                };
                if holds {
                    out.insert(pos);
                }
            }
            Ast::Concat(items) => {
                let mut cur = BTreeSet::from([pos]);
                for item in items {
                    let mut next = BTreeSet::new();
                    for &p in &cur {
                        next.extend(ends(item, chars, p));
                    }
                    cur = next;
                }
                out = cur;
            }
            Ast::Alt(branches) => {
                for b in branches {
                    out.extend(ends(b, chars, pos));
                }
            }
            Ast::Repeat {
                inner, min, max, ..
            } => {
                // positions reachable after exactly k iterations
                let mut frontier = BTreeSet::from([pos]);
                let hard_cap = max
                    .unwrap_or((chars.len() + 1) as u32)
                    .min(chars.len() as u32 + 2);
                let mut k = 0u32;
                if *min == 0 {
                    out.extend(frontier.iter().copied());
                }
                while k < hard_cap.max(*min) {
                    let mut next = BTreeSet::new();
                    for &p in &frontier {
                        next.extend(ends(inner, chars, p));
                    }
                    if next.is_empty() {
                        break;
                    }
                    k += 1;
                    if k >= *min && max.is_none_or(|m| k <= m) {
                        out.extend(next.iter().copied());
                    }
                    if next == frontier {
                        break; // empty-match fixpoint
                    }
                    frontier = next;
                }
            }
            Ast::Group { inner, .. } | Ast::NonCapturing(inner) => {
                out = ends(inner, chars, pos);
            }
        }
        out
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A strategy over patterns restricted to constructs the reference
    /// matcher handles faithfully.
    fn pattern_strategy() -> impl Strategy<Value = String> {
        let atom = prop_oneof![
            "[abc]",
            Just(".".to_string()),
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            Just("[ab]".to_string()),
            Just("[^a]".to_string()),
            Just(r"\d".to_string()),
            Just(r"\w".to_string()),
        ];
        let repeated = (
            atom,
            prop_oneof![
                Just("".to_string()),
                Just("*".to_string()),
                Just("+".to_string()),
                Just("?".to_string()),
                Just("{2}".to_string()),
                Just("{1,2}".to_string()),
            ],
        )
            .prop_map(|(a, q)| format!("{a}{q}"));
        prop::collection::vec(repeated, 1..5).prop_map(|parts| parts.join(""))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The Pike VM agrees with the reference backtracker on match/no-match.
        #[test]
        fn agrees_with_reference(pattern in pattern_strategy(), input in "[abc0-9 ]{0,12}") {
            let engine = Regex::new(&pattern).unwrap().is_match(&input);
            let oracle = reference::is_match(&pattern, &input).unwrap();
            prop_assert_eq!(engine, oracle, "pattern={} input={}", pattern, input);
        }

        /// Compilation never panics on arbitrary input.
        #[test]
        fn compile_total(pattern in "[ -~]{0,40}") {
            let _ = Regex::new(&pattern);
        }

        /// Matching never panics, and reported spans are in bounds & on char
        /// boundaries.
        #[test]
        fn match_total(pattern in pattern_strategy(), input in ".{0,20}") {
            let re = Regex::new(&pattern).unwrap();
            if let Some(m) = re.find(&input) {
                prop_assert!(m.start <= m.end && m.end <= input.len());
                prop_assert!(input.is_char_boundary(m.start) && input.is_char_boundary(m.end));
            }
        }

        /// A literal pattern finds exactly what `str::find` finds.
        #[test]
        fn literal_agrees_with_str_find(needle in "[a-z]{1,5}", hay in "[a-z]{0,20}") {
            let re = Regex::new(&needle).unwrap();
            prop_assert_eq!(re.find(&hay).map(|m| m.start), hay.find(&needle));
        }
    }
}
