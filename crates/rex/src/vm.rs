//! Pike VM: breadth-first NFA simulation with capture slots.
//!
//! Runs in `O(insts × input)` time regardless of the pattern, with
//! leftmost-greedy semantics (thread priority order).

use crate::ast::{Assertion, ClassSet};
use crate::prog::{Inst, Program};

/// A scheduled thread: program counter plus its capture slots.
#[derive(Clone)]
struct Thread {
    pc: usize,
    slots: Vec<Option<usize>>,
}

/// A priority-ordered thread list with O(1) duplicate suppression.
struct ThreadList {
    threads: Vec<Thread>,
    /// generation marks per pc
    seen: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn new(len: usize) -> Self {
        ThreadList {
            threads: Vec::with_capacity(16),
            seen: vec![0; len],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.generation += 1;
    }

    fn mark(&mut self, pc: usize) -> bool {
        if self.seen[pc] == self.generation {
            false
        } else {
            self.seen[pc] = self.generation;
            true
        }
    }
}

/// Context for zero-width assertions at a position.
#[derive(Clone, Copy)]
struct AssertCtx {
    at_start: bool,
    at_end: bool,
    prev_is_word: bool,
    next_is_word: bool,
}

impl AssertCtx {
    fn holds(&self, assertion: Assertion) -> bool {
        match assertion {
            Assertion::Start => self.at_start,
            Assertion::End => self.at_end,
            Assertion::WordBoundary => self.prev_is_word != self.next_is_word,
            Assertion::NotWordBoundary => self.prev_is_word == self.next_is_word,
        }
    }
}

/// Adds `pc` (and its epsilon closure) to `list` with the given slots.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    pos: usize,
    ctx: AssertCtx,
    slots: &[Option<usize>],
) {
    if !list.mark(pc) {
        return;
    }
    match &prog.insts[pc] {
        Inst::Jmp(target) => add_thread(prog, list, *target, pos, ctx, slots),
        Inst::Split { first, second } => {
            add_thread(prog, list, *first, pos, ctx, slots);
            add_thread(prog, list, *second, pos, ctx, slots);
        }
        Inst::Save(slot) => {
            let mut new_slots = slots.to_vec();
            new_slots[*slot] = Some(pos);
            add_thread(prog, list, pc + 1, pos, ctx, &new_slots);
        }
        Inst::Assert(a) => {
            if ctx.holds(*a) {
                add_thread(prog, list, pc + 1, pos, ctx, slots);
            }
        }
        Inst::Char(_) | Inst::Any | Inst::Class(_) | Inst::Match => {
            list.threads.push(Thread {
                pc,
                slots: slots.to_vec(),
            });
        }
    }
}

fn inst_matches(inst: &Inst, c: char) -> bool {
    match inst {
        Inst::Char(l) => *l == c,
        Inst::Any => c != '\n',
        Inst::Class(set) => set.matches(c),
        _ => false,
    }
}

/// Searches `haystack[at..]` for the leftmost match; returns capture slots.
pub fn search(prog: &Program, haystack: &str, at: usize) -> Option<Vec<Option<usize>>> {
    let mut clist = ThreadList::new(prog.insts.len());
    let mut nlist = ThreadList::new(prog.insts.len());
    clist.clear();
    nlist.clear();

    let empty_slots = vec![None; prog.slot_count];
    let mut matched: Option<Vec<Option<usize>>> = None;

    // Walk positions `at..=len` (the final position processes end-of-input).
    let tail = &haystack[at..];
    let mut iter = tail.char_indices();
    let mut pos = at;
    let mut prev_char: Option<char> = if at == 0 {
        None
    } else {
        haystack[..at].chars().next_back()
    };

    loop {
        let cur: Option<(usize, char)> = iter.next().map(|(i, c)| (at + i, c));
        let next_char = cur.map(|(_, c)| c);
        let ctx = AssertCtx {
            at_start: pos == 0,
            at_end: next_char.is_none(),
            prev_is_word: prev_char.is_some_and(ClassSet::is_word_char),
            next_is_word: next_char.is_some_and(ClassSet::is_word_char),
        };

        // Seed a new starting thread at this position (lowest priority),
        // unless the pattern is anchored past position `at` or we already
        // have a match (leftmost wins).
        if matched.is_none() && (!prog.anchored_start || pos == at) {
            add_thread(prog, &mut clist, 0, pos, ctx, &empty_slots);
        }

        if clist.threads.is_empty() && matched.is_some() {
            break;
        }

        // Process current threads in priority order.
        nlist.clear();
        let threads = std::mem::take(&mut clist.threads);
        let next_ctx_pos = next_char.map(|c| pos + c.len_utf8());
        for thread in &threads {
            match &prog.insts[thread.pc] {
                Inst::Match => {
                    matched = Some(thread.slots.clone());
                    // Lower-priority threads cannot yield a better match.
                    break;
                }
                inst => {
                    if let (Some(c), Some(_npos)) = (next_char, next_ctx_pos) {
                        if inst_matches(inst, c) {
                            add_thread_next(&mut nlist, thread.pc + 1, &thread.slots);
                        }
                    }
                }
            }
        }

        let (new_pos, consumed) = match cur {
            Some((i, c)) => (i + c.len_utf8(), Some(c)),
            None => break,
        };

        // Move nlist's raw threads into clist, expanding epsilon closures with
        // the context of the new position.
        std::mem::swap(&mut clist, &mut nlist);
        let raw = std::mem::take(&mut clist.threads);
        clist.clear();
        // Determine context at new_pos.
        let peek_next = haystack[new_pos..].chars().next();
        let ctx2 = AssertCtx {
            at_start: new_pos == 0,
            at_end: peek_next.is_none(),
            prev_is_word: consumed.is_some_and(ClassSet::is_word_char),
            next_is_word: peek_next.is_some_and(ClassSet::is_word_char),
        };
        for t in raw {
            add_thread(prog, &mut clist, t.pc, new_pos, ctx2, &t.slots);
        }

        prev_char = consumed;
        pos = new_pos;

        if matched.is_some() && clist.threads.is_empty() {
            break;
        }
    }

    matched
}

/// Queues a thread for the next position without epsilon expansion (done when
/// the position's context is known).
fn add_thread_next(list: &mut ThreadList, pc: usize, slots: &[Option<usize>]) {
    if !list.mark(pc) {
        return;
    }
    list.threads.push(Thread {
        pc,
        slots: slots.to_vec(),
    });
}
