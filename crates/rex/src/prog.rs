//! Compilation of the AST into Pike-VM bytecode.

use crate::ast::{Assertion, Ast, ClassSet, Parsed};

/// One VM instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match a single literal character, then advance.
    Char(char),
    /// Match any character except `\n`, then advance.
    Any,
    /// Match a character class, then advance.
    Class(ClassSet),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution; the `first` branch has higher priority (greediness).
    Split { first: usize, second: usize },
    /// Record the current position in capture slot `slot`.
    Save(usize),
    /// Accept.
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    /// Number of capture slots (2 × group count).
    pub slot_count: usize,
    /// `(name, group index)` pairs.
    pub names: Vec<(String, usize)>,
    /// True if the pattern is anchored at the start (`^…`), which lets the
    /// search loop skip restarting at every offset.
    pub anchored_start: bool,
}

/// Compiles a parsed pattern.
///
/// The program begins with `Save(0)` and ends with `Save(1); Match`; the
/// search loop handles the unanchored-prefix scan itself.
pub fn compile(parsed: &Parsed) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.push(Inst::Save(0));
    c.emit(&parsed.ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program {
        insts: c.insts,
        slot_count: parsed.group_count * 2,
        names: parsed.names.clone(),
        anchored_start: starts_anchored(&parsed.ast),
    }
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::Assert(Assertion::Start) => true,
        Ast::Concat(items) => items.first().is_some_and(starts_anchored),
        Ast::Group { inner, .. } | Ast::NonCapturing(inner) => starts_anchored(inner),
        Ast::Alt(branches) => branches.iter().all(starts_anchored),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Lit(c) => {
                self.push(Inst::Char(*c));
            }
            Ast::Dot => {
                self.push(Inst::Any);
            }
            Ast::Class(set) => {
                self.push(Inst::Class(set.clone()));
            }
            Ast::Assert(a) => {
                self.push(Inst::Assert(*a));
            }
            Ast::Concat(items) => {
                for item in items {
                    self.emit(item);
                }
            }
            Ast::Alt(branches) => self.emit_alt(branches),
            Ast::Repeat {
                inner,
                min,
                max,
                greedy,
            } => self.emit_repeat(inner, *min, *max, *greedy),
            Ast::Group { index, inner, .. } => {
                self.push(Inst::Save(index * 2));
                self.emit(inner);
                self.push(Inst::Save(index * 2 + 1));
            }
            Ast::NonCapturing(inner) => self.emit(inner),
        }
    }

    fn emit_alt(&mut self, branches: &[Ast]) {
        // split b1, (split b2, (… bn)); each branch jumps to the common end.
        let mut jmp_ends = Vec::new();
        let mut split_fixups = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            let last = i + 1 == branches.len();
            if !last {
                let split = self.push(Inst::Split {
                    first: 0,
                    second: 0,
                });
                split_fixups.push(split);
            }
            let branch_start = self.here();
            self.emit(branch);
            if !last {
                jmp_ends.push(self.push(Inst::Jmp(0)));
            }
            if !last {
                let split = split_fixups.last().copied().unwrap();
                if let Inst::Split { first, .. } = &mut self.insts[split] {
                    *first = branch_start;
                }
            }
            // fix the `second` of the split to point at the next branch start
            if !last {
                let next = self.here();
                let split = split_fixups.pop().unwrap();
                if let Inst::Split { second, .. } = &mut self.insts[split] {
                    *second = next;
                }
            }
        }
        let end = self.here();
        for jmp in jmp_ends {
            if let Inst::Jmp(target) = &mut self.insts[jmp] {
                *target = end;
            }
        }
    }

    fn emit_repeat(&mut self, inner: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory copies.
        for _ in 0..min {
            self.emit(inner);
        }
        match max {
            Some(max) => {
                // Optional copies: (split body, end) × (max - min)
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.push(Inst::Split {
                        first: 0,
                        second: 0,
                    });
                    splits.push(split);
                    let body = self.here();
                    self.emit(inner);
                    let split_idx = *splits.last().unwrap();
                    if let Inst::Split { first, .. } = &mut self.insts[split_idx] {
                        *first = body;
                    }
                }
                let end = self.here();
                for split in splits {
                    if let Inst::Split { first, second } = &mut self.insts[split] {
                        if greedy {
                            *second = end;
                        } else {
                            // lazy: prefer skipping the body
                            let body = *first;
                            *first = end;
                            *second = body;
                        }
                    }
                }
            }
            None => {
                // Unbounded tail: L: split body, end; body: inner; jmp L
                let split = self.push(Inst::Split {
                    first: 0,
                    second: 0,
                });
                let body = self.here();
                self.emit(inner);
                self.push(Inst::Jmp(split));
                let end = self.here();
                if let Inst::Split { first, second } = &mut self.insts[split] {
                    if greedy {
                        *first = body;
                        *second = end;
                    } else {
                        *first = end;
                        *second = body;
                    }
                }
            }
        }
    }
}
