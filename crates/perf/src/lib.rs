//! `benchpark-perf` — performance analysis: Caliper-style profiles, Adiak
//! metadata, Thicket multi-profile composition, and Extra-P scaling models.
//!
//! Paper §5 lays out the performance-analysis plan this crate implements:
//!
//! * *"we plan to annotate the benchmarks with **Caliper**"* —
//!   [`Annotator`] provides nested-region instrumentation (both real wall
//!   clock for in-process code and recorded values for simulator output),
//!   producing [`Profile`]s: call-path → time plus metadata.
//! * *"We will use **Adiak** to collect metadata related to the build
//!   settings and execution contexts, enabling filtering and sorting of
//!   collected profiles"* — [`Adiak`].
//! * *"**Thicket** … composes performance data from multiple performance
//!   profiles potentially generated at different scales, on different
//!   architectures"* — [`Thicket`]: a (profile × call-tree-node) table with
//!   filter / group-by / per-node statistics.
//! * *"an analytical performance model computed by **Extra-P**"* (Figure 14)
//!   — [`extrap::fit`] searches the standard Extra-P hypothesis space
//!   `c + a·p^i·log₂^j(p)` by least squares and reports the best model in
//!   the figure's notation, e.g. `-0.636 + 0.0466 * p^(1)`.

mod adiak;
mod caliper;
pub mod extrap;
mod thicket;

pub use adiak::Adiak;
pub use caliper::{Annotator, Profile};
pub use extrap::{fit, ScalingModel};
pub use thicket::{NodeStats, Thicket};

#[cfg(test)]
mod tests;
