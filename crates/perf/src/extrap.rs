//! Extra-P-style analytical scaling models (paper Figure 14).
//!
//! Extra-P fits functions from the *performance model normal form*
//! `f(p) = c + a · p^i · log₂^j(p)` to measurements at different scales and
//! picks the best hypothesis. Figure 14 shows such a model for `MPI_Bcast`
//! on the CTS architecture: `-0.6355857931034596 + 0.04660217702356169 · p¹`.
//! This module reproduces that machinery: least-squares fits over the
//! standard exponent grid, selection by adjusted R², and rendering in the
//! figure's notation.

use std::fmt;

/// The Extra-P exponent grid for `i` (powers of `p`).
pub const EXPONENTS: &[f64] = &[
    0.0,
    0.25,
    1.0 / 3.0,
    0.5,
    2.0 / 3.0,
    0.75,
    1.0,
    1.25,
    4.0 / 3.0,
    1.5,
    2.0,
    7.0 / 3.0,
    2.5,
    3.0,
];

/// The grid for `j` (powers of `log₂ p`).
pub const LOG_EXPONENTS: &[u32] = &[0, 1, 2];

/// A fitted single-term model `c + a · p^i · log₂^j(p)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingModel {
    pub c: f64,
    pub a: f64,
    /// Exponent of `p`.
    pub i: f64,
    /// Exponent of `log₂ p`.
    pub j: u32,
    /// Coefficient of determination on the training points.
    pub r_squared: f64,
    /// Adjusted R² (the selection criterion).
    pub adjusted_r_squared: f64,
    /// Symmetric mean absolute percentage error, `[0, 2]`.
    pub smape: f64,
}

impl ScalingModel {
    /// Evaluates the model at `p`.
    pub fn predict(&self, p: f64) -> f64 {
        self.c + self.a * basis(p, self.i, self.j)
    }

    /// True if the model is (asymptotically) constant.
    pub fn is_constant(&self) -> bool {
        self.a.abs() < 1e-12 || (self.i == 0.0 && self.j == 0)
    }

    /// The asymptotic complexity class as text (`O(p^1)`, `O(log2(p))`…).
    pub fn complexity(&self) -> String {
        if self.is_constant() {
            return "O(1)".to_string();
        }
        match (self.i, self.j) {
            (i, 0) => format!("O(p^{})", trim_float(i)),
            (0.0, j) => format!("O(log2^{j}(p))"),
            (i, j) => format!("O(p^{} * log2^{}(p))", trim_float(i), j),
        }
    }
}

impl fmt::Display for ScalingModel {
    /// Renders in Figure 14's caption notation:
    /// `-0.6355857931034596 + 0.04660217702356169 * p^(1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_constant() {
            return write!(f, "{}", self.c);
        }
        write!(f, "{} + {} * ", self.c, self.a)?;
        match (self.i, self.j) {
            (i, 0) => write!(f, "p^({})", trim_float(i)),
            (0.0, j) => write!(f, "log2(p)^({j})"),
            (i, j) => write!(f, "p^({}) * log2(p)^({j})", trim_float(i)),
        }
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

fn basis(p: f64, i: f64, j: u32) -> f64 {
    let p = p.max(1.0);
    p.powf(i) * p.log2().powi(j as i32)
}

/// Fits the best single-term model to `(p, time)` measurements.
///
/// Needs at least 3 points (Extra-P requires ≥5 for confidence; we accept 3
/// and report quality through `adjusted_r_squared`). Returns `None` for
/// fewer points or degenerate inputs.
pub fn fit(points: &[(f64, f64)]) -> Option<ScalingModel> {
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();

    let mut best: Option<ScalingModel> = None;
    for &i in EXPONENTS {
        for &j in LOG_EXPONENTS {
            // g(p) = p^i log2^j p ; least squares for y = c + a g
            let g: Vec<f64> = points.iter().map(|(p, _)| basis(*p, i, j)).collect();
            let mean_g = g.iter().sum::<f64>() / n;
            let var_g: f64 = g.iter().map(|v| (v - mean_g).powi(2)).sum();
            let (c, a) = if var_g < 1e-12 {
                // constant basis (i = j = 0): intercept-only model
                (mean_y, 0.0)
            } else {
                let cov: f64 = points
                    .iter()
                    .zip(&g)
                    .map(|((_, y), gv)| (gv - mean_g) * (y - mean_y))
                    .sum();
                let a = cov / var_g;
                (mean_y - a * mean_g, a)
            };

            let ss_res: f64 = points
                .iter()
                .zip(&g)
                .map(|((_, y), gv)| (y - (c + a * gv)).powi(2))
                .sum();
            let r2 = if ss_tot < 1e-20 {
                if ss_res < 1e-20 {
                    1.0
                } else {
                    0.0
                }
            } else {
                1.0 - ss_res / ss_tot
            };
            let params = if a == 0.0 { 1.0 } else { 2.0 };
            let adj = if n - params - 1.0 > 0.0 {
                1.0 - (1.0 - r2) * (n - 1.0) / (n - params - 1.0)
            } else {
                r2
            };
            let smape = points
                .iter()
                .zip(&g)
                .map(|((_, y), gv)| {
                    let pred = c + a * gv;
                    let denom = y.abs() + pred.abs();
                    if denom < 1e-20 {
                        0.0
                    } else {
                        2.0 * (pred - y).abs() / denom
                    }
                })
                .sum::<f64>()
                / n;

            let candidate = ScalingModel {
                c,
                a,
                i,
                j,
                r_squared: r2,
                adjusted_r_squared: adj,
                smape,
            };
            let better = match &best {
                None => true,
                Some(cur) => {
                    // prefer higher adjusted R²; on (near-)ties prefer the
                    // simpler hypothesis (smaller i, then smaller j)
                    let diff = candidate.adjusted_r_squared - cur.adjusted_r_squared;
                    diff > 1e-9
                        || (diff.abs() <= 1e-9 && (candidate.i, candidate.j) < (cur.i, cur.j))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}
