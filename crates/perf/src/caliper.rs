//! Caliper-style region instrumentation and profiles.

use std::collections::BTreeMap;
use std::time::Instant;

/// One performance profile: call-path regions with inclusive times, plus
/// run metadata (Adiak).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Region path (`main/solve`) → inclusive seconds.
    pub regions: BTreeMap<String, f64>,
    /// Adiak metadata (`machine=cts1`, `nprocs=512`, …).
    pub metadata: BTreeMap<String, String>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Builds a profile from `(region, seconds)` pairs (e.g. a simulated
    /// job's output) and metadata pairs.
    pub fn from_parts<R, M>(regions: R, metadata: M) -> Profile
    where
        R: IntoIterator<Item = (String, f64)>,
        M: IntoIterator<Item = (String, String)>,
    {
        Profile {
            regions: regions.into_iter().collect(),
            metadata: metadata.into_iter().collect(),
        }
    }

    /// Adds (accumulates) a region measurement.
    pub fn record(&mut self, path: &str, seconds: f64) {
        *self.regions.entry(path.to_string()).or_insert(0.0) += seconds;
    }

    /// Sets a metadata key.
    pub fn set_metadata(&mut self, key: &str, value: impl ToString) {
        self.metadata.insert(key.to_string(), value.to_string());
    }

    /// Looks up a region's time.
    pub fn get(&self, path: &str) -> Option<f64> {
        self.regions.get(path).copied()
    }

    /// A metadata value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.metadata.get(key).map(String::as_str)
    }

    /// Total time of top-level regions (paths without `/`).
    pub fn total(&self) -> f64 {
        self.regions
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .map(|(_, t)| t)
            .sum()
    }
}

/// Nested-region annotator: `begin`/`end` pairs around real code measure
/// wall-clock; `record` injects simulated measurements. Region paths nest
/// with `/` exactly as Caliper renders them.
#[derive(Debug)]
pub struct Annotator {
    stack: Vec<(String, Instant)>,
    profile: Profile,
}

impl Default for Annotator {
    fn default() -> Self {
        Self::new()
    }
}

impl Annotator {
    /// Starts with an empty profile.
    pub fn new() -> Annotator {
        Annotator {
            stack: Vec::new(),
            profile: Profile::new(),
        }
    }

    /// Current nesting path.
    fn path_with(&self, name: &str) -> String {
        let mut parts: Vec<&str> = self.stack.iter().map(|(n, _)| n.as_str()).collect();
        parts.push(name);
        parts.join("/")
    }

    /// `CALI_MARK_BEGIN(name)`.
    pub fn begin(&mut self, name: &str) {
        self.stack.push((name.to_string(), Instant::now()));
    }

    /// `CALI_MARK_END(name)`. Panics on mismatched nesting, like Caliper's
    /// runtime error.
    pub fn end(&mut self, name: &str) {
        let (top, started) = self.stack.pop().expect("end without begin");
        assert_eq!(
            top, name,
            "mismatched region nesting: began {top}, ended {name}"
        );
        let mut parts: Vec<&str> = self.stack.iter().map(|(n, _)| n.as_str()).collect();
        parts.push(name);
        let path = parts.join("/");
        self.profile.record(&path, started.elapsed().as_secs_f64());
    }

    /// Records a simulated measurement under the current nesting.
    pub fn record(&mut self, name: &str, seconds: f64) {
        let path = self.path_with(name);
        self.profile.record(&path, seconds);
    }

    /// Times a closure as a region and returns its value.
    pub fn scope<T>(&mut self, name: &str, f: impl FnOnce(&mut Annotator) -> T) -> T {
        self.begin(name);
        let value = f(self);
        self.end(name);
        value
    }

    /// Finishes annotation, yielding the profile. Panics if regions are
    /// still open.
    pub fn finish(self) -> Profile {
        assert!(
            self.stack.is_empty(),
            "unclosed regions: {:?}",
            self.stack.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        self.profile
    }

    /// Mutable access to the profile (for metadata).
    pub fn profile_mut(&mut self) -> &mut Profile {
        &mut self.profile
    }
}
