//! Adiak-style run metadata collection (paper §5).

use crate::caliper::Profile;
use std::collections::BTreeMap;

/// Collects build-settings and execution-context metadata, then stamps it
/// onto profiles so Thicket can filter and sort by it.
#[derive(Debug, Clone, Default)]
pub struct Adiak {
    values: BTreeMap<String, String>,
}

impl Adiak {
    /// An empty collector.
    pub fn new() -> Adiak {
        Adiak::default()
    }

    /// `adiak::value(name, value)`.
    pub fn value(&mut self, name: &str, value: impl ToString) -> &mut Self {
        self.values.insert(name.to_string(), value.to_string());
        self
    }

    /// The standard implicit keys Adiak collects (`adiak::collect_all`),
    /// given the execution context.
    pub fn collect_all(&mut self, user: &str, executable: &str, launchdate: &str) -> &mut Self {
        self.value("user", user);
        self.value("executable", executable);
        self.value("launchdate", launchdate);
        self
    }

    /// A value by key.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Stamps every collected value onto a profile's metadata.
    pub fn stamp(&self, profile: &mut Profile) {
        for (k, v) in &self.values {
            profile.metadata.insert(k.clone(), v.clone());
        }
    }

    /// Number of collected values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}
