//! Thicket-style composition of many profiles (paper §5, Figure 14's input).

use crate::caliper::Profile;
use std::collections::{BTreeMap, BTreeSet};

/// Per-call-tree-node statistics across profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub std_dev: f64,
}

/// A composition of performance profiles "potentially generated at different
/// scales, on different architectures, using different versions of
/// dependencies" (§5): a (profile × call-tree-node) data table plus a
/// per-profile metadata table.
#[derive(Debug, Clone, Default)]
pub struct Thicket {
    profiles: Vec<Profile>,
}

impl Thicket {
    /// Composes profiles into a thicket.
    pub fn from_profiles(profiles: Vec<Profile>) -> Thicket {
        Thicket { profiles }
    }

    /// Concatenates two thickets (`Thicket.concat_thickets`).
    pub fn concat(mut self, other: Thicket) -> Thicket {
        self.profiles.extend(other.profiles);
        self
    }

    /// Number of composed profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no profiles are composed.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The unified call tree: every region path appearing in any profile.
    pub fn tree(&self) -> BTreeSet<String> {
        self.profiles
            .iter()
            .flat_map(|p| p.regions.keys().cloned())
            .collect()
    }

    /// Keeps profiles whose metadata satisfies `pred`
    /// (`thicket.filter_metadata`).
    pub fn filter_metadata(&self, pred: impl Fn(&BTreeMap<String, String>) -> bool) -> Thicket {
        Thicket {
            profiles: self
                .profiles
                .iter()
                .filter(|p| pred(&p.metadata))
                .cloned()
                .collect(),
        }
    }

    /// Groups profiles by a metadata key (`thicket.groupby`). Profiles
    /// lacking the key are dropped.
    pub fn groupby(&self, key: &str) -> BTreeMap<String, Thicket> {
        let mut groups: BTreeMap<String, Vec<Profile>> = BTreeMap::new();
        for p in &self.profiles {
            if let Some(v) = p.meta(key) {
                groups.entry(v.to_string()).or_default().push(p.clone());
            }
        }
        groups
            .into_iter()
            .map(|(k, profiles)| (k, Thicket { profiles }))
            .collect()
    }

    /// The data column for one call-tree node: `(profile index, seconds)`
    /// for profiles that measured it.
    pub fn column(&self, region: &str) -> Vec<(usize, f64)> {
        self.profiles
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.get(region).map(|t| (i, t)))
            .collect()
    }

    /// `(x, y)` series for scaling studies: x from a numeric metadata key
    /// (e.g. `nprocs`), y the region's time — exactly what Extra-P consumes
    /// for Figure 14. Sorted by x; multiple profiles at the same x are kept
    /// as separate points.
    pub fn series(&self, x_key: &str, region: &str) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .profiles
            .iter()
            .filter_map(|p| {
                let x: f64 = p.meta(x_key)?.parse().ok()?;
                let y = p.get(region)?;
                Some((x, y))
            })
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }

    /// Statistics for one call-tree node across all profiles
    /// (`thicket.statsframe`).
    pub fn stats(&self, region: &str) -> Option<NodeStats> {
        let values: Vec<f64> = self.profiles.iter().filter_map(|p| p.get(region)).collect();
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Some(NodeStats {
            count,
            mean,
            min,
            max,
            std_dev: var.sqrt(),
        })
    }

    /// Statistics for every node (the full stats frame).
    pub fn stats_frame(&self) -> BTreeMap<String, NodeStats> {
        self.tree()
            .into_iter()
            .filter_map(|region| self.stats(&region).map(|s| (region, s)))
            .collect()
    }

    /// The `q`-th percentile (0–100, linear interpolation) of one node's
    /// values across profiles.
    pub fn percentile(&self, region: &str, q: f64) -> Option<f64> {
        let mut values: Vec<f64> = self.profiles.iter().filter_map(|p| p.get(region)).collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 100.0) / 100.0;
        let pos = q * (values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(values[lo] * (1.0 - frac) + values[hi] * frac)
    }

    /// Median across profiles for one node.
    pub fn median(&self, region: &str) -> Option<f64> {
        self.percentile(region, 50.0)
    }

    /// Renders the data frame: one row per profile (labeled by `label_key`
    /// metadata), one column per call-tree node — Thicket's tabular view.
    pub fn render_table(&self, label_key: &str) -> String {
        let regions: Vec<String> = self.tree().into_iter().collect();
        let mut out = format!("{:<16}", label_key);
        for region in &regions {
            out.push_str(&format!("{:>18}", truncate(region, 17)));
        }
        out.push('\n');
        for (idx, profile) in self.profiles.iter().enumerate() {
            let label = profile
                .meta(label_key)
                .map(String::from)
                .unwrap_or_else(|| format!("profile{idx}"));
            out.push_str(&format!("{:<16}", truncate(&label, 15)));
            for region in &regions {
                match profile.get(region) {
                    Some(v) => out.push_str(&format!("{v:>18.6}")),
                    None => out.push_str(&format!("{:>18}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}
