//! Tests for profiles, annotation, thicket composition, and Extra-P fitting.

use crate::{extrap, Adiak, Annotator, Profile, Thicket};

fn profile(regions: &[(&str, f64)], metadata: &[(&str, &str)]) -> Profile {
    Profile::from_parts(
        regions.iter().map(|(k, v)| (k.to_string(), *v)),
        metadata.iter().map(|(k, v)| (k.to_string(), v.to_string())),
    )
}

// ---------------------------------------------------------------------------
// Caliper / Adiak
// ---------------------------------------------------------------------------

#[test]
fn annotator_nests_regions() {
    let mut ann = Annotator::new();
    ann.begin("main");
    ann.record("setup", 1.5);
    ann.scope("solve", |a| {
        a.record("spmv", 0.5);
        a.record("spmv", 0.25); // accumulates
    });
    ann.end("main");
    let profile = ann.finish();
    assert_eq!(profile.get("main/setup"), Some(1.5));
    assert_eq!(profile.get("main/solve/spmv"), Some(0.75));
    assert!(profile.get("main").unwrap() >= 0.0); // wall-clocked
}

#[test]
#[should_panic(expected = "mismatched region nesting")]
fn annotator_detects_mismatch() {
    let mut ann = Annotator::new();
    ann.begin("a");
    ann.end("b");
}

#[test]
#[should_panic(expected = "unclosed regions")]
fn annotator_detects_unclosed() {
    let mut ann = Annotator::new();
    ann.begin("a");
    let _ = ann.finish();
}

#[test]
fn annotator_measures_real_time() {
    let mut ann = Annotator::new();
    ann.scope("spin", |_| {
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc != 42); // keep the loop alive
    });
    let profile = ann.finish();
    assert!(profile.get("spin").unwrap() > 0.0);
}

#[test]
fn adiak_stamps_metadata() {
    let mut adiak = Adiak::new();
    adiak
        .collect_all("olga", "amg", "2026-07-07")
        .value("nprocs", 512)
        .value("machine", "cts1");
    assert_eq!(adiak.len(), 5);
    assert_eq!(adiak.get("user"), Some("olga"));

    let mut p = Profile::new();
    p.record("main", 2.0);
    adiak.stamp(&mut p);
    assert_eq!(p.meta("machine"), Some("cts1"));
    assert_eq!(p.meta("nprocs"), Some("512"));
    assert_eq!(p.total(), 2.0);
}

// ---------------------------------------------------------------------------
// Thicket
// ---------------------------------------------------------------------------

fn scaling_thicket() -> Thicket {
    // MPI_Bcast times growing linearly with nprocs (the CTS behavior)
    let profiles = [32, 64, 128, 256, 512]
        .iter()
        .map(|&p| {
            profile(
                &[
                    ("main", p as f64 * 0.1),
                    ("MPI_Bcast", -0.64 + 0.0466 * p as f64),
                ],
                &[("nprocs", &p.to_string()), ("machine", "cts1")],
            )
        })
        .collect();
    Thicket::from_profiles(profiles)
}

#[test]
fn thicket_composition_and_tree() {
    let t = scaling_thicket();
    assert_eq!(t.len(), 5);
    let tree = t.tree();
    assert!(tree.contains("MPI_Bcast"));
    assert!(tree.contains("main"));
}

#[test]
fn thicket_filter_and_groupby() {
    let mut profiles = scaling_thicket().profiles().to_vec();
    profiles.push(profile(
        &[("main", 1.0)],
        &[("nprocs", "64"), ("machine", "ats2")],
    ));
    let t = Thicket::from_profiles(profiles);

    let cts_only = t.filter_metadata(|m| m.get("machine").is_some_and(|v| v == "cts1"));
    assert_eq!(cts_only.len(), 5);

    let groups = t.groupby("machine");
    assert_eq!(groups.len(), 2);
    assert_eq!(groups["cts1"].len(), 5);
    assert_eq!(groups["ats2"].len(), 1);
}

#[test]
fn thicket_concat() {
    let t = scaling_thicket().concat(scaling_thicket());
    assert_eq!(t.len(), 10);
}

#[test]
fn thicket_stats() {
    let t = Thicket::from_profiles(vec![
        profile(&[("main", 1.0)], &[]),
        profile(&[("main", 3.0)], &[]),
        profile(&[("other", 9.0)], &[]),
    ]);
    let stats = t.stats("main").unwrap();
    assert_eq!(stats.count, 2);
    assert_eq!(stats.mean, 2.0);
    assert_eq!(stats.min, 1.0);
    assert_eq!(stats.max, 3.0);
    assert!((stats.std_dev - 1.0).abs() < 1e-12);
    assert!(t.stats("nope").is_none());
    assert_eq!(t.stats_frame().len(), 2);
}

#[test]
fn thicket_percentiles_and_median() {
    let t = Thicket::from_profiles(
        (1..=9)
            .map(|i| profile(&[("main", i as f64)], &[]))
            .collect(),
    );
    assert_eq!(t.median("main"), Some(5.0));
    assert_eq!(t.percentile("main", 0.0), Some(1.0));
    assert_eq!(t.percentile("main", 100.0), Some(9.0));
    assert_eq!(t.percentile("main", 25.0), Some(3.0));
    assert!(t.percentile("missing", 50.0).is_none());
    // interpolation between samples
    let t2 = Thicket::from_profiles(vec![
        profile(&[("x", 1.0)], &[]),
        profile(&[("x", 2.0)], &[]),
    ]);
    assert_eq!(t2.median("x"), Some(1.5));
}

#[test]
fn thicket_render_table() {
    let t = scaling_thicket();
    let table = t.render_table("nprocs");
    assert!(table.contains("MPI_Bcast"));
    assert!(table.contains("512"));
    // one header + one row per profile
    assert_eq!(table.lines().count(), 1 + t.len());
}

#[test]
fn thicket_series_for_extrap() {
    let t = scaling_thicket();
    let series = t.series("nprocs", "MPI_Bcast");
    assert_eq!(series.len(), 5);
    assert_eq!(series[0].0, 32.0);
    assert_eq!(series[4].0, 512.0);
    assert!(series.windows(2).all(|w| w[0].1 < w[1].1));
}

// ---------------------------------------------------------------------------
// Extra-P (Figure 14)
// ---------------------------------------------------------------------------

/// The headline reproduction: linear-bcast measurements recover the paper's
/// `c + a·p^(1)` form.
#[test]
fn golden_fig14_linear_model_recovered() {
    let series = scaling_thicket().series("nprocs", "MPI_Bcast");
    let model = extrap::fit(&series).unwrap();
    assert_eq!(model.i, 1.0, "expected p^1, got {model}");
    assert_eq!(model.j, 0);
    assert!((model.a - 0.0466).abs() < 1e-6, "a = {}", model.a);
    assert!((model.c + 0.64).abs() < 1e-6, "c = {}", model.c);
    assert!(model.r_squared > 0.9999);
    assert_eq!(model.complexity(), "O(p^1)");
    // the display format matches the figure's caption style
    let text = model.to_string();
    assert!(text.contains("* p^(1)"), "{text}");
}

#[test]
fn recovers_log_model() {
    let points: Vec<(f64, f64)> = [2u32, 4, 8, 16, 64, 256, 1024]
        .iter()
        .map(|&p| (p as f64, 0.5 + 0.12 * (p as f64).log2()))
        .collect();
    let model = extrap::fit(&points).unwrap();
    assert_eq!((model.i, model.j), (0.0, 1), "{model}");
    assert!((model.a - 0.12).abs() < 1e-9);
}

#[test]
fn recovers_plogp_model() {
    let points: Vec<(f64, f64)> = [2u32, 4, 8, 32, 128, 512]
        .iter()
        .map(|&p| {
            let pf = p as f64;
            (pf, 1.0 + 0.003 * pf * pf.log2())
        })
        .collect();
    let model = extrap::fit(&points).unwrap();
    assert_eq!((model.i, model.j), (1.0, 1), "{model}");
}

#[test]
fn recovers_sqrt_model() {
    let points: Vec<(f64, f64)> = [4u32, 16, 64, 256, 1024]
        .iter()
        .map(|&p| (p as f64, 2.0 + 0.5 * (p as f64).sqrt()))
        .collect();
    let model = extrap::fit(&points).unwrap();
    assert_eq!((model.i, model.j), (0.5, 0), "{model}");
}

#[test]
fn constant_data_yields_constant_model() {
    let points: Vec<(f64, f64)> = [2u32, 4, 8, 16].iter().map(|&p| (p as f64, 3.25)).collect();
    let model = extrap::fit(&points).unwrap();
    assert!(model.is_constant(), "{model}");
    assert!((model.predict(1e6) - 3.25).abs() < 1e-9);
    assert_eq!(model.complexity(), "O(1)");
}

#[test]
fn fit_requires_three_points() {
    assert!(extrap::fit(&[]).is_none());
    assert!(extrap::fit(&[(1.0, 1.0), (2.0, 2.0)]).is_none());
    assert!(extrap::fit(&[(1.0, 1.0), (2.0, 2.0), (4.0, 4.0)]).is_some());
}

#[test]
fn noise_tolerance() {
    // 2% multiplicative noise must not change the selected exponent
    let noise = [1.01, 0.99, 1.02, 0.98, 1.015, 0.985, 1.0];
    let points: Vec<(f64, f64)> = [8u32, 16, 32, 64, 128, 256, 512]
        .iter()
        .zip(noise.iter())
        .map(|(&p, &n)| (p as f64, (0.1 + 0.05 * p as f64) * n))
        .collect();
    let model = extrap::fit(&points).unwrap();
    assert_eq!((model.i, model.j), (1.0, 0), "{model}");
    assert!(model.smape < 0.05);
}

#[test]
fn prediction_extrapolates() {
    let points: Vec<(f64, f64)> = [32u32, 64, 128, 256]
        .iter()
        .map(|&p| (p as f64, 0.0466 * p as f64 - 0.64))
        .collect();
    let model = extrap::fit(&points).unwrap();
    // extrapolate to 3456 procs (the far edge of Figure 14's x axis)
    let predicted = model.predict(3456.0);
    assert!((predicted - (0.0466 * 3456.0 - 0.64)).abs() < 0.1);
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Planted models are recovered from clean samples: exponent grid
        /// member + positive coefficient ⇒ exact (i, j) identification.
        #[test]
        fn planted_model_recovery(
            i_idx in 0usize..8, // up to p^1.25 to keep values sane
            j in 0u32..3,
            a in 0.01f64..10.0,
            c in -5.0f64..5.0,
        ) {
            let i = extrap::EXPONENTS[i_idx];
            // skip the degenerate constant hypothesis
            prop_assume!(!(i == 0.0 && j == 0));
            let points: Vec<(f64, f64)> = [2u32, 4, 8, 16, 32, 64, 128, 256]
                .iter()
                .map(|&p| {
                    let pf = p as f64;
                    (pf, c + a * pf.powf(i) * pf.log2().powi(j as i32))
                })
                .collect();
            let model = extrap::fit(&points).unwrap();
            prop_assert_eq!((model.i, model.j), (i, j),
                "planted c={} a={} p^{} log^{}, got {}", c, a, i, j, model);
            prop_assert!(model.r_squared > 0.999999);
        }

        /// The fit never panics and always improves on the mean-only model.
        #[test]
        fn fit_total_and_sane(points in prop::collection::vec((1.0f64..5000.0, -100.0f64..100.0), 3..20)) {
            if let Some(model) = extrap::fit(&points) {
                prop_assert!(model.r_squared <= 1.0 + 1e-9);
                prop_assert!(model.predict(64.0).is_finite());
            }
        }
    }
}
