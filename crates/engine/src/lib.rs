//! `benchpark-engine` — the shared task-graph execution core.
//!
//! The paper's pipeline is a chain of dependency graphs: Spack's package DAG
//! (§3.1), Ramble's experiment set (§3.2), and the GitLab CI job graph
//! (§3.3, Figure 6). Before this crate existed each layer hand-rolled its
//! own indegree/dependents bookkeeping; now all of them sit on one generic,
//! deterministic executor:
//!
//! * [`TaskGraph`] — typed nodes with dependency edges, duplicate-key and
//!   self-dependency checks, and cycle detection that names the full cycle
//!   path (mirroring `ramble::expand`'s cycle-reporting contract).
//! * [`Schedule`] / [`TaskGraph::plan`] — virtual-time LPT list scheduling
//!   with `workers` virtual slots. Reports (install makespans, CI job
//!   timings) are computed from this schedule, so they are reproducible
//!   regardless of thread timing.
//! * [`Engine`] — runs the side effects. [`Engine::run`] drives a single
//!   caller thread through the deterministic dispatch order (for workers
//!   that need `&mut` state, like the CI executor); [`Engine::run_pool`]
//!   runs a real crossbeam worker pool over a ready queue (for thread-safe
//!   side effects, like install-database registration or multi-system
//!   experiment fan-out). Both produce byte-identical [`EngineReport`]s for
//!   a deterministic worker function — regardless of pool size or thread
//!   interleaving — because virtual times come from the plan and fault
//!   injection is materialized per task before execution starts.
//! * Per-node resilience hooks — a [`benchpark_resilience::RetryPolicy`]
//!   (engine-wide default or per-task override), a seeded
//!   [`benchpark_resilience::FaultInjector`] whose rolls are pre-drawn in
//!   task order (so outcomes cannot depend on thread timing), and an
//!   optional [`benchpark_resilience::CircuitBreaker`] consulted in the
//!   serial drive.
//! * Explicit failure propagation — [`FailurePolicy::FailFast`] skips
//!   (transitive) dependents, [`FailurePolicy::AllowFailure`] lets them
//!   run, and [`FailurePolicy::Requeue`] re-runs the whole task a bounded
//!   number of times (the "requeue on survivors" shape the cluster
//!   scheduler applies to preempted jobs).
//!
//! # Example
//!
//! ```
//! use benchpark_engine::{Engine, TaskGraph};
//!
//! let mut graph = TaskGraph::new();
//! let fetch = graph.add_task("fetch", (), 2.0).unwrap();
//! let build = graph.add_task("build", (), 5.0).unwrap();
//! let test = graph.add_task("test", (), 1.0).unwrap();
//! graph.depends_on(build, fetch).unwrap();
//! graph.depends_on(test, build).unwrap();
//!
//! let report = Engine::new(2)
//!     .run(&graph, |task, _ctx| Ok::<_, String>(task.key.len()))
//!     .unwrap();
//! assert!(report.succeeded());
//! assert_eq!(report.makespan, 8.0); // chain: fetch → build → test
//! ```

#![deny(missing_docs)]

mod exec;
mod graph;
mod sched;

pub use exec::{Engine, EngineReport, TaskContext, TaskReport, TaskStatus};
pub use graph::{EngineError, FailurePolicy, Task, TaskGraph, TaskId};
pub use sched::Schedule;

#[cfg(test)]
mod tests;
