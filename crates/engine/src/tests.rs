//! Unit and property tests for the execution engine.

use crate::{Engine, EngineError, EngineReport, FailurePolicy, TaskGraph, TaskStatus};
use benchpark_resilience::{BreakerConfig, FaultInjector, RetryPolicy};
use benchpark_telemetry::TelemetrySink;
use proptest::prelude::*;
use std::cell::Cell;

/// One task report flattened for comparison: key, status, output, error,
/// attempts, requeues, and (optionally zeroed) virtual start/finish.
type Shape<O> = (
    String,
    TaskStatus,
    Option<O>,
    Option<String>,
    u32,
    u32,
    f64,
    f64,
);

/// Flattens a report into a comparable shape. `with_times` additionally
/// compares the virtual slots (only meaningful for a fixed worker count —
/// plan width changes slots by design).
fn shape<O: Clone>(report: &EngineReport<O>, with_times: bool) -> Vec<Shape<O>> {
    report
        .tasks
        .iter()
        .map(|t| {
            (
                t.key.clone(),
                t.status,
                t.output.clone(),
                t.error.clone(),
                t.attempts,
                t.requeues,
                if with_times { t.start } else { 0.0 },
                if with_times { t.finish } else { 0.0 },
            )
        })
        .collect()
}

fn diamond() -> TaskGraph<u32> {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("a", 1, 3.0).unwrap();
    let b = graph.add_task("b", 2, 2.0).unwrap();
    let c = graph.add_task("c", 3, 4.0).unwrap();
    let d = graph.add_task("d", 4, 1.0).unwrap();
    graph.depends_on(b, a).unwrap();
    graph.depends_on(c, a).unwrap();
    graph.depends_on(d, b).unwrap();
    graph.depends_on(d, c).unwrap();
    graph
}

// ---------------------------------------------------------------------------
// Graph construction and validation
// ---------------------------------------------------------------------------

#[test]
fn duplicate_key_and_self_dependency_are_rejected() {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("a", (), 1.0).unwrap();
    assert_eq!(
        graph.add_task("a", (), 1.0),
        Err(EngineError::DuplicateKey("a".to_string()))
    );
    assert_eq!(
        graph.depends_on(a, a),
        Err(EngineError::SelfDependency("a".to_string()))
    );
}

#[test]
fn cycle_error_names_the_full_path() {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("a", (), 1.0).unwrap();
    let b = graph.add_task("b", (), 1.0).unwrap();
    let c = graph.add_task("c", (), 1.0).unwrap();
    graph.depends_on(a, b).unwrap();
    graph.depends_on(b, c).unwrap();
    graph.depends_on(c, a).unwrap();
    let err = graph.validate().unwrap_err();
    match &err {
        EngineError::Cycle { path } => {
            assert_eq!(path.first(), path.last(), "cycle closes on itself");
            assert_eq!(path.len(), 4, "three nodes plus the repeated head");
            for key in ["a", "b", "c"] {
                assert!(
                    path.contains(&key.to_string()),
                    "{key} missing from {path:?}"
                );
            }
        }
        other => panic!("expected cycle, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(
        rendered.starts_with("dependency cycle: ") && rendered.contains(" -> "),
        "human-readable path, got `{rendered}`"
    );
    // execution surfaces the same error
    let exec_err = Engine::new(2)
        .run(&graph, |_, _| Ok::<_, String>(()))
        .unwrap_err();
    assert_eq!(exec_err, err);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

#[test]
fn single_worker_makespan_is_total_work() {
    let graph = diamond();
    let schedule = graph.plan(1).unwrap();
    assert_eq!(schedule.makespan, graph.total_work());
}

#[test]
fn plan_respects_dependencies_and_is_deterministic() {
    let graph = diamond();
    for workers in [1, 2, 4, 8] {
        let schedule = graph.plan(workers).unwrap();
        for (task, deps) in (0..graph.len()).map(|i| (i, &graph.tasks[i])) {
            let _ = deps;
            for &dep in &graph.deps[task] {
                assert!(
                    schedule.slots[dep].1 <= schedule.slots[task].0,
                    "task must not start before its dependency finishes"
                );
            }
        }
        assert_eq!(
            schedule,
            graph.plan(workers).unwrap(),
            "plan is a pure function"
        );
    }
    // diamond critical path: a(3) -> c(4) -> d(1)
    assert_eq!(graph.plan(2).unwrap().makespan, 8.0);
}

// ---------------------------------------------------------------------------
// Execution: serial drive
// ---------------------------------------------------------------------------

#[test]
fn diamond_runs_every_task_and_reports_in_insertion_order() {
    let graph = diamond();
    let report = Engine::new(2)
        .run(&graph, |task, ctx| {
            assert_eq!(ctx.attempt, 1);
            assert!(
                ctx.finish > ctx.start || graph.task(graph.id(&task.key).unwrap()).duration == 0.0
            );
            Ok::<_, String>(task.payload * 10)
        })
        .unwrap();
    assert!(report.succeeded());
    let keys: Vec<&str> = report.tasks.iter().map(|t| t.key.as_str()).collect();
    assert_eq!(keys, ["a", "b", "c", "d"]);
    assert_eq!(report.task("c").unwrap().output, Some(30));
    assert_eq!(report.makespan, 8.0);
}

#[test]
fn failfast_failure_skips_transitive_dependents_only() {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("a", (), 1.0).unwrap();
    let b = graph.add_task("b", (), 1.0).unwrap();
    let c = graph.add_task("c", (), 1.0).unwrap();
    graph.add_task("d", (), 1.0).unwrap();
    graph.depends_on(b, a).unwrap();
    graph.depends_on(c, b).unwrap();
    let sink = TelemetrySink::recording();
    let report = Engine::new(4)
        .with_telemetry(sink.clone())
        .run(&graph, |task, _| {
            if task.key == "a" {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap();
    let _ = (a, b, c);
    assert_eq!(report.task("a").unwrap().status, TaskStatus::Failed);
    assert_eq!(report.task("a").unwrap().error.as_deref(), Some("boom"));
    assert_eq!(report.task("b").unwrap().status, TaskStatus::Skipped);
    assert_eq!(
        report.task("c").unwrap().status,
        TaskStatus::Skipped,
        "skips cascade"
    );
    assert_eq!(
        report.task("d").unwrap().status,
        TaskStatus::Success,
        "independent task unaffected"
    );
    let telemetry = sink.report().unwrap();
    assert_eq!(telemetry.counter("engine.tasks.failed"), 1);
    assert_eq!(telemetry.counter("engine.tasks.skipped"), 2);
    assert_eq!(telemetry.counter("engine.tasks.success"), 1);
}

#[test]
fn allow_failure_lets_dependents_run() {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("lint", (), 1.0).unwrap();
    let b = graph.add_task("deploy", (), 1.0).unwrap();
    graph.set_policy(a, FailurePolicy::AllowFailure);
    graph.depends_on(b, a).unwrap();
    let report = Engine::new(1)
        .run(&graph, |task, _| {
            if task.key == "lint" {
                Err("style nit".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap();
    assert_eq!(report.task("lint").unwrap().status, TaskStatus::Failed);
    assert_eq!(report.task("deploy").unwrap().status, TaskStatus::Success);
}

#[test]
fn requeue_reruns_the_whole_task_after_retry_exhaustion() {
    let mut graph = TaskGraph::new();
    let flaky = graph.add_task("flaky", (), 1.0).unwrap();
    graph.set_policy(flaky, FailurePolicy::Requeue { max_requeues: 2 });
    let calls = Cell::new(0u32);
    let sink = TelemetrySink::recording();
    let report = Engine::new(1)
        .with_telemetry(sink.clone())
        .with_retry_policy(RetryPolicy::new(2))
        .run(&graph, |_, _| {
            calls.set(calls.get() + 1);
            if calls.get() < 4 {
                Err(format!("failure #{}", calls.get()))
            } else {
                Ok(())
            }
        })
        .unwrap();
    // run 1: attempts 1-2 fail; requeue; run 2: attempt 3 fails, 4 succeeds
    let task = report.task("flaky").unwrap();
    assert_eq!(task.status, TaskStatus::Success);
    assert_eq!(task.attempts, 4);
    assert_eq!(task.requeues, 1);
    assert_eq!(sink.report().unwrap().counter("engine.requeued"), 1);
}

#[test]
fn per_task_retry_override_beats_engine_default() {
    let mut graph = TaskGraph::new();
    let a = graph.add_task("stubborn", (), 1.0).unwrap();
    graph.set_retry(a, RetryPolicy::new(3));
    let report = Engine::new(1)
        .run(&graph, |_, ctx| {
            assert_eq!(ctx.max_attempts, 3);
            Err::<(), _>("always".to_string())
        })
        .unwrap();
    assert_eq!(report.task("stubborn").unwrap().attempts, 3);
    assert_eq!(report.task("stubborn").unwrap().status, TaskStatus::Failed);
}

#[test]
fn breaker_rejects_tasks_after_consecutive_failures() {
    let mut graph = TaskGraph::new();
    for key in ["a", "b", "c", "d"] {
        graph.add_task(key, (), 1.0).unwrap();
    }
    let sink = TelemetrySink::recording();
    let report = Engine::new(1)
        .with_telemetry(sink.clone())
        .with_breaker_config(BreakerConfig {
            failure_threshold: 2,
            reset_after_s: 60.0,
        })
        .run(&graph, |task, _| {
            if task.key == "a" || task.key == "b" {
                Err("down".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap();
    assert_eq!(report.task("a").unwrap().status, TaskStatus::Failed);
    assert_eq!(report.task("b").unwrap().status, TaskStatus::Failed);
    for key in ["c", "d"] {
        let task = report.task(key).unwrap();
        assert_eq!(
            task.status,
            TaskStatus::Failed,
            "{key} rejected by open breaker"
        );
        assert_eq!(task.error.as_deref(), Some("circuit breaker open"));
        assert_eq!(task.attempts, 0, "{key} never reached the worker");
    }
    assert_eq!(
        sink.report().unwrap().counter("engine.breaker.rejections"),
        2
    );
}

#[test]
fn empty_graph_runs_to_an_empty_report() {
    let graph: TaskGraph<()> = TaskGraph::new();
    let report = Engine::new(4)
        .run(&graph, |_, _| Ok::<_, String>(()))
        .unwrap();
    assert!(report.tasks.is_empty());
    assert_eq!(report.makespan, 0.0);
    let pooled = Engine::new(4)
        .run_pool(&graph, |_, _| Ok::<_, String>(()))
        .unwrap();
    assert!(pooled.tasks.is_empty());
}

// ---------------------------------------------------------------------------
// Pool equivalence and fault-injection determinism
// ---------------------------------------------------------------------------

/// A worker whose outcome is a pure function of the task.
fn pure_worker(key: &str, payload: u32) -> Result<u32, String> {
    let _ = key;
    if payload.is_multiple_of(5) {
        Err(format!("payload {payload} rejected"))
    } else {
        Ok(payload * 2)
    }
}

#[test]
fn pool_report_is_byte_identical_to_serial_report() {
    let mut graph = TaskGraph::new();
    let mut ids = Vec::new();
    for i in 0..12u32 {
        let id = graph
            .add_task(&format!("t{i}"), i, ((i * 7 + 3) % 11) as f64)
            .unwrap();
        if i % 3 == 0 {
            graph.set_policy(id, FailurePolicy::AllowFailure);
        }
        ids.push(id);
    }
    for i in 2..12usize {
        graph.depends_on(ids[i], ids[i / 2]).unwrap();
    }
    for workers in [1, 2, 4, 8] {
        let serial = Engine::new(workers)
            .run(&graph, |t, _| pure_worker(&t.key, t.payload))
            .unwrap();
        let pooled = Engine::new(workers)
            .run_pool(&graph, |t, _| pure_worker(&t.key, t.payload))
            .unwrap();
        assert_eq!(
            shape(&serial, true),
            shape(&pooled, true),
            "serial and pool disagree at {workers} workers"
        );
    }
}

#[test]
fn fault_injection_is_identical_across_worker_counts_and_modes() {
    let mut graph = TaskGraph::new();
    let mut ids = Vec::new();
    for i in 0..10u32 {
        let id = graph.add_task(&format!("t{i}"), i, 1.0 + i as f64).unwrap();
        ids.push(id);
    }
    for i in 1..10usize {
        graph.depends_on(ids[i], ids[i - 1]).unwrap();
        if i >= 3 {
            graph.depends_on(ids[i], ids[i - 3]).unwrap();
        }
    }
    let engine = |workers| {
        Engine::new(workers)
            .with_retry_policy(RetryPolicy::new(3))
            .with_fault_injector(FaultInjector::new(0.4, 2023).with_budget(8))
    };
    let baseline = shape(
        &engine(1)
            .run(&graph, |t, _| Ok::<_, String>(t.payload))
            .unwrap(),
        false,
    );
    for workers in [1, 2, 4, 8] {
        let serial = engine(workers)
            .run(&graph, |t, _| Ok::<_, String>(t.payload))
            .unwrap();
        let pooled = engine(workers)
            .run_pool(&graph, |t, _| Ok::<_, String>(t.payload))
            .unwrap();
        assert_eq!(
            shape(&serial, false),
            baseline,
            "serial @ {workers} workers drifted"
        );
        assert_eq!(
            shape(&pooled, false),
            baseline,
            "pool @ {workers} workers drifted"
        );
        assert_eq!(
            shape(&serial, true),
            shape(&pooled, true),
            "pool must match serial exactly at {workers} workers"
        );
    }
}

proptest! {
    /// On random DAGs, task outcomes (status, output, error, attempts) are
    /// identical for 1, 2, 4, and 8 workers, in both serial and pool mode;
    /// the plan itself is deterministic per worker count; and one worker
    /// serializes to exactly the total work.
    #[test]
    fn random_dags_execute_identically_for_any_worker_count(
        n in 2usize..18,
        edges in proptest::collection::vec((0usize..32, 0usize..32), 0..48),
        durations in proptest::collection::vec(0u8..12, 18),
    ) {
        let mut graph = TaskGraph::new();
        let mut ids = Vec::new();
        for (i, &duration) in durations.iter().enumerate().take(n) {
            ids.push(graph.add_task(&format!("t{i}"), i as u32, duration as f64).unwrap());
        }
        // orient every edge from a higher to a lower index: acyclic by
        // construction
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                graph.depends_on(ids[a.max(b)], ids[a.min(b)]).unwrap();
            }
        }
        let worker = |t: &crate::Task<u32>| {
            if t.payload.is_multiple_of(5) {
                Err("unlucky".to_string())
            } else {
                Ok(t.payload)
            }
        };

        let baseline = Engine::new(1).run(&graph, |t, _| worker(t)).unwrap();
        prop_assert!((baseline.makespan - graph.total_work()).abs() < 1e-9);
        for workers in [1usize, 2, 4, 8] {
            let serial = Engine::new(workers).run(&graph, |t, _| worker(t)).unwrap();
            let again = Engine::new(workers).run(&graph, |t, _| worker(t)).unwrap();
            let pooled = Engine::new(workers).run_pool(&graph, |t, _| worker(t)).unwrap();
            prop_assert_eq!(shape(&serial, true), shape(&again, true));
            prop_assert_eq!(shape(&serial, true), shape(&pooled, true));
            prop_assert_eq!(shape(&serial, false), shape(&baseline, false));
        }
    }
}
