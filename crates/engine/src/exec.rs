//! Executing task graphs: a deterministic serial drive and a real crossbeam
//! worker pool, both reporting against the virtual-time plan.

use crate::graph::{EngineError, FailurePolicy, Task, TaskGraph};
use crate::sched::Schedule;
use benchpark_resilience::{BreakerConfig, CircuitBreaker, FaultInjector, RetryPolicy};
use benchpark_telemetry::{SpanGuard, TelemetrySink};

/// The worker callback as the attempt loop sees it: one task, one attempt
/// context, success or an error message.
type Worker<'w, T, O> = dyn FnMut(&Task<T>, &TaskContext) -> Result<O, String> + 'w;

/// Terminal state of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The worker function returned `Ok` (possibly after retries/requeues).
    Success,
    /// Every attempt failed, or the circuit breaker rejected the task.
    Failed,
    /// Never ran: a dependency failed fatally (or was itself skipped).
    Skipped,
}

/// What the engine passes to the worker function for each attempt.
#[derive(Debug, Clone, Copy)]
pub struct TaskContext {
    /// 1-based attempt number within the current run.
    pub attempt: u32,
    /// Total attempts the retry policy allows per run.
    pub max_attempts: u32,
    /// Virtual start time from the plan.
    pub start: f64,
    /// Virtual finish time from the plan.
    pub finish: f64,
}

/// Outcome of one task.
#[derive(Debug, Clone)]
pub struct TaskReport<O> {
    /// The task's key.
    pub key: String,
    /// Terminal state.
    pub status: TaskStatus,
    /// The worker's output when the task succeeded.
    pub output: Option<O>,
    /// The last error when the task failed.
    pub error: Option<String>,
    /// Attempts actually made (0 for skipped or breaker-rejected tasks).
    pub attempts: u32,
    /// Full re-runs taken under [`FailurePolicy::Requeue`].
    pub requeues: u32,
    /// Virtual start from the plan (meaningful for non-skipped tasks).
    pub start: f64,
    /// Virtual finish from the plan (meaningful for non-skipped tasks).
    pub finish: f64,
}

/// The result of an engine run: one report per task, in graph insertion
/// order, plus the plan's virtual wall-clock.
#[derive(Debug, Clone)]
pub struct EngineReport<O> {
    /// Per-task outcomes, indexed like the graph's tasks.
    pub tasks: Vec<TaskReport<O>>,
    /// Virtual wall-clock of the plan.
    pub makespan: f64,
    /// Virtual worker slots the plan used.
    pub workers: usize,
}

impl<O> EngineReport<O> {
    /// The report of one task, by key.
    pub fn task(&self, key: &str) -> Option<&TaskReport<O>> {
        self.tasks.iter().find(|t| t.key == key)
    }

    /// How many tasks ended in `status`.
    pub fn count(&self, status: TaskStatus) -> usize {
        self.tasks.iter().filter(|t| t.status == status).count()
    }

    /// True when every task succeeded.
    pub fn succeeded(&self) -> bool {
        self.tasks.iter().all(|t| t.status == TaskStatus::Success)
    }
}

/// The executor: worker-pool sizing plus the engine-wide resilience and
/// telemetry hooks applied around every task.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    telemetry: TelemetrySink,
    retry: RetryPolicy,
    injector: Option<FaultInjector>,
    breaker: Option<BreakerConfig>,
    span_prefix: Option<String>,
    stable_plan: bool,
}

impl Engine {
    /// An engine with `workers` slots (clamped to at least one). The same
    /// number sizes the virtual plan and, for [`Engine::run_pool`], the real
    /// thread pool.
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            telemetry: TelemetrySink::noop(),
            retry: RetryPolicy::new(1),
            injector: None,
            breaker: None,
            span_prefix: None,
            stable_plan: false,
        }
    }

    /// Routes engine telemetry (the `engine.run` span, task counters,
    /// retry/requeue/fault counters) to `sink`.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Engine {
        self.telemetry = sink;
        self
    }

    /// The engine-wide retry policy applied to tasks without a per-task
    /// override. The default makes a single attempt.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Engine {
        self.retry = policy;
        self
    }

    /// Injects transient attempt failures. The injector's rolls are drawn
    /// once, in task-insertion order, *before* execution starts — so the
    /// fault pattern is a pure function of the graph and the seed, never of
    /// worker count or thread timing.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Engine {
        self.injector = Some(injector);
        self
    }

    /// Adds a per-run circuit breaker: after the configured number of
    /// consecutive task failures the breaker opens and subsequent tasks are
    /// rejected (reported `Failed` without an attempt) until its virtual
    /// cooldown half-opens it. Consulted by the deterministic serial drive
    /// ([`Engine::run`]) only; [`Engine::run_pool`] ignores it because
    /// gating on cross-thread completion order would break reproducibility.
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> Engine {
        self.breaker = Some(config);
        self
    }

    /// Emits one telemetry span per task, named `<prefix>.<key>`, carrying
    /// the task's virtual duration plus scheduling attributes (dispatch
    /// index, planned slot, worker assignment, attempts). The serial drive
    /// opens each span around the task's execution (real duration
    /// meaningful); the pool drive emits them post-hoc in dispatch order
    /// once the run completes (real durations near zero, virtual placement
    /// intact), since spans are scoped to the calling thread.
    pub fn with_span_prefix(mut self, prefix: &str) -> Engine {
        self.span_prefix = Some(prefix.to_string());
        self
    }

    /// Declares the plan width a fixed property of the workload rather than
    /// a user tunable (e.g. a CI pipeline always plans with one slot per
    /// job). Schedule-derived telemetry — makespan virtual time, per-task
    /// slot and worker attributes — is then recorded as stable instead of
    /// volatile, so it participates in canonical exports and ledger records.
    pub fn with_stable_plan(mut self) -> Engine {
        self.stable_plan = true;
        self
    }

    /// Worker slots this engine plans and executes with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Pre-draws every fault-injector roll in task-insertion order, so the
    /// injected fault pattern cannot depend on execution order.
    fn materialize_faults<T>(&self, graph: &TaskGraph<T>) -> Vec<Vec<bool>> {
        graph
            .tasks
            .iter()
            .map(|task| {
                let Some(injector) = &self.injector else {
                    return Vec::new();
                };
                let attempts = task.retry.as_ref().unwrap_or(&self.retry).max_attempts();
                let runs = 1 + match task.policy {
                    FailurePolicy::Requeue { max_requeues } => max_requeues,
                    _ => 0,
                };
                (0..attempts.saturating_mul(runs))
                    .map(|_| injector.should_fail())
                    .collect()
            })
            .collect()
    }

    /// Whether `task` must be skipped given its dependencies' statuses.
    fn inherits_skip<T>(
        graph: &TaskGraph<T>,
        statuses: &[Option<TaskStatus>],
        task: usize,
    ) -> bool {
        graph.deps[task].iter().any(|&dep| {
            match statuses[dep].expect("dependency resolved before dependent") {
                TaskStatus::Skipped => true,
                TaskStatus::Failed => graph.tasks[dep].policy != FailurePolicy::AllowFailure,
                TaskStatus::Success => false,
            }
        })
    }

    /// Runs the retry/requeue attempt loop for one task.
    fn attempt<T, O>(
        &self,
        task: &Task<T>,
        slot: (f64, f64),
        rolls: &[bool],
        worker: &mut Worker<'_, T, O>,
    ) -> TaskReport<O> {
        let policy = task.retry.as_ref().unwrap_or(&self.retry);
        let max_requeues = match task.policy {
            FailurePolicy::Requeue { max_requeues } => max_requeues,
            _ => 0,
        };
        let (start, finish) = slot;
        let mut roll_cursor = 0usize;
        let mut attempts = 0u32;
        let mut requeues = 0u32;
        let mut last_error = String::new();
        for run in 0..=max_requeues {
            let outcome = policy.run(&self.telemetry, |attempt| {
                let injected = rolls.get(roll_cursor).copied().unwrap_or(false);
                roll_cursor += 1;
                if injected {
                    self.telemetry.incr("engine.faults.injected", 1);
                    return Err("injected transient fault".to_string());
                }
                let ctx = TaskContext {
                    attempt,
                    max_attempts: policy.max_attempts(),
                    start,
                    finish,
                };
                worker(task, &ctx)
            });
            attempts += outcome.attempts;
            match outcome.result {
                Ok(output) => {
                    return TaskReport {
                        key: task.key.clone(),
                        status: TaskStatus::Success,
                        output: Some(output),
                        error: None,
                        attempts,
                        requeues,
                        start,
                        finish,
                    };
                }
                Err(error) => {
                    last_error = error;
                    if run < max_requeues {
                        requeues += 1;
                        self.telemetry.incr("engine.requeued", 1);
                    }
                }
            }
        }
        TaskReport {
            key: task.key.clone(),
            status: TaskStatus::Failed,
            output: None,
            error: Some(last_error),
            attempts,
            requeues,
            start,
            finish,
        }
    }

    /// Opens the `engine.run` span for one drive. The makespan and plan
    /// width depend on the worker count, so they are recorded volatile
    /// unless [`Engine::with_stable_plan`] declared the width fixed.
    fn open_run_span(&self, schedule: &Schedule, tasks: usize) -> SpanGuard {
        let span = self.telemetry.span("engine.run");
        span.set_attr("tasks", tasks);
        if self.stable_plan {
            span.set_virtual(schedule.makespan);
            span.set_attr("workers", schedule.workers);
        } else {
            span.set_virtual_volatile(schedule.makespan);
            span.set_attr_volatile("workers", schedule.workers);
        }
        span
    }

    /// Attaches schedule placement attributes to one task's span.
    fn annotate_task_span(
        &self,
        span: &SpanGuard,
        schedule: &Schedule,
        index: usize,
        dispatch_pos: usize,
    ) {
        span.set_attr("dispatch", dispatch_pos);
        let (start, finish) = schedule.slots[index];
        let worker = schedule.assignments[index];
        if self.stable_plan {
            span.set_attr("slot.start", start);
            span.set_attr("slot.finish", finish);
            span.set_attr("worker", worker);
        } else {
            span.set_attr_volatile("slot.start", start);
            span.set_attr_volatile("slot.finish", finish);
            span.set_attr_volatile("worker", worker);
        }
    }

    fn finish_report<O>(&self, report: &EngineReport<O>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.incr(
            "engine.tasks.success",
            report.count(TaskStatus::Success) as u64,
        );
        self.telemetry.incr(
            "engine.tasks.failed",
            report.count(TaskStatus::Failed) as u64,
        );
        self.telemetry.incr(
            "engine.tasks.skipped",
            report.count(TaskStatus::Skipped) as u64,
        );
    }

    /// Executes the graph on the calling thread, visiting tasks in the
    /// plan's deterministic dispatch order. The worker may hold `&mut`
    /// state (a CI executor, a batch scheduler); every resilience hook —
    /// retry, fault injection, requeue, circuit breaker — applies. Returns
    /// [`EngineError::Cycle`] (naming the cycle) for cyclic graphs.
    pub fn run<T, O>(
        &self,
        graph: &TaskGraph<T>,
        mut worker: impl FnMut(&Task<T>, &TaskContext) -> Result<O, String>,
    ) -> Result<EngineReport<O>, EngineError> {
        let schedule = graph.plan(self.workers)?;
        let rolls = self.materialize_faults(graph);
        let _run_span = self.open_run_span(&schedule, graph.len());

        let mut breaker = self.breaker.map(CircuitBreaker::new);
        let mut statuses: Vec<Option<TaskStatus>> = vec![None; graph.len()];
        let mut reports: Vec<Option<TaskReport<O>>> = Vec::with_capacity(graph.len());
        reports.resize_with(graph.len(), || None);

        for (dispatch_pos, &id) in schedule.dispatch.iter().enumerate() {
            let index = id.index();
            let task = &graph.tasks[index];
            let (start, finish) = schedule.slots[index];
            if Self::inherits_skip(graph, &statuses, index) {
                statuses[index] = Some(TaskStatus::Skipped);
                reports[index] = Some(TaskReport {
                    key: task.key.clone(),
                    status: TaskStatus::Skipped,
                    output: None,
                    error: None,
                    attempts: 0,
                    requeues: 0,
                    start,
                    finish,
                });
                continue;
            }
            if let Some(breaker) = breaker.as_mut() {
                if !breaker.allow(start) {
                    self.telemetry.incr("engine.breaker.rejections", 1);
                    statuses[index] = Some(TaskStatus::Failed);
                    reports[index] = Some(TaskReport {
                        key: task.key.clone(),
                        status: TaskStatus::Failed,
                        output: None,
                        error: Some("circuit breaker open".to_string()),
                        attempts: 0,
                        requeues: 0,
                        start,
                        finish,
                    });
                    continue;
                }
            }
            let task_span = self.span_prefix.as_ref().map(|prefix| {
                let span = self.telemetry.span(&format!("{prefix}.{}", task.key));
                self.annotate_task_span(&span, &schedule, index, dispatch_pos);
                span
            });
            let report = self.attempt(task, (start, finish), &rolls[index], &mut worker);
            if let Some(span) = task_span {
                span.set_virtual(task.duration);
                span.set_attr("attempts", report.attempts);
                span.set_attr("requeues", report.requeues);
            }
            if let Some(breaker) = breaker.as_mut() {
                match report.status {
                    TaskStatus::Success => breaker.record_success(),
                    _ => breaker.record_failure(finish),
                }
            }
            statuses[index] = Some(report.status);
            reports[index] = Some(report);
        }

        let report = EngineReport {
            tasks: reports
                .into_iter()
                .map(|r| r.expect("every task dispatched"))
                .collect(),
            makespan: schedule.makespan,
            workers: schedule.workers,
        };
        self.finish_report(&report);
        Ok(report)
    }

    /// Executes the graph on a real crossbeam worker pool consuming a ready
    /// queue in dependency order. For a deterministic worker function the
    /// report is byte-identical to [`Engine::run`]'s (modulo the breaker,
    /// which only the serial drive consults): virtual times come from the
    /// plan and fault rolls are pre-drawn, so nothing observable depends on
    /// thread interleaving. Requires thread-safe side effects.
    pub fn run_pool<T, O>(
        &self,
        graph: &TaskGraph<T>,
        worker: impl Fn(&Task<T>, &TaskContext) -> Result<O, String> + Sync,
    ) -> Result<EngineReport<O>, EngineError>
    where
        T: Sync,
        O: Send,
    {
        let schedule = graph.plan(self.workers)?;
        let rolls = self.materialize_faults(graph);
        let _run_span = self.open_run_span(&schedule, graph.len());

        let n = graph.len();
        let dependents = graph.dependents();
        let mut remaining: Vec<usize> = graph.deps.iter().map(Vec::len).collect();
        let mut statuses: Vec<Option<TaskStatus>> = vec![None; n];
        let mut reports: Vec<Option<TaskReport<O>>> = Vec::with_capacity(n);
        reports.resize_with(n, || None);

        use crossbeam::channel;
        let (ready_tx, ready_rx) = channel::unbounded::<usize>();
        let (done_tx, done_rx) = channel::unbounded::<(usize, TaskReport<O>)>();
        for (index, &blockers) in remaining.iter().enumerate() {
            if blockers == 0 {
                ready_tx.send(index).expect("queue open");
            }
        }

        let rolls = &rolls;
        let schedule_ref = &schedule;
        let worker = &worker;
        crossbeam::scope(|s| {
            for _ in 0..self.workers {
                let ready_rx = ready_rx.clone();
                let done_tx = done_tx.clone();
                s.spawn(move |_| {
                    while let Ok(index) = ready_rx.recv() {
                        let task = &graph.tasks[index];
                        let report = self.attempt(
                            task,
                            schedule_ref.slots[index],
                            &rolls[index],
                            &mut |t, c| worker(t, c),
                        );
                        if done_tx.send((index, report)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);

            // coordinator: collect completions, skip-propagate, release
            // dependents as their dependencies resolve
            let mut resolved = 0usize;
            while resolved < n {
                let (index, report) = done_rx.recv().expect("workers alive");
                statuses[index] = Some(report.status);
                reports[index] = Some(report);
                resolved += 1;
                // release dependents; skipped tasks resolve locally and
                // cascade without visiting a worker
                let mut newly_resolved = vec![index];
                while let Some(done) = newly_resolved.pop() {
                    for &dependent in &dependents[done] {
                        remaining[dependent] -= 1;
                        if remaining[dependent] > 0 {
                            continue;
                        }
                        if Self::inherits_skip(graph, &statuses, dependent) {
                            let (start, finish) = schedule_ref.slots[dependent];
                            statuses[dependent] = Some(TaskStatus::Skipped);
                            reports[dependent] = Some(TaskReport {
                                key: graph.tasks[dependent].key.clone(),
                                status: TaskStatus::Skipped,
                                output: None,
                                error: None,
                                attempts: 0,
                                requeues: 0,
                                start,
                                finish,
                            });
                            resolved += 1;
                            newly_resolved.push(dependent);
                        } else {
                            ready_tx.send(dependent).expect("queue open");
                        }
                    }
                }
            }
            drop(ready_tx); // workers drain and exit
        })
        .expect("worker pool must not panic");

        let report = EngineReport {
            tasks: reports
                .into_iter()
                .map(|r| r.expect("every task resolved"))
                .collect(),
            makespan: schedule.makespan,
            workers: schedule.workers,
        };
        // post-hoc per-task spans: workers cannot open spans (the recorder's
        // span stack is shared), so the timeline is replayed serially in
        // dispatch order — identical span sequence to the serial drive
        if let Some(prefix) = &self.span_prefix {
            for (dispatch_pos, &id) in schedule.dispatch.iter().enumerate() {
                let index = id.index();
                let task_report = &report.tasks[index];
                if task_report.status == TaskStatus::Skipped {
                    continue;
                }
                let task = &graph.tasks[index];
                let span = self.telemetry.span(&format!("{prefix}.{}", task.key));
                self.annotate_task_span(&span, &schedule, index, dispatch_pos);
                span.set_virtual(task.duration);
                span.set_attr("attempts", task_report.attempts);
                span.set_attr("requeues", task_report.requeues);
            }
        }
        self.finish_report(&report);
        Ok(report)
    }
}
