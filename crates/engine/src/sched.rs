//! Deterministic virtual-time scheduling: LPT list scheduling over `workers`
//! virtual slots.

use crate::graph::{EngineError, TaskGraph, TaskId};

/// A deterministic virtual-time schedule for one graph.
///
/// Produced by [`TaskGraph::plan`]: nodes become ready when all their
/// dependencies finish; among ready nodes the longest job is placed first
/// (LPT), ties broken by insertion order, on the earliest-free virtual
/// worker. The schedule is a pure function of the graph and the worker
/// count — thread timing never enters.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Virtual worker slots planned for.
    pub workers: usize,
    /// Virtual `(start, finish)` per task, indexed like the graph's tasks.
    pub slots: Vec<(f64, f64)>,
    /// Virtual worker index each task was placed on, indexed like the
    /// graph's tasks. Together with `slots` this reconstructs the full
    /// per-worker timeline (the thread tracks in exported traces).
    pub assignments: Vec<usize>,
    /// Virtual wall-clock: the latest finish time.
    pub makespan: f64,
    /// Placement order — a deterministic topological order used as the
    /// dispatch sequence by the serial drive.
    pub dispatch: Vec<TaskId>,
}

impl Schedule {
    /// Virtual `(start, finish)` of one task.
    pub fn slot(&self, id: TaskId) -> (f64, f64) {
        self.slots[id.0]
    }

    /// Virtual worker index one task was placed on.
    pub fn assignment(&self, id: TaskId) -> usize {
        self.assignments[id.0]
    }
}

impl<T> TaskGraph<T> {
    /// Plans the graph onto `workers` virtual workers (clamped to at least
    /// one). Validates the graph first; a cyclic graph returns
    /// [`EngineError::Cycle`] naming the full cycle path.
    pub fn plan(&self, workers: usize) -> Result<Schedule, EngineError> {
        self.validate()?;
        let workers = workers.max(1);
        let n = self.tasks.len();
        let dependents = self.dependents();
        let mut remaining: Vec<usize> = self.deps.iter().map(Vec::len).collect();

        let mut worker_free = vec![0.0f64; workers];
        // earliest time a task's dependencies have all finished
        let mut ready_at = vec![0.0f64; n];
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut slots = vec![(0.0f64, 0.0f64); n];
        let mut assignments = vec![0usize; n];
        let mut dispatch = Vec::with_capacity(n);

        while !ready.is_empty() {
            // LPT: longest duration first; ties broken by insertion order
            // for determinism
            ready.sort_by(|&a, &b| {
                self.tasks[b]
                    .duration
                    .total_cmp(&self.tasks[a].duration)
                    .then_with(|| a.cmp(&b))
            });
            let task = ready.remove(0);
            // earliest-free virtual worker
            let (widx, free) = worker_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, t)| (i, *t))
                .expect("workers >= 1");
            let start = free.max(ready_at[task]);
            let finish = start + self.tasks[task].duration;
            worker_free[widx] = finish;
            slots[task] = (start, finish);
            assignments[task] = widx;
            dispatch.push(TaskId(task));

            for &dependent in &dependents[task] {
                remaining[dependent] -= 1;
                ready_at[dependent] = ready_at[dependent].max(finish);
                if remaining[dependent] == 0 {
                    ready.push(dependent);
                }
            }
        }

        let makespan = slots.iter().map(|&(_, f)| f).fold(0.0, f64::max);
        Ok(Schedule {
            workers,
            slots,
            assignments,
            makespan,
            dispatch,
        })
    }
}
