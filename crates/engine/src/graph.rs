//! Typed task graphs: nodes, dependency edges, validation.

use benchpark_resilience::RetryPolicy;
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a task inside one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// The task's index in [`TaskGraph`] insertion order (also the order of
    /// [`crate::EngineReport::tasks`]).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// How a task's failure propagates through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Transitive dependents of a failed task never run; they are reported
    /// [`crate::TaskStatus::Skipped`] (GitLab's default stage gating).
    FailFast,
    /// The failure is tolerated: dependents run as if the task had
    /// succeeded (GitLab's `allow_failure: true`).
    AllowFailure,
    /// After the retry policy is exhausted the whole task is re-enqueued up
    /// to `max_requeues` more times (the shape of a preempted batch job
    /// restarting on surviving nodes); once requeues run out it fails fast.
    Requeue {
        /// Full re-runs allowed after the first retry-exhausted run.
        max_requeues: u32,
    },
}

/// One node of a task graph.
#[derive(Debug, Clone)]
pub struct Task<T> {
    /// Unique key within the graph (names the task in reports and errors).
    pub key: String,
    /// Caller data carried to the worker function.
    pub payload: T,
    /// Virtual duration in seconds, used by the LPT list scheduler.
    pub duration: f64,
    /// Failure propagation for this task.
    pub policy: FailurePolicy,
    /// Per-task retry override; when `None` the engine-wide policy applies.
    pub retry: Option<RetryPolicy>,
}

/// Errors building or validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Two tasks were added under the same key.
    DuplicateKey(String),
    /// An operation referenced a task the graph does not contain.
    UnknownTask(String),
    /// A task was declared to depend on itself.
    SelfDependency(String),
    /// The dependency edges contain a cycle; the path lists the keys in
    /// order with the first repeated at the end (`a -> b -> a`).
    Cycle {
        /// The offending cycle, first node repeated at the end.
        path: Vec<String>,
    },
    /// The executor was asked to run an empty worker pool.
    NoWorkers,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateKey(key) => write!(f, "duplicate task key `{key}`"),
            EngineError::UnknownTask(key) => write!(f, "unknown task `{key}`"),
            EngineError::SelfDependency(key) => write!(f, "task `{key}` depends on itself"),
            EngineError::Cycle { path } => {
                write!(f, "dependency cycle: {}", path.join(" -> "))
            }
            EngineError::NoWorkers => write!(f, "engine needs at least one worker"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A DAG of typed tasks with dependency edges.
#[derive(Debug, Clone)]
pub struct TaskGraph<T> {
    pub(crate) tasks: Vec<Task<T>>,
    /// `deps[i]` — indices task `i` depends on.
    pub(crate) deps: Vec<Vec<usize>>,
    by_key: BTreeMap<String, usize>,
}

impl<T> Default for TaskGraph<T> {
    fn default() -> Self {
        TaskGraph::new()
    }
}

impl<T> TaskGraph<T> {
    /// An empty graph.
    pub fn new() -> TaskGraph<T> {
        TaskGraph {
            tasks: Vec::new(),
            deps: Vec::new(),
            by_key: BTreeMap::new(),
        }
    }

    /// Adds a task with a virtual `duration` (non-finite or negative
    /// durations are clamped to zero). Defaults to [`FailurePolicy::FailFast`]
    /// and the engine-wide retry policy.
    pub fn add_task(
        &mut self,
        key: &str,
        payload: T,
        duration: f64,
    ) -> Result<TaskId, EngineError> {
        if self.by_key.contains_key(key) {
            return Err(EngineError::DuplicateKey(key.to_string()));
        }
        let duration = if duration.is_finite() {
            duration.max(0.0)
        } else {
            0.0
        };
        let id = self.tasks.len();
        self.tasks.push(Task {
            key: key.to_string(),
            payload,
            duration,
            policy: FailurePolicy::FailFast,
            retry: None,
        });
        self.deps.push(Vec::new());
        self.by_key.insert(key.to_string(), id);
        Ok(TaskId(id))
    }

    /// Sets the failure-propagation policy of a task.
    pub fn set_policy(&mut self, id: TaskId, policy: FailurePolicy) {
        self.tasks[id.0].policy = policy;
    }

    /// Overrides the engine-wide retry policy for one task.
    pub fn set_retry(&mut self, id: TaskId, policy: RetryPolicy) {
        self.tasks[id.0].retry = Some(policy);
    }

    /// Declares that `task` cannot start before `dep` finished. Duplicate
    /// edges are ignored.
    pub fn depends_on(&mut self, task: TaskId, dep: TaskId) -> Result<(), EngineError> {
        if task.0 >= self.tasks.len() || dep.0 >= self.tasks.len() {
            return Err(EngineError::UnknownTask(format!("#{}", task.0.max(dep.0))));
        }
        if task == dep {
            return Err(EngineError::SelfDependency(self.tasks[task.0].key.clone()));
        }
        if !self.deps[task.0].contains(&dep.0) {
            self.deps[task.0].push(dep.0);
        }
        Ok(())
    }

    /// Looks a task up by key.
    pub fn id(&self, key: &str) -> Option<TaskId> {
        self.by_key.get(key).map(|&i| TaskId(i))
    }

    /// The task behind a handle.
    pub fn task(&self, id: TaskId) -> &Task<T> {
        &self.tasks[id.0]
    }

    /// All tasks, in insertion order.
    pub fn tasks(&self) -> &[Task<T>] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Sum of all task durations (the single-worker makespan).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Reverse edges: `dependents[i]` — indices that depend on task `i`.
    pub(crate) fn dependents(&self) -> Vec<Vec<usize>> {
        let mut dependents = vec![Vec::new(); self.tasks.len()];
        for (task, deps) in self.deps.iter().enumerate() {
            for &dep in deps {
                dependents[dep].push(task);
            }
        }
        dependents
    }

    /// Checks the graph is acyclic. On failure the error names the full
    /// cycle path in dependency order, first node repeated at the end.
    pub fn validate(&self) -> Result<(), EngineError> {
        // iterative DFS with an explicit stack so ~1k-node graphs cannot
        // overflow the thread stack
        const WHITE: u8 = 0; // unvisited
        const GRAY: u8 = 1; // on the current DFS path
        const BLACK: u8 = 2; // fully explored
        let mut color = vec![WHITE; self.tasks.len()];
        let mut path: Vec<usize> = Vec::new();
        for root in 0..self.tasks.len() {
            if color[root] != WHITE {
                continue;
            }
            // (node, next dependency index to explore)
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            path.push(root);
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if let Some(&dep) = self.deps[node].get(*next) {
                    *next += 1;
                    match color[dep] {
                        WHITE => {
                            color[dep] = GRAY;
                            path.push(dep);
                            stack.push((dep, 0));
                        }
                        GRAY => {
                            let start = path
                                .iter()
                                .position(|&n| n == dep)
                                .expect("gray node is on the path");
                            let mut cycle: Vec<String> = path[start..]
                                .iter()
                                .map(|&n| self.tasks[n].key.clone())
                                .collect();
                            cycle.push(self.tasks[dep].key.clone());
                            return Err(EngineError::Cycle { path: cycle });
                        }
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    path.pop();
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}
