//! The built-in microarchitecture registry.
//!
//! Mirrors the structure of archspec's `microarchitectures.json`: each entry
//! names its parents, vendor, the features it introduces, and per-compiler
//! flag recipes. The set below covers the systems the paper demonstrates on
//! (§4: Intel Xeon `cts1`, IBM Power9 `ats2`, AMD Trento `ats4`) plus the
//! cloud/Arm targets discussed in §7.2.

use crate::uarch::{CompilerSupport, Microarch, Vendor};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// An immutable registry of microarchitectures.
#[derive(Debug)]
pub struct Taxonomy {
    nodes: BTreeMap<String, Microarch>,
}

impl Taxonomy {
    /// Looks up a microarchitecture by name.
    pub fn get(&self, name: &str) -> Option<&Microarch> {
        self.nodes.get(name)
    }

    /// Iterates over all microarchitectures in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Microarch> {
        self.nodes.values()
    }

    /// All names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.nodes.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered microarchitectures.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never true: the builtin taxonomy is non-empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Returns the global built-in taxonomy.
pub fn taxonomy() -> &'static Taxonomy {
    static TAXONOMY: OnceLock<Taxonomy> = OnceLock::new();
    TAXONOMY.get_or_init(build)
}

struct Entry {
    name: &'static str,
    parents: &'static [&'static str],
    vendor: Vendor,
    features: &'static [&'static str],
    generation: u32,
    /// (compiler, min_version, flags)
    compilers: &'static [(&'static str, &'static str, &'static str)],
}

#[rustfmt::skip]
const ENTRIES: &[Entry] = &[
    // ----- x86_64 generic levels -------------------------------------------
    Entry { name: "x86_64", parents: &[], vendor: Vendor::Generic, generation: 0,
        features: &["mmx", "sse", "sse2"],
        compilers: &[("gcc", "4.2", "-march=x86-64 -mtune=generic"),
                     ("clang", "3.9", "-march=x86-64 -mtune=generic"),
                     ("intel", "16.0", "-march=pentium4 -mtune=generic")] },
    Entry { name: "x86_64_v2", parents: &["x86_64"], vendor: Vendor::Generic, generation: 0,
        features: &["cx16", "lahf_lm", "popcnt", "sse3", "sse4_1", "sse4_2", "ssse3"],
        compilers: &[("gcc", "11.1", "-march=x86-64-v2 -mtune=generic"),
                     ("clang", "12.0", "-march=x86-64-v2 -mtune=generic")] },
    Entry { name: "x86_64_v3", parents: &["x86_64_v2"], vendor: Vendor::Generic, generation: 0,
        features: &["avx", "avx2", "bmi1", "bmi2", "f16c", "fma", "abm", "movbe", "xsave"],
        compilers: &[("gcc", "11.1", "-march=x86-64-v3 -mtune=generic"),
                     ("clang", "12.0", "-march=x86-64-v3 -mtune=generic")] },
    Entry { name: "x86_64_v4", parents: &["x86_64_v3"], vendor: Vendor::Generic, generation: 0,
        features: &["avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl"],
        compilers: &[("gcc", "11.1", "-march=x86-64-v4 -mtune=generic"),
                     ("clang", "12.0", "-march=x86-64-v4 -mtune=generic")] },
    // ----- Intel -----------------------------------------------------------
    Entry { name: "nehalem", parents: &["x86_64_v2"], vendor: Vendor::Intel, generation: 1,
        features: &[],
        compilers: &[("gcc", "4.9", "-march=nehalem -mtune=nehalem"),
                     ("clang", "3.9", "-march=nehalem -mtune=nehalem"),
                     ("intel", "16.0", "-march=corei7 -mtune=corei7")] },
    Entry { name: "sandybridge", parents: &["nehalem"], vendor: Vendor::Intel, generation: 2,
        features: &["avx"],
        compilers: &[("gcc", "4.9", "-march=sandybridge -mtune=sandybridge"),
                     ("clang", "3.9", "-march=sandybridge -mtune=sandybridge"),
                     ("intel", "16.0", "-march=sandybridge -mtune=sandybridge")] },
    Entry { name: "haswell", parents: &["sandybridge", "x86_64_v3"], vendor: Vendor::Intel, generation: 3,
        features: &["avx2", "bmi1", "bmi2", "f16c", "fma", "movbe"],
        compilers: &[("gcc", "4.9", "-march=haswell -mtune=haswell"),
                     ("clang", "3.9", "-march=haswell -mtune=haswell"),
                     ("intel", "16.0", "-march=core-avx2 -mtune=core-avx2")] },
    Entry { name: "broadwell", parents: &["haswell"], vendor: Vendor::Intel, generation: 4,
        features: &["adx", "rdseed"],
        compilers: &[("gcc", "4.9", "-march=broadwell -mtune=broadwell"),
                     ("clang", "3.9", "-march=broadwell -mtune=broadwell"),
                     ("intel", "16.0", "-march=core-avx2 -mtune=core-avx2")] },
    Entry { name: "skylake", parents: &["broadwell"], vendor: Vendor::Intel, generation: 5,
        features: &["clflushopt", "xsavec"],
        compilers: &[("gcc", "6.0", "-march=skylake -mtune=skylake"),
                     ("clang", "3.9", "-march=skylake -mtune=skylake"),
                     ("intel", "16.0", "-march=skylake -mtune=skylake")] },
    Entry { name: "skylake_avx512", parents: &["skylake", "x86_64_v4"], vendor: Vendor::Intel, generation: 6,
        features: &["avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl", "clwb"],
        compilers: &[("gcc", "6.0", "-march=skylake-avx512 -mtune=skylake-avx512"),
                     ("clang", "3.9", "-march=skylake-avx512 -mtune=skylake-avx512"),
                     ("intel", "16.0", "-march=skylake-avx512 -mtune=skylake-avx512")] },
    Entry { name: "cascadelake", parents: &["skylake_avx512"], vendor: Vendor::Intel, generation: 7,
        features: &["avx512_vnni"],
        compilers: &[("gcc", "9.0", "-march=cascadelake -mtune=cascadelake"),
                     ("clang", "8.0", "-march=cascadelake -mtune=cascadelake"),
                     ("intel", "19.0.1", "-march=cascadelake -mtune=cascadelake")] },
    Entry { name: "icelake", parents: &["cascadelake"], vendor: Vendor::Intel, generation: 8,
        features: &["avx512_vbmi2", "avx512_bitalg", "gfni", "vaes"],
        compilers: &[("gcc", "8.0", "-march=icelake-server -mtune=icelake-server"),
                     ("clang", "8.0", "-march=icelake-server -mtune=icelake-server")] },
    Entry { name: "sapphirerapids", parents: &["icelake"], vendor: Vendor::Intel, generation: 9,
        features: &["amx_bf16", "amx_int8", "avx512_bf16"],
        compilers: &[("gcc", "11.0", "-march=sapphirerapids -mtune=sapphirerapids"),
                     ("clang", "12.0", "-march=sapphirerapids -mtune=sapphirerapids")] },
    // ----- AMD -------------------------------------------------------------
    Entry { name: "zen", parents: &["x86_64_v3"], vendor: Vendor::Amd, generation: 1,
        features: &["clzero", "sha_ni"],
        compilers: &[("gcc", "6.0", "-march=znver1 -mtune=znver1"),
                     ("clang", "4.0", "-march=znver1 -mtune=znver1"),
                     ("rocmcc", "3.0", "-march=znver1 -mtune=znver1")] },
    Entry { name: "zen2", parents: &["zen"], vendor: Vendor::Amd, generation: 2,
        features: &["clwb", "rdpid", "wbnoinvd"],
        compilers: &[("gcc", "9.0", "-march=znver2 -mtune=znver2"),
                     ("clang", "9.0", "-march=znver2 -mtune=znver2"),
                     ("rocmcc", "3.0", "-march=znver2 -mtune=znver2")] },
    Entry { name: "zen3", parents: &["zen2"], vendor: Vendor::Amd, generation: 3,
        features: &["pku", "vaes", "vpclmulqdq"],
        compilers: &[("gcc", "10.3", "-march=znver3 -mtune=znver3"),
                     ("clang", "12.0", "-march=znver3 -mtune=znver3"),
                     ("rocmcc", "3.0", "-march=znver3 -mtune=znver3")] },
    Entry { name: "zen4", parents: &["zen3", "x86_64_v4"], vendor: Vendor::Amd, generation: 4,
        features: &["avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl", "avx512_bf16"],
        compilers: &[("gcc", "12.3", "-march=znver4 -mtune=znver4"),
                     ("clang", "16.0", "-march=znver4 -mtune=znver4")] },
    // ----- IBM POWER -------------------------------------------------------
    Entry { name: "ppc64le", parents: &[], vendor: Vendor::Generic, generation: 0,
        features: &[],
        compilers: &[("gcc", "4.9", "-mcpu=power8 -mtune=power8"),
                     ("clang", "3.9", "-mcpu=power8 -mtune=power8")] },
    Entry { name: "power8le", parents: &["ppc64le"], vendor: Vendor::Ibm, generation: 8,
        features: &["altivec", "vsx"],
        compilers: &[("gcc", "4.9", "-mcpu=power8 -mtune=power8"),
                     ("clang", "3.9", "-mcpu=power8 -mtune=power8"),
                     ("xl", "13.1", "-qarch=pwr8 -qtune=pwr8")] },
    Entry { name: "power9le", parents: &["power8le"], vendor: Vendor::Ibm, generation: 9,
        features: &["darn", "ieee128"],
        compilers: &[("gcc", "6.0", "-mcpu=power9 -mtune=power9"),
                     ("clang", "4.0", "-mcpu=power9 -mtune=power9"),
                     ("xl", "13.1", "-qarch=pwr9 -qtune=pwr9")] },
    Entry { name: "power10le", parents: &["power9le"], vendor: Vendor::Ibm, generation: 10,
        features: &["mma"],
        compilers: &[("gcc", "11.1", "-mcpu=power10 -mtune=power10"),
                     ("clang", "11.0", "-mcpu=power10 -mtune=power10")] },
    // ----- Arm -------------------------------------------------------------
    Entry { name: "aarch64", parents: &[], vendor: Vendor::Generic, generation: 0,
        features: &["fp", "asimd"],
        compilers: &[("gcc", "4.8", "-march=armv8-a -mtune=generic"),
                     ("clang", "3.9", "-march=armv8-a -mtune=generic")] },
    Entry { name: "armv8_2a", parents: &["aarch64"], vendor: Vendor::Generic, generation: 0,
        features: &["atomics", "fphp", "asimdhp"],
        compilers: &[("gcc", "6.0", "-march=armv8.2-a -mtune=generic"),
                     ("clang", "4.0", "-march=armv8.2-a -mtune=generic")] },
    Entry { name: "neoverse_n1", parents: &["armv8_2a"], vendor: Vendor::Arm, generation: 1,
        features: &["asimdrdm", "lrcpc", "dcpop"],
        compilers: &[("gcc", "9.0", "-mcpu=neoverse-n1"),
                     ("clang", "10.0", "-mcpu=neoverse-n1")] },
    Entry { name: "neoverse_v1", parents: &["neoverse_n1"], vendor: Vendor::Arm, generation: 2,
        features: &["sve", "bf16", "i8mm"],
        compilers: &[("gcc", "10.0", "-mcpu=neoverse-v1"),
                     ("clang", "12.0", "-mcpu=neoverse-v1")] },
    Entry { name: "a64fx", parents: &["armv8_2a"], vendor: Vendor::Fujitsu, generation: 1,
        features: &["sve", "fcma"],
        compilers: &[("gcc", "8.0", "-march=armv8.2-a+sve -mtune=a64fx"),
                     ("clang", "7.0", "-march=armv8.2-a+sve")] },
    Entry { name: "m1", parents: &["armv8_2a"], vendor: Vendor::Apple, generation: 1,
        features: &["fcma", "jscvt", "sha3"],
        compilers: &[("gcc", "11.0", "-mcpu=apple-m1"),
                     ("clang", "13.0", "-mcpu=apple-m1")] },
];

fn build() -> Taxonomy {
    let mut nodes: BTreeMap<String, Microarch> = BTreeMap::new();
    // ENTRIES is topologically ordered (parents precede children), so a
    // single pass can accumulate ancestor and feature sets.
    for entry in ENTRIES {
        let mut all_features: BTreeSet<String> =
            entry.features.iter().map(|s| s.to_string()).collect();
        let mut ancestors = BTreeSet::new();
        for parent in entry.parents {
            let p = nodes.get(*parent).unwrap_or_else(|| {
                panic!(
                    "taxonomy entry {} lists unknown parent {parent}",
                    entry.name
                )
            });
            all_features.extend(p.all_features.iter().cloned());
            ancestors.insert(p.name.clone());
            ancestors.extend(p.ancestors.iter().cloned());
        }
        let node = Microarch {
            name: entry.name.to_string(),
            parents: entry.parents.iter().map(|s| s.to_string()).collect(),
            vendor: entry.vendor,
            features: entry.features.iter().map(|s| s.to_string()).collect(),
            all_features,
            generation: entry.generation,
            compilers: entry
                .compilers
                .iter()
                .map(|(c, v, f)| CompilerSupport {
                    compiler: c.to_string(),
                    min_version: Microarch::parse_version(v),
                    flags: f.to_string(),
                })
                .collect(),
            ancestors,
        };
        nodes.insert(node.name.clone(), node);
    }
    Taxonomy { nodes }
}
