//! `benchpark-archspec` — microarchitecture taxonomy, detection, and
//! compiler-flag selection.
//!
//! The paper (§3.1.3) uses [Archspec] to (1) tailor build recipes to the
//! target architecture and (2) detect the system architecture. This crate
//! reimplements that functionality:
//!
//! * a taxonomy of microarchitectures as a DAG rooted at generic families
//!   (`x86_64`, `ppc64le`, `aarch64`), each node carrying vendor, cumulative
//!   feature set, and per-compiler optimization flags;
//! * a compatibility partial order (`zen3` can run binaries built for
//!   `x86_64_v3`, not vice versa);
//! * host detection from a CPU description (vendor + feature flags), picking
//!   the most specific compatible microarchitecture — this is what the
//!   simulated clusters report as their `target`;
//! * compiler flag selection with minimum-version checks (`gcc@12` knows
//!   `-march=znver3`; `gcc@4.8` does not).
//!
//! [Archspec]: https://github.com/archspec/archspec
//!
//! # Example
//!
//! ```
//! use benchpark_archspec::taxonomy;
//!
//! let skx = taxonomy().get("skylake_avx512").unwrap();
//! assert!(skx.has_feature("avx512f"));
//! assert!(skx.is_descendant_of("x86_64_v3"));
//! let flags = skx.optimization_flags("gcc", "12.1.1").unwrap();
//! assert!(flags.contains("-march=skylake-avx512"));
//! ```

mod detect;
mod flags;
mod taxonomy;
mod uarch;

pub use detect::{detect, CpuDescription};
pub use flags::FlagError;
pub use taxonomy::{taxonomy, Taxonomy};
pub use uarch::{Microarch, Vendor};

#[cfg(test)]
mod tests;
