//! Host microarchitecture detection from a CPU description.
//!
//! Real archspec reads `/proc/cpuinfo`; our simulated clusters describe their
//! CPUs explicitly, so detection takes a [`CpuDescription`] and returns the
//! most specific compatible microarchitecture. The selection rule mirrors
//! archspec: among candidates whose feature set is a subset of the CPU's
//! features and whose vendor matches, prefer the one with the most ancestors
//! (most specific), breaking ties by generation and name.

use crate::taxonomy::taxonomy;
use crate::uarch::{Microarch, Vendor};
use std::collections::BTreeSet;

/// A CPU as reported by a (simulated) host.
#[derive(Debug, Clone)]
pub struct CpuDescription {
    /// Vendor of the physical CPU.
    pub vendor: Vendor,
    /// Root family (`x86_64`, `ppc64le`, `aarch64`).
    pub family: String,
    /// Feature flags, as `/proc/cpuinfo` would list them.
    pub features: BTreeSet<String>,
}

impl CpuDescription {
    /// Builds a description from a feature list.
    pub fn new(vendor: Vendor, family: &str, features: &[&str]) -> Self {
        CpuDescription {
            vendor,
            family: family.to_string(),
            features: features.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Convenience: the description of a known microarchitecture (all its
    /// cumulative features).
    pub fn of(uarch: &Microarch) -> Self {
        CpuDescription {
            vendor: uarch.vendor,
            family: uarch.family().to_string(),
            features: uarch.all_features.clone(),
        }
    }
}

/// Detects the best-matching microarchitecture for `cpu`.
///
/// Returns the family root if nothing more specific matches, or `None` for an
/// unknown family.
pub fn detect(cpu: &CpuDescription) -> Option<&'static Microarch> {
    let tax = taxonomy();
    tax.get(&cpu.family)?; // unknown family → None

    let mut best: Option<&Microarch> = None;
    for node in tax.iter() {
        if node.family() != cpu.family {
            continue;
        }
        if !node.vendor.accepts(cpu.vendor) && node.vendor != cpu.vendor {
            continue;
        }
        if !node.all_features.is_subset(&cpu.features) {
            continue;
        }
        let better = match best {
            None => true,
            Some(cur) => {
                let a = (node.ancestors.len(), node.generation);
                let b = (cur.ancestors.len(), cur.generation);
                a > b || (a == b && node.name < cur.name)
            }
        };
        if better {
            best = Some(node);
        }
    }
    best
}
