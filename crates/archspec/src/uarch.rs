//! Microarchitecture node type and compatibility relations.

use std::collections::BTreeSet;

/// CPU vendor, used to disambiguate detection (a feature-compatible uarch from
/// the wrong vendor is never selected as host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Matches any vendor (generic architecture levels).
    Generic,
    Intel,
    Amd,
    Ibm,
    Arm,
    Fujitsu,
    Apple,
}

impl Vendor {
    /// Generic nodes are compatible with every concrete vendor.
    pub fn accepts(&self, other: Vendor) -> bool {
        *self == Vendor::Generic || *self == other
    }
}

/// A compiler's support entry for a microarchitecture.
#[derive(Debug, Clone)]
pub struct CompilerSupport {
    /// Compiler name (`gcc`, `clang`, `intel`, `cce`, `rocmcc`, `xl`).
    pub compiler: String,
    /// Minimum supported version, compared component-wise.
    pub min_version: Vec<u32>,
    /// Flags to emit, e.g. `-march=znver3 -mtune=znver3`.
    pub flags: String,
}

/// One node in the microarchitecture taxonomy.
#[derive(Debug, Clone)]
pub struct Microarch {
    /// Canonical lowercase name (`skylake_avx512`).
    pub name: String,
    /// Immediate parents (more generic microarchitectures).
    pub parents: Vec<String>,
    /// Vendor.
    pub vendor: Vendor,
    /// Features *introduced* at this node (cumulative set is computed).
    pub features: BTreeSet<String>,
    /// Cumulative features including everything inherited from ancestors.
    pub all_features: BTreeSet<String>,
    /// Hardware generation within the vendor line (for ordering cousins).
    pub generation: u32,
    /// Per-compiler flag support.
    pub compilers: Vec<CompilerSupport>,
    /// All ancestor names (transitive), excluding self.
    pub ancestors: BTreeSet<String>,
}

impl Microarch {
    /// True if this microarchitecture supports `feature` (inherited features
    /// included).
    pub fn has_feature(&self, feature: &str) -> bool {
        self.all_features.contains(feature)
    }

    /// True if `self` is `other` or descends from it — i.e. a binary built
    /// for `other` runs on `self`.
    pub fn is_descendant_of(&self, other: &str) -> bool {
        self.name == other || self.ancestors.contains(other)
    }

    /// The root family of this microarchitecture (`x86_64`, `ppc64le`,
    /// `aarch64`), or its own name for roots.
    pub fn family(&self) -> &str {
        // Roots have no parents; all our taxonomies have a unique root per
        // node, recorded as the ancestor with no ancestors — but since we
        // store names only, the taxonomy computes and stores family during
        // construction via the ancestors set: the root is the ancestor that
        // appears in `ancestors` and is itself parentless. For leaf queries
        // we rely on the convention that family roots are the well-known
        // names below.
        for root in ["x86_64", "ppc64le", "aarch64"] {
            if self.name == root || self.ancestors.contains(root) {
                return root;
            }
        }
        &self.name
    }

    /// Parses a dotted version string into numeric components, ignoring any
    /// non-numeric suffix (`12.1.1-magic` → `[12, 1, 1]`).
    pub fn parse_version(version: &str) -> Vec<u32> {
        version
            .split(['.', '-', '_'])
            .map_while(|part| part.parse::<u32>().ok())
            .collect()
    }

    /// Looks up compiler support, enforcing the minimum version.
    pub fn compiler_support(&self, compiler: &str, version: &str) -> Option<&CompilerSupport> {
        let v = Self::parse_version(version);
        self.compilers
            .iter()
            .filter(|c| c.compiler == compiler)
            .find(|c| version_at_least(&v, &c.min_version))
    }
}

/// Component-wise version comparison: `v >= min`.
pub(crate) fn version_at_least(v: &[u32], min: &[u32]) -> bool {
    for i in 0..min.len().max(v.len()) {
        let a = v.get(i).copied().unwrap_or(0);
        let b = min.get(i).copied().unwrap_or(0);
        if a != b {
            return a > b;
        }
    }
    true
}
