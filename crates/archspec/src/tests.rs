//! Tests for the microarchitecture taxonomy, detection, and flags.

use crate::{detect, taxonomy, CpuDescription, FlagError, Vendor};

#[test]
fn taxonomy_is_populated() {
    let tax = taxonomy();
    assert!(tax.len() >= 20);
    assert!(!tax.is_empty());
    for required in [
        "x86_64",
        "x86_64_v3",
        "skylake_avx512",
        "zen3",
        "power9le",
        "aarch64",
        "neoverse_v1",
        "a64fx",
    ] {
        assert!(tax.get(required).is_some(), "missing {required}");
    }
}

#[test]
fn features_are_cumulative() {
    let tax = taxonomy();
    let skx = tax.get("skylake_avx512").unwrap();
    // own feature
    assert!(skx.has_feature("avx512f"));
    // inherited from haswell
    assert!(skx.has_feature("avx2"));
    // inherited from the x86_64 root
    assert!(skx.has_feature("sse2"));
    // not a feature of this line
    assert!(!skx.has_feature("sve"));
}

#[test]
fn ancestry_partial_order() {
    let tax = taxonomy();
    let zen3 = tax.get("zen3").unwrap();
    assert!(zen3.is_descendant_of("zen3"));
    assert!(zen3.is_descendant_of("zen"));
    assert!(zen3.is_descendant_of("x86_64_v3"));
    assert!(zen3.is_descendant_of("x86_64"));
    assert!(!zen3.is_descendant_of("haswell")); // cousins, not ancestors
    assert!(!zen3.is_descendant_of("x86_64_v4")); // zen3 has no avx512

    let v4 = tax.get("x86_64_v4").unwrap();
    assert!(!v4.is_descendant_of("zen3"));
}

#[test]
fn generic_levels_thread_through_vendor_lines() {
    // zen4 and skylake_avx512 both carry x86_64_v4 as a parent, so binaries
    // built for the generic v4 level run on either vendor's chips.
    let tax = taxonomy();
    let zen4 = tax.get("zen4").unwrap();
    assert!(zen4.has_feature("avx512f"));
    assert!(zen4.is_descendant_of("x86_64_v4"));
    assert!(tax
        .get("skylake_avx512")
        .unwrap()
        .is_descendant_of("x86_64_v4"));
    // zen3 predates avx512 and must *not* satisfy the v4 level.
    assert!(!tax.get("zen3").unwrap().is_descendant_of("x86_64_v4"));
}

#[test]
fn families() {
    let tax = taxonomy();
    assert_eq!(tax.get("cascadelake").unwrap().family(), "x86_64");
    assert_eq!(tax.get("power9le").unwrap().family(), "ppc64le");
    assert_eq!(tax.get("a64fx").unwrap().family(), "aarch64");
    assert_eq!(tax.get("x86_64").unwrap().family(), "x86_64");
}

#[test]
fn detect_exact_uarch() {
    let tax = taxonomy();
    for name in ["skylake_avx512", "zen3", "power9le", "neoverse_v1"] {
        let node = tax.get(name).unwrap();
        let cpu = CpuDescription::of(node);
        let detected = detect(&cpu).unwrap();
        assert_eq!(detected.name, name, "detection failed for {name}");
    }
}

#[test]
fn detect_prefers_most_specific() {
    // A CPU with cascadelake features must not be detected as plain skylake.
    let tax = taxonomy();
    let clx = tax.get("cascadelake").unwrap();
    let detected = detect(&CpuDescription::of(clx)).unwrap();
    assert_eq!(detected.name, "cascadelake");
}

#[test]
fn detect_respects_vendor() {
    // zen3-featured CPU reported as Intel must not detect as zen3.
    let tax = taxonomy();
    let zen3 = tax.get("zen3").unwrap();
    let mut cpu = CpuDescription::of(zen3);
    cpu.vendor = Vendor::Intel;
    let detected = detect(&cpu).unwrap();
    assert_ne!(detected.name, "zen3");
    // The best Intel-or-generic fit for zen3's feature set is haswell
    // (broadwell needs adx/rdseed, which zen-line CPUs don't report here).
    assert_eq!(detected.name, "haswell");
    // Whatever is chosen must be feature-compatible with the CPU.
    assert!(detected.all_features.is_subset(&cpu.features));
}

#[test]
fn detect_partial_features_falls_back() {
    // A cloud instance masking avx512 (the §7.1 scenario) detects as skylake,
    // not skylake_avx512.
    let tax = taxonomy();
    let skx = tax.get("skylake_avx512").unwrap();
    let mut cpu = CpuDescription::of(skx);
    for f in [
        "avx512f", "avx512bw", "avx512cd", "avx512dq", "avx512vl", "clwb",
    ] {
        cpu.features.remove(f);
    }
    let detected = detect(&cpu).unwrap();
    assert_eq!(detected.name, "skylake");
}

#[test]
fn detect_unknown_family() {
    let cpu = CpuDescription::new(Vendor::Intel, "riscv64", &[]);
    assert!(detect(&cpu).is_none());
}

#[test]
fn detect_bare_family() {
    let cpu = CpuDescription::new(Vendor::Generic, "x86_64", &["mmx", "sse", "sse2"]);
    assert_eq!(detect(&cpu).unwrap().name, "x86_64");
}

#[test]
fn flags_for_supported_compiler() {
    let tax = taxonomy();
    let skx = tax.get("skylake_avx512").unwrap();
    let flags = skx.optimization_flags("gcc", "12.1.1").unwrap();
    assert_eq!(flags, "-march=skylake-avx512 -mtune=skylake-avx512");

    let zen3 = tax.get("zen3").unwrap();
    assert_eq!(
        zen3.optimization_flags("clang", "14.0.6").unwrap(),
        "-march=znver3 -mtune=znver3"
    );
}

#[test]
fn flags_fall_back_to_ancestor_for_old_compiler() {
    // gcc 9 predates znver3 support but handles znver2.
    let tax = taxonomy();
    let zen3 = tax.get("zen3").unwrap();
    let flags = zen3.optimization_flags("gcc", "9.4.0").unwrap();
    assert_eq!(flags, "-march=znver2 -mtune=znver2");

    // gcc 5 only reaches the generic haswell-era entry on Intel.
    let skl = tax.get("skylake").unwrap();
    let flags = skl.optimization_flags("gcc", "5.4.0").unwrap();
    assert_eq!(flags, "-march=broadwell -mtune=broadwell");
}

#[test]
fn flags_unknown_compiler() {
    let tax = taxonomy();
    let p9 = tax.get("power9le").unwrap();
    let err = p9.optimization_flags("rocmcc", "5.2.0").unwrap_err();
    assert!(matches!(err, FlagError::UnsupportedCompiler { .. }));
    assert!(err.to_string().contains("rocmcc"));
}

#[test]
fn flags_version_too_old_without_fallback() {
    // xl supports power9le with min 13.1 and power8le with min 13.1; a
    // version below both yields VersionTooOld (compiler known, version old).
    let tax = taxonomy();
    let p9 = tax.get("power9le").unwrap();
    let err = p9.optimization_flags("xl", "12.0").unwrap_err();
    assert!(matches!(err, FlagError::VersionTooOld { .. }), "{err:?}");
}

#[test]
fn version_parsing() {
    use crate::uarch::Microarch;
    assert_eq!(Microarch::parse_version("12.1.1"), vec![12, 1, 1]);
    assert_eq!(Microarch::parse_version("12.1.1-magic"), vec![12, 1, 1]);
    assert_eq!(Microarch::parse_version("9"), vec![9]);
    assert_eq!(Microarch::parse_version(""), Vec::<u32>::new());
}

#[test]
fn power_line_generations() {
    let tax = taxonomy();
    let p10 = tax.get("power10le").unwrap();
    assert!(p10.is_descendant_of("power9le"));
    assert!(p10.is_descendant_of("power8le"));
    assert!(p10.has_feature("vsx"));
    assert!(p10.has_feature("mma"));
    let p9 = tax.get("power9le").unwrap();
    assert!(!p9.has_feature("mma"));
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_uarch() -> impl Strategy<Value = &'static crate::Microarch> {
        let names: Vec<&'static str> = taxonomy().names();
        prop::sample::select(names).prop_map(|n| taxonomy().get(n).unwrap())
    }

    proptest! {
        /// Detection of a node's own description returns that node
        /// (most-specific rule is sound) for every taxonomy member.
        #[test]
        fn detect_is_identity_on_taxonomy(node in arb_uarch()) {
            let detected = detect(&CpuDescription::of(node)).unwrap();
            prop_assert_eq!(&detected.name, &node.name);
        }

        /// Ancestry implies feature containment.
        #[test]
        fn ancestors_features_subset(node in arb_uarch()) {
            for anc_name in &node.ancestors {
                let anc = taxonomy().get(anc_name).unwrap();
                prop_assert!(anc.all_features.is_subset(&node.all_features),
                    "{} should inherit all features of {}", node.name, anc_name);
            }
        }

        /// The descendant relation is antisymmetric.
        #[test]
        fn ancestry_antisymmetric(a in arb_uarch(), b in arb_uarch()) {
            if a.name != b.name {
                prop_assert!(!(a.is_descendant_of(&b.name) && b.is_descendant_of(&a.name)));
            }
        }
    }
}
