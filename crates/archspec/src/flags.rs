//! Compiler optimization flag selection.

use crate::uarch::Microarch;
use std::fmt;

/// Why flags could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// The compiler has no entry for this microarchitecture at any version.
    UnsupportedCompiler { uarch: String, compiler: String },
    /// The compiler is known but this version is older than the minimum.
    VersionTooOld {
        uarch: String,
        compiler: String,
        version: String,
        minimum: String,
    },
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::UnsupportedCompiler { uarch, compiler } => {
                write!(f, "compiler `{compiler}` cannot target microarchitecture `{uarch}`")
            }
            FlagError::VersionTooOld {
                uarch,
                compiler,
                version,
                minimum,
            } => write!(
                f,
                "compiler `{compiler}@{version}` is too old to target `{uarch}` (needs >= {minimum})"
            ),
        }
    }
}

impl std::error::Error for FlagError {}

impl Microarch {
    /// Returns the optimization flags for building on this microarchitecture
    /// with `compiler@version`, falling back to the most specific *ancestor*
    /// the compiler does support (archspec's behavior: an old gcc on zen3
    /// still gets `-march=x86-64-v3`-era flags rather than an error, as long
    /// as some ancestor works).
    pub fn optimization_flags(&self, compiler: &str, version: &str) -> Result<String, FlagError> {
        if let Some(support) = self.compiler_support(compiler, version) {
            return Ok(support.flags.clone());
        }
        // Walk ancestors from most to least specific.
        let tax = crate::taxonomy();
        let mut ancestors: Vec<&Microarch> = self
            .ancestors
            .iter()
            .filter_map(|name| tax.get(name))
            .collect();
        ancestors.sort_by_key(|a| std::cmp::Reverse(a.ancestors.len()));
        for ancestor in ancestors {
            if let Some(support) = ancestor.compiler_support(compiler, version) {
                return Ok(support.flags.clone());
            }
        }
        // Distinguish "unknown compiler" from "version too old".
        let entries: Vec<_> = self
            .compilers
            .iter()
            .filter(|c| c.compiler == compiler)
            .collect();
        if let Some(entry) = entries.first() {
            Err(FlagError::VersionTooOld {
                uarch: self.name.clone(),
                compiler: compiler.to_string(),
                version: version.to_string(),
                minimum: entry
                    .min_version
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("."),
            })
        } else {
            Err(FlagError::UnsupportedCompiler {
                uarch: self.name.clone(),
                compiler: compiler.to_string(),
            })
        }
    }
}
