//! Unit and property tests for the resilience primitives.

use crate::{BreakerConfig, BreakerState, CircuitBreaker, FaultInjector, RetryPolicy};
use benchpark_telemetry::TelemetrySink;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

#[test]
fn first_try_success_takes_no_backoff() {
    let policy = RetryPolicy::new(5).with_jitter(0.5, 7);
    let outcome = policy.run(&TelemetrySink::noop(), |_| Ok::<_, ()>(42));
    assert_eq!(outcome.result, Ok(42));
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.virtual_backoff_s, 0.0);
}

#[test]
fn exhaustion_returns_last_error_and_counts_retries() {
    let sink = TelemetrySink::recording();
    let policy = RetryPolicy::new(4)
        .with_backoff(1.0, 2.0)
        .with_max_delay(100.0);
    let outcome = policy.run(&sink, Err::<(), u32>);
    assert_eq!(outcome.result, Err(4), "last error is surfaced");
    assert_eq!(outcome.attempts, 4);
    // 1 + 2 + 4 virtual seconds of exponential backoff, no jitter
    assert!((outcome.virtual_backoff_s - 7.0).abs() < 1e-12);
    assert_eq!(sink.report().unwrap().counter("retry.attempts"), 3);
}

#[test]
fn delays_respect_per_retry_cap() {
    let policy = RetryPolicy::new(8)
        .with_backoff(1.0, 10.0)
        .with_max_delay(5.0);
    for delay in policy.delays() {
        assert!(delay <= 5.0, "cap must bound every delay, got {delay}");
    }
}

#[test]
fn degenerate_configs_are_sanitized() {
    let policy = RetryPolicy::new(0)
        .with_backoff(f64::NAN, f64::NEG_INFINITY)
        .with_max_delay(f64::NAN)
        .with_jitter(f64::NAN, 1);
    assert_eq!(policy.max_attempts(), 1, "at least one attempt");
    assert!(policy.delays().is_empty());
    assert!(policy.total_backoff_bound().is_finite());
    // a single-attempt policy never backs off
    let outcome = policy.run(&TelemetrySink::noop(), |_| Err::<(), _>("x"));
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.virtual_backoff_s, 0.0);
}

proptest! {
    /// Retry-with-jitter is a pure function of the policy: the same seed and
    /// parameters yield identical delay schedules, independent of call order.
    #[test]
    fn retry_jitter_is_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        attempts in 2u32..12,
        base in 0.01f64..5.0,
        multiplier in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
    ) {
        let make = || {
            RetryPolicy::new(attempts)
                .with_backoff(base, multiplier)
                .with_max_delay(60.0)
                .with_jitter(jitter, seed)
        };
        let a = make().delays();
        // query a fresh policy out of order: determinism must not depend on
        // internal RNG state advancing call to call
        let b_policy = make();
        let mut b: Vec<f64> = Vec::new();
        for retry in (1..attempts).rev() {
            b.push(b_policy.delay_before(retry));
        }
        b.reverse();
        prop_assert_eq!(a.clone(), b);
        // and a full exhausted run accumulates exactly the scheduled delays
        let outcome = make().run(&TelemetrySink::noop(), |_| Err::<(), _>(()));
        let expected: f64 = a.iter().sum();
        prop_assert!((outcome.virtual_backoff_s - expected).abs() < 1e-9);
    }

    /// Total virtual backoff of any run is bounded by the policy's
    /// documented cap, jitter included.
    #[test]
    fn total_backoff_is_bounded_by_policy_cap(
        seed in any::<u64>(),
        attempts in 1u32..16,
        base in 0.0f64..10.0,
        multiplier in 1.0f64..8.0,
        max_delay in 0.1f64..20.0,
        jitter in 0.0f64..1.0,
        fail_n in 0u32..20,
    ) {
        let policy = RetryPolicy::new(attempts)
            .with_backoff(base, multiplier)
            .with_max_delay(max_delay)
            .with_jitter(jitter, seed);
        let mut failures_left = fail_n;
        let outcome = policy.run(&TelemetrySink::noop(), |_| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(())
            } else {
                Ok(())
            }
        });
        prop_assert!(outcome.virtual_backoff_s >= 0.0);
        prop_assert!(
            outcome.virtual_backoff_s <= policy.total_backoff_bound() + 1e-9,
            "backoff {} exceeds bound {}",
            outcome.virtual_backoff_s,
            policy.total_backoff_bound()
        );
        prop_assert!(outcome.attempts <= policy.max_attempts());
    }
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

#[test]
fn breaker_trips_after_threshold_and_half_opens() {
    let mut breaker = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        reset_after_s: 30.0,
    });
    assert_eq!(breaker.state(), BreakerState::Closed);
    breaker.record_failure(0.0);
    breaker.record_failure(1.0);
    assert_eq!(breaker.state(), BreakerState::Closed, "below threshold");
    breaker.record_failure(2.0);
    assert_eq!(breaker.state(), BreakerState::Open);
    assert_eq!(breaker.trips(), 1);
    assert!(!breaker.allow(2.0));
    assert!(!breaker.allow(31.9));
    assert!(breaker.allow(32.0), "cooldown elapsed: probe allowed");
    assert_eq!(breaker.state(), BreakerState::HalfOpen);
    // probe fails: immediately re-opens
    breaker.record_failure(32.0);
    assert_eq!(breaker.state(), BreakerState::Open);
    assert_eq!(breaker.trips(), 2);
    // second probe succeeds: closes and resets the streak
    assert!(breaker.allow(62.5));
    breaker.record_success();
    assert_eq!(breaker.state(), BreakerState::Closed);
    breaker.record_failure(63.0);
    assert_eq!(breaker.state(), BreakerState::Closed, "streak was reset");
}

#[test]
fn success_resets_consecutive_failures() {
    let mut breaker = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 2,
        reset_after_s: 10.0,
    });
    for _ in 0..5 {
        breaker.record_failure(0.0);
        breaker.record_success();
    }
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert_eq!(breaker.trips(), 0, "alternating outcomes never trip");
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

#[test]
fn injector_extremes_and_determinism() {
    let never = FaultInjector::new(0.0, 1);
    let always = FaultInjector::new(1.0, 1);
    for _ in 0..100 {
        assert!(!never.should_fail());
        assert!(always.should_fail());
    }
    assert_eq!(never.injected(), 0);
    assert_eq!(always.injected(), 100);

    let a = FaultInjector::new(0.3, 99);
    let b = FaultInjector::new(0.3, 99);
    let seq_a: Vec<bool> = (0..200).map(|_| a.should_fail()).collect();
    let seq_b: Vec<bool> = (0..200).map(|_| b.should_fail()).collect();
    assert_eq!(seq_a, seq_b, "same seed, same fault sequence");
    assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));
}

#[test]
fn injector_budget_caps_total_failures() {
    let injector = FaultInjector::new(1.0, 7).with_budget(3);
    let fired = (0..50).filter(|_| injector.should_fail()).count();
    assert_eq!(fired, 3);
    assert_eq!(injector.injected(), 3);
}

#[test]
fn injector_clones_share_one_stream() {
    let a = FaultInjector::new(1.0, 5).with_budget(4);
    let b = a.clone();
    assert!(a.should_fail());
    assert!(b.should_fail());
    assert_eq!(a.injected(), 2, "clones share the budget and counters");
    assert!(a.should_fail());
    assert!(b.should_fail());
    assert!(!a.should_fail(), "shared budget exhausted");
}

#[test]
fn injector_rejects_degenerate_rates() {
    assert!(!FaultInjector::new(f64::NAN, 0).should_fail());
    assert!(!FaultInjector::new(-3.0, 0).should_fail());
    assert!(FaultInjector::new(7.5, 0).should_fail(), "clamped to 1.0");
}
