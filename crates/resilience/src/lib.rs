//! Resilience primitives for the Benchpark pipeline: deterministic retry
//! policies, circuit breakers, and seeded transient-fault injection.
//!
//! Real HPC systems are flaky — the paper's premise (§1) is that continuous
//! benchmarking must keep running *through* hardware failures in order to
//! diagnose them. This crate provides the building blocks the rest of the
//! workspace wires into its CI executor, cluster scheduler, installer, and
//! binary cache:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and seeded
//!   jitter, expressed entirely in *virtual* seconds so simulations stay
//!   reproducible (no wall clock anywhere).
//! * [`CircuitBreaker`] — trips open after consecutive failures so callers
//!   can degrade gracefully (e.g. fall back from a binary cache to source
//!   builds), and half-opens after a virtual-time cooldown.
//! * [`FaultInjector`] — a seeded probabilistic gate used to inject
//!   transient faults (flaky runners, failed cache fetches) with an optional
//!   failure budget so tests provably converge.
//!
//! Everything is deterministic for a fixed seed: the same policy, seed, and
//! call sequence produce byte-identical behavior on every run.

#![deny(missing_docs)]

use benchpark_telemetry::TelemetrySink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

mod breaker;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};

#[cfg(test)]
mod tests;

/// A bounded retry policy with exponential backoff over virtual time.
///
/// Delays are computed as `min(base · multiplier^(retry-1), max_delay)`
/// scaled by a seeded jitter factor in `[1 - jitter, 1 + jitter]`. The
/// jitter for retry *k* depends only on `(seed, k)`, never on call order,
/// so a policy is a pure function of its configuration.
///
/// # Examples
///
/// ```
/// use benchpark_resilience::RetryPolicy;
/// use benchpark_telemetry::TelemetrySink;
///
/// let policy = RetryPolicy::new(4)
///     .with_backoff(0.5, 2.0)
///     .with_max_delay(10.0)
///     .with_jitter(0.25, 42);
///
/// // Succeeds on the third attempt; two virtual backoff pauses were taken.
/// let mut failures_left = 2;
/// let outcome = policy.run(&TelemetrySink::noop(), |_attempt| {
///     if failures_left > 0 {
///         failures_left -= 1;
///         Err("transient")
///     } else {
///         Ok("done")
///     }
/// });
/// assert_eq!(outcome.result, Ok("done"));
/// assert_eq!(outcome.attempts, 3);
/// assert!(outcome.virtual_backoff_s > 0.0);
/// assert!(outcome.virtual_backoff_s <= policy.total_backoff_bound());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay_s: f64,
    multiplier: f64,
    max_delay_s: f64,
    jitter: f64,
    seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 s base delay doubling per retry, 30 s cap, no
    /// jitter.
    fn default() -> RetryPolicy {
        RetryPolicy::new(3)
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts (the first try plus
    /// `max_attempts - 1` retries). Zero is treated as one: every operation
    /// runs at least once.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_s: 1.0,
            multiplier: 2.0,
            max_delay_s: 30.0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Sets the first-retry delay and the exponential growth factor.
    /// Non-finite or negative values fall back to the defaults (1.0 / 2.0);
    /// a multiplier below 1 is clamped to 1 (backoff never shrinks).
    pub fn with_backoff(mut self, base_delay_s: f64, multiplier: f64) -> RetryPolicy {
        self.base_delay_s = if base_delay_s.is_finite() && base_delay_s >= 0.0 {
            base_delay_s
        } else {
            1.0
        };
        self.multiplier = if multiplier.is_finite() {
            multiplier.max(1.0)
        } else {
            2.0
        };
        self
    }

    /// Caps every individual retry delay at `max_delay_s` virtual seconds.
    /// Non-finite or negative caps fall back to 30 s.
    pub fn with_max_delay(mut self, max_delay_s: f64) -> RetryPolicy {
        self.max_delay_s = if max_delay_s.is_finite() && max_delay_s >= 0.0 {
            max_delay_s
        } else {
            30.0
        };
        self
    }

    /// Enables seeded jitter: each delay is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]`, deterministically from
    /// `(seed, retry index)`. `jitter` is clamped into `[0, 1]`.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> RetryPolicy {
        self.jitter = if jitter.is_finite() {
            jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.seed = seed;
        self
    }

    /// Total attempts this policy allows (first try included).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The virtual-seconds delay taken after failed attempt `retry`
    /// (1-based: `retry = 1` is the pause before the second attempt).
    /// Deterministic in `(policy, retry)`.
    pub fn delay_before(&self, retry: u32) -> f64 {
        let retry = retry.max(1);
        let exponent = (retry - 1).min(63);
        let raw = self.base_delay_s * self.multiplier.powi(exponent as i32);
        let capped = raw.min(self.max_delay_s);
        capped * self.jitter_factor(retry)
    }

    /// All backoff delays the policy can take, in order.
    pub fn delays(&self) -> Vec<f64> {
        (1..self.max_attempts)
            .map(|r| self.delay_before(r))
            .collect()
    }

    /// An upper bound on the total virtual backoff time an exhausted run can
    /// accumulate: `(max_attempts - 1) · max_delay · (1 + jitter)`.
    pub fn total_backoff_bound(&self) -> f64 {
        (self.max_attempts.saturating_sub(1)) as f64 * self.max_delay_s * (1.0 + self.jitter)
    }

    /// Runs `op` until it succeeds or attempts are exhausted. Each retry is
    /// counted on `sink` under `retry.attempts` and its backoff accumulated
    /// into [`RetryOutcome::virtual_backoff_s`]. `op` receives the 1-based
    /// attempt number.
    pub fn run<T, E>(
        &self,
        sink: &TelemetrySink,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut backoff = 0.0;
        let mut attempt = 1u32;
        loop {
            match op(attempt) {
                Ok(value) => {
                    return RetryOutcome {
                        result: Ok(value),
                        attempts: attempt,
                        virtual_backoff_s: backoff,
                    }
                }
                Err(error) => {
                    if attempt >= self.max_attempts {
                        return RetryOutcome {
                            result: Err(error),
                            attempts: attempt,
                            virtual_backoff_s: backoff,
                        };
                    }
                    backoff += self.delay_before(attempt);
                    sink.incr("retry.attempts", 1);
                    attempt += 1;
                }
            }
        }
    }

    /// Jitter factor for retry `retry`, in `[1 - jitter, 1 + jitter]`.
    fn jitter_factor(&self, retry: u32) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        let stream = self.seed ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(stream);
        1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0)
    }
}

/// What a [`RetryPolicy::run`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The final result: the first success, or the last error when attempts
    /// ran out.
    pub result: Result<T, E>,
    /// Attempts actually made (1 when the first try succeeded).
    pub attempts: u32,
    /// Total virtual seconds spent backing off between attempts.
    pub virtual_backoff_s: f64,
}

impl<T, E> RetryOutcome<T, E> {
    /// True if the operation eventually succeeded.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// A seeded probabilistic fault gate: each [`FaultInjector::should_fail`]
/// call independently fires with the configured rate, driven by a
/// deterministic RNG. Clones share one RNG stream, so a cloned injector
/// threaded through several subsystems produces one reproducible global
/// fault sequence.
///
/// An optional *failure budget* bounds the total number of injected faults,
/// guaranteeing that retried operations eventually converge.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    inner: Arc<parking_lot::Mutex<InjectorState>>,
}

#[derive(Debug)]
struct InjectorState {
    rng: StdRng,
    rate: f64,
    remaining: Option<u64>,
    injected: u64,
}

impl FaultInjector {
    /// An injector firing with probability `rate` (clamped into `[0, 1]`;
    /// non-finite rates disable injection), seeded with `seed`.
    pub fn new(rate: f64, seed: u64) -> FaultInjector {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        FaultInjector {
            inner: Arc::new(parking_lot::Mutex::new(InjectorState {
                rng: StdRng::seed_from_u64(seed),
                rate,
                remaining: None,
                injected: 0,
            })),
        }
    }

    /// Limits the injector to at most `max_failures` injected faults over
    /// its lifetime; afterwards it never fires again.
    pub fn with_budget(self, max_failures: u64) -> FaultInjector {
        self.inner.lock().remaining = Some(max_failures);
        self
    }

    /// Rolls the dice: true means the caller should simulate a transient
    /// fault for this operation.
    pub fn should_fail(&self) -> bool {
        let mut state = self.inner.lock();
        if state.rate <= 0.0 {
            return false;
        }
        if state.remaining == Some(0) {
            return false;
        }
        let rate = state.rate;
        let fires = state.rng.gen_bool(rate);
        if fires {
            state.injected += 1;
            if let Some(remaining) = &mut state.remaining {
                *remaining -= 1;
            }
        }
        fires
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.lock().injected
    }
}
