//! The circuit breaker: trip open after consecutive failures, cool down in
//! virtual time, probe with a half-open state.

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual seconds the breaker stays open before allowing a half-open
    /// probe.
    pub reset_after_s: f64,
}

impl Default for BreakerConfig {
    /// Trip after 3 consecutive failures; probe again after 60 virtual
    /// seconds.
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            reset_after_s: 60.0,
        }
    }
}

/// The breaker's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call is allowed.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe call is allowed; its outcome decides
    /// whether the breaker closes or re-opens.
    HalfOpen,
}

/// A circuit breaker over *virtual* time: the caller passes the current
/// simulation clock to [`CircuitBreaker::allow`] and
/// [`CircuitBreaker::record_failure`], so behavior is fully reproducible.
///
/// After `failure_threshold` consecutive failures the breaker opens and
/// rejects calls — the caller degrades gracefully (the installer falls back
/// to source builds). Once `reset_after_s` virtual seconds pass, one probe
/// is allowed through; success closes the breaker, failure re-opens it.
///
/// # Examples
///
/// ```
/// use benchpark_resilience::{BreakerConfig, BreakerState, CircuitBreaker};
///
/// let mut breaker = CircuitBreaker::new(BreakerConfig {
///     failure_threshold: 2,
///     reset_after_s: 10.0,
/// });
/// assert!(breaker.allow(0.0));
/// breaker.record_failure(0.0);
/// breaker.record_failure(1.0); // second consecutive failure: trips
/// assert_eq!(breaker.state(), BreakerState::Open);
/// assert_eq!(breaker.trips(), 1);
/// assert!(!breaker.allow(5.0)); // still cooling down
/// assert!(breaker.allow(11.0)); // half-open probe allowed
/// breaker.record_success();
/// assert_eq!(breaker.state(), BreakerState::Closed);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: f64,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration. A zero failure
    /// threshold is treated as one.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                reset_after_s: if config.reset_after_s.is_finite() && config.reset_after_s >= 0.0 {
                    config.reset_after_s
                } else {
                    60.0
                },
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0.0,
            trips: 0,
        }
    }

    /// Whether a call may proceed at virtual time `now_s`. An open breaker
    /// transitions to half-open (and allows the call) once the cooldown has
    /// elapsed.
    pub fn allow(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_s >= self.opened_at + self.config.reset_after_s {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful call: resets the failure streak and closes a
    /// half-open breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Reports a failed call at virtual time `now_s`. A half-open probe
    /// failure re-opens immediately; in the closed state the breaker trips
    /// once the consecutive-failure threshold is reached.
    pub fn record_failure(&mut self, now_s: f64) {
        self.consecutive_failures += 1;
        match self.state {
            BreakerState::HalfOpen => self.trip(now_s),
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now_s);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_s: f64) {
        self.state = BreakerState::Open;
        self.opened_at = now_s;
        self.trips += 1;
    }

    /// Current lifecycle state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}
