//! Solver-backed rules (`BP05xx`): dry-concretize every spec in the set
//! against the set's *own* site configuration (`benchpark lint --solve`).
//!
//! Where the `BP01xx` rules check each spec token in isolation (does the
//! package exist, does the version constraint admit anything), these rules
//! run the real propagation-based concretizer in analysis mode and report
//! what the composition as a whole can never do:
//!
//! * **BP0501** — the spec has no solution on this site at all; the
//!   diagnostic carries the solver's justification chain as `= note:` lines.
//! * **BP0502** — the spec solves, but some boolean variant value of the
//!   root package can never be taken on this site (a dead choice point).
//! * **BP0503** — a virtual was resolved by candidate order because several
//!   providers were viable and no site preference disambiguates.
//! * **BP0504** — the justification chain identifies two specific
//!   constraints that cannot both hold (a conflicting pair), reported in
//!   addition to BP0501 so the fix is named, not just the failure.
//!
//! The rules only run on sets that look like a concretizable site: a
//! `compilers.yaml` must be present, and sets that already produced error
//! diagnostics are skipped (dry-solving a broken composition would only
//! restate the breakage).

use crate::artifact::{Artifact, ArtifactKind};
use crate::diag::{Diagnostic, Severity};
use crate::linter::{emit, Linter, SetCtx};
use benchpark_concretizer::analyze_spec;
use benchpark_spack::ConfigScopes;
use benchpark_spec::Spec;
use benchpark_yamlite::{Span, SpannedValue};

pub(crate) fn check(ctx: &SetCtx<'_>, linter: &Linter, out: &mut Vec<Diagnostic>) {
    if out.iter().any(|d| d.severity == Severity::Error) {
        return;
    }
    let Some(repo) = &linter.repo else { return };
    if !ctx.has_compilers_yaml {
        return;
    }

    // the set's own packages.yaml / compilers.yaml, lowered exactly the way
    // `benchpark setup` would lower them
    let mut scopes = ConfigScopes::new();
    for artifact in &ctx.set.artifacts {
        let file = match artifact.kind {
            ArtifactKind::Packages => "packages.yaml",
            ArtifactKind::Compilers => "compilers.yaml",
            _ => continue,
        };
        let text = artifact.lines.join("\n");
        if scopes.push_scope(&artifact.name, &[(file, &text)]).is_err() {
            return; // parse failures are BP0001's job
        }
    }
    let config = scopes.site_config();

    for (artifact, span, text) in collect_specs(ctx) {
        let Ok(spec) = text.parse::<Spec>() else {
            continue; // BP0109's job
        };
        let report = analyze_spec(repo, &config, &spec, true);
        if !report.satisfiable {
            let error = report.error.as_ref().expect("unsat reports carry an error");
            emit(
                out,
                artifact,
                "BP0501",
                Severity::Error,
                span,
                format!("spec `{text}` cannot be concretized on this site: {error}"),
                Some("the notes below are the solver's justification chain"),
            );
            out.last_mut().expect("just pushed").notes = report.chain.clone();
            if let Some((first, second)) = conflicting_pair(error) {
                emit(
                    out,
                    artifact,
                    "BP0504",
                    Severity::Error,
                    span,
                    format!("constraints from `{first}` and `{second}` can never hold together"),
                    Some("relax one of the two constraints"),
                );
                out.last_mut().expect("just pushed").notes = report.chain.clone();
            }
            continue;
        }
        for dead in &report.dead_variants {
            emit(
                out,
                artifact,
                "BP0502",
                Severity::Warn,
                span,
                format!(
                    "variant value `{}` of `{text}` is dead on this site: no solution can take it",
                    dead.value
                ),
                Some("drop the choice point or fix the site configuration"),
            );
            out.last_mut().expect("just pushed").notes = vec![dead.error.clone()];
        }
        for ambiguous in &report.ambiguous {
            emit(
                out,
                artifact,
                "BP0503",
                Severity::Warn,
                span,
                format!(
                    "virtual `{}` has {} viable providers ({}) and no site preference; \
                     `{}` was chosen by candidate order",
                    ambiguous.virtual_name,
                    ambiguous.viable.len(),
                    ambiguous.viable.join(", "),
                    ambiguous.chosen
                ),
                Some("pin the choice with `packages: all: providers:` in packages.yaml"),
            );
        }
    }
}

/// Two distinct constraints responsible for a domain wipeout, when the
/// justification chain shows more than one actor pruning the same variable.
fn conflicting_pair(error: &benchpark_concretizer::ConcretizeError) -> Option<(String, String)> {
    let explanation = error.explanation.as_deref()?;
    if explanation.conflict.is_some() {
        return None; // a violated nogood is a recipe conflict, not a pair
    }
    let mut reasons: Vec<&str> = Vec::new();
    for step in &explanation.steps {
        if step.removed.is_empty() && step.narrowed.is_empty() {
            continue;
        }
        if !reasons.contains(&step.reason.as_str()) {
            reasons.push(&step.reason);
        }
    }
    if reasons.len() >= 2 {
        let last = reasons[reasons.len() - 1];
        Some((reasons[0].to_string(), last.to_string()))
    } else {
        None
    }
}

/// Every spec the set asks the concretizer to solve: `spack_spec:` entries in
/// package definitions (standalone or inside a ramble workspace) and `specs:`
/// lists of environment manifests.
fn collect_specs<'a>(ctx: &SetCtx<'a>) -> Vec<(&'a Artifact, Span, String)> {
    let mut specs = Vec::new();
    for artifact in &ctx.set.artifacts {
        match artifact.kind {
            ArtifactKind::SpackConfig => {
                collect_section(artifact, artifact.doc.get("spack"), &mut specs);
            }
            ArtifactKind::Ramble => {
                let spack = artifact.doc.get("ramble").and_then(|r| r.get("spack"));
                collect_section(artifact, spack, &mut specs);
            }
            ArtifactKind::SpackEnv => {
                let list = artifact
                    .doc
                    .get("spack")
                    .and_then(|s| s.get("specs"))
                    .and_then(|s| s.string_list());
                if let Some(list) = list {
                    for (text, span) in list {
                        specs.push((artifact, span, text));
                    }
                }
            }
            _ => {}
        }
    }
    specs
}

fn collect_section<'a>(
    artifact: &'a Artifact,
    spack: Option<&SpannedValue>,
    specs: &mut Vec<(&'a Artifact, Span, String)>,
) {
    let Some(pkgs) = spack
        .and_then(|s| s.get("packages"))
        .and_then(SpannedValue::as_map)
    else {
        return;
    };
    for entry in pkgs.iter() {
        if let Some(spec_val) = entry.value.get("spack_spec") {
            if let Some(text) = spec_val.as_str() {
                specs.push((artifact, spec_val.span, text.to_string()));
            }
        }
    }
}
