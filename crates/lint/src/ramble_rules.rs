//! Ramble-layer rules (`BP02xx`): variable binding across workspace, workload,
//! and experiment scopes; matrix/zip shape; name-template discrimination; and
//! success-criteria regexes.

use crate::artifact::{Artifact, ArtifactKind};
use crate::diag::{Diagnostic, Severity};
use crate::linter::{emit, refs_in, Linter, SetCtx};
use benchpark_yamlite::{SpannedMap, SpannedValue};
use std::collections::{BTreeMap, BTreeSet};

/// A resolved variable value at some scope: scalar, or a list consumed by
/// matrices and zips.
#[derive(Debug, Clone)]
enum VarVal {
    Scalar(String),
    List(Vec<String>),
}

fn var_val(v: &SpannedValue) -> Option<VarVal> {
    if let Some(seq) = v.as_seq() {
        Some(VarVal::List(
            seq.iter().filter_map(|e| e.scalar_string()).collect(),
        ))
    } else {
        v.scalar_string().map(VarVal::Scalar)
    }
}

pub(crate) fn check(ctx: &SetCtx<'_>, linter: &Linter, out: &mut Vec<Diagnostic>) {
    let ramble_present = ctx
        .set
        .artifacts
        .iter()
        .any(|a| a.kind == ArtifactKind::Ramble);
    let usage = collect_usage(ctx, linter);
    let sys_vars = system_var_names(ctx);
    for artifact in &ctx.set.artifacts {
        match artifact.kind {
            ArtifactKind::Ramble => {
                check_ramble(artifact, ctx, linter, &usage, &sys_vars, out);
            }
            // A variables.yaml is only checkable against a workspace; alone it
            // legitimately references variables the workspace will define.
            ArtifactKind::Variables if ramble_present => {
                check_system_variables(artifact, ctx, out);
            }
            _ => {}
        }
    }
}

/// Names defined by every `variables.yaml` in the set (minus the `compilers`
/// pseudo-entry).
fn system_var_names(ctx: &SetCtx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for artifact in ctx.set.of_kind(ArtifactKind::Variables) {
        if let Some(vars) = artifact.doc.get("variables").and_then(SpannedValue::as_map) {
            for entry in vars.iter() {
                if entry.key != "compilers" {
                    names.insert(entry.key.clone());
                }
            }
        }
    }
    names
}

/// Every variable name referenced anywhere in the set — by templates, variable
/// values, env vars, criteria files, and the declared applications' executable
/// templates and log files. Feeds the unused-variable rule (BP0203).
fn collect_usage(ctx: &SetCtx<'_>, linter: &Linter) -> BTreeSet<String> {
    let mut usage = BTreeSet::new();
    let add = |usage: &mut BTreeSet<String>, text: &str| {
        for r in refs_in(text) {
            usage.insert(r);
        }
    };
    for artifact in &ctx.set.artifacts {
        match artifact.kind {
            ArtifactKind::Variables => {
                if let Some(vars) = artifact.doc.get("variables").and_then(SpannedValue::as_map) {
                    for entry in vars.iter() {
                        if let Some(s) = entry.value.scalar_string() {
                            add(&mut usage, &s);
                        }
                    }
                }
            }
            ArtifactKind::Ramble => {
                let Some(ramble) = artifact.doc.get("ramble") else {
                    continue;
                };
                each_value_text(ramble.get("variables"), &mut |s| add(&mut usage, s));
                let Some(apps) = ramble.get("applications").and_then(SpannedValue::as_map) else {
                    continue;
                };
                for app in apps.iter() {
                    if let Some(def) = linter.apps.as_ref().and_then(|r| r.get(&app.key)) {
                        for exe in &def.executables {
                            add(&mut usage, &exe.template);
                        }
                        for fom in &def.figures_of_merit {
                            if let Some(log) = &fom.log_file {
                                add(&mut usage, log);
                            }
                        }
                        for crit in &def.success_criteria {
                            add(&mut usage, &crit.file);
                        }
                        for wl in &def.workloads {
                            for (_, value) in def.defaults_for(&wl.name) {
                                add(&mut usage, &value);
                            }
                        }
                    }
                    let Some(wls) = app.value.get("workloads").and_then(SpannedValue::as_map)
                    else {
                        continue;
                    };
                    for wl in wls.iter() {
                        each_value_text(wl.value.get("variables"), &mut |s| add(&mut usage, s));
                        each_value_text(wl.value.get_path(&["env_vars", "set"]), &mut |s| {
                            add(&mut usage, s)
                        });
                        if let Some(crits) = wl
                            .value
                            .get("success_criteria")
                            .and_then(SpannedValue::as_seq)
                        {
                            for crit in crits {
                                if let Some(file) = crit.get("file").and_then(SpannedValue::as_str)
                                {
                                    add(&mut usage, file);
                                }
                            }
                        }
                        let Some(exps) = wl.value.get("experiments").and_then(SpannedValue::as_map)
                        else {
                            continue;
                        };
                        for exp in exps.iter() {
                            add(&mut usage, &exp.key);
                            each_value_text(exp.value.get("variables"), &mut |s| {
                                add(&mut usage, s)
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // n_ranks derives from processes_per_node × n_nodes during generation, so a reference to
    // it keeps both factors alive.
    if usage.contains("n_ranks") {
        usage.insert("processes_per_node".to_string());
        usage.insert("n_nodes".to_string());
    }
    usage
}

/// Calls `f` with the scalar text of every value in a variables-like mapping
/// (list values contribute each element).
fn each_value_text(map: Option<&SpannedValue>, f: &mut impl FnMut(&str)) {
    let Some(map) = map.and_then(SpannedValue::as_map) else {
        return;
    };
    for entry in map.iter() {
        if let Some(seq) = entry.value.as_seq() {
            for item in seq {
                if let Some(s) = item.scalar_string() {
                    f(&s);
                }
            }
        } else if let Some(s) = entry.value.scalar_string() {
            f(&s);
        }
    }
}

/// BP0202 over `variables.yaml` values (only meaningful alongside a
/// workspace, which the caller guarantees).
fn check_system_variables(artifact: &Artifact, ctx: &SetCtx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(vars) = artifact.doc.get("variables").and_then(SpannedValue::as_map) else {
        return;
    };
    for entry in vars.iter() {
        if entry.key == "compilers" {
            continue;
        }
        if let Some(s) = entry.value.scalar_string() {
            report_undefined_refs(artifact, &entry.value, &s, ctx, out);
        }
    }
}

/// BP0202 for one value text: every `{ref}` must be bound by some scope.
fn report_undefined_refs(
    artifact: &Artifact,
    value: &SpannedValue,
    text: &str,
    ctx: &SetCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    for r in refs_in(text) {
        if !ctx.var_defined(&r) {
            emit(
                out,
                artifact,
                "BP0202",
                Severity::Error,
                value.span,
                format!("reference to undefined variable `{r}`"),
                Some("define it at the workspace, workload, or experiment scope"),
            );
        }
    }
}

fn check_variables_map(
    artifact: &Artifact,
    map: Option<&SpannedMap>,
    ctx: &SetCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(map) = map else { return };
    for entry in map.iter() {
        if let Some(seq) = entry.value.as_seq() {
            for item in seq {
                if let Some(s) = item.scalar_string() {
                    report_undefined_refs(artifact, item, &s, ctx, out);
                }
            }
        } else if let Some(s) = entry.value.scalar_string() {
            report_undefined_refs(artifact, &entry.value, &s, ctx, out);
        }
    }
}

/// All rules over one `ramble.yaml` workspace.
fn check_ramble(
    artifact: &Artifact,
    ctx: &SetCtx<'_>,
    _linter: &Linter,
    usage: &BTreeSet<String>,
    sys_vars: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(ramble) = artifact.doc.get("ramble") else {
        return;
    };
    let ws_vars = ramble.get("variables").and_then(SpannedValue::as_map);

    if let Some(ws) = ws_vars {
        for entry in ws.iter() {
            if sys_vars.contains(&entry.key) {
                emit(
                    out,
                    artifact,
                    "BP0204",
                    Severity::Warn,
                    entry.key_span,
                    format!(
                        "workspace variable `{}` shadows the system variables.yaml definition",
                        entry.key
                    ),
                    Some("rename one of the definitions to make the winner explicit"),
                );
            }
            // `mpi_command` &co. are read by the workspace machinery itself
            // (launcher assembly, batch submission), never via `{ref}` syntax.
            let framework_read = crate::linter::BUILTIN_VARS.contains(&entry.key.as_str())
                || entry.key == "batch_submit";
            if !usage.contains(&entry.key) && !framework_read {
                emit(
                    out,
                    artifact,
                    "BP0203",
                    Severity::Warn,
                    entry.key_span,
                    format!("workspace variable `{}` is never referenced", entry.key),
                    Some("remove it or reference it from a template or variable"),
                );
            }
        }
    }
    check_variables_map(artifact, ws_vars, ctx, out);

    let Some(apps) = ramble.get("applications").and_then(SpannedValue::as_map) else {
        return;
    };
    for app in apps.iter() {
        let Some(wls) = app.value.get("workloads").and_then(SpannedValue::as_map) else {
            continue;
        };
        for wl in wls.iter() {
            let wl_vars = wl.value.get("variables").and_then(SpannedValue::as_map);
            if let Some(wv) = wl_vars {
                for entry in wv.iter() {
                    if ws_vars.map(|m| m.contains_key(&entry.key)).unwrap_or(false) {
                        emit(
                            out,
                            artifact,
                            "BP0204",
                            Severity::Warn,
                            entry.key_span,
                            format!(
                                "workload variable `{}` shadows a workspace-level definition",
                                entry.key
                            ),
                            None,
                        );
                    }
                }
            }
            check_variables_map(artifact, wl_vars, ctx, out);
            check_variables_map(
                artifact,
                wl.value
                    .get_path(&["env_vars", "set"])
                    .and_then(SpannedValue::as_map),
                ctx,
                out,
            );
            check_criteria(artifact, wl.value.get("success_criteria"), ctx, out);

            let Some(exps) = wl.value.get("experiments").and_then(SpannedValue::as_map) else {
                continue;
            };
            for exp in exps.iter() {
                check_experiment(artifact, exp.key.as_str(), exp, ws_vars, wl_vars, ctx, out);
            }
        }
    }
}

/// BP0207 (invalid regex) and BP0208 (criterion file with unbound refs).
fn check_criteria(
    artifact: &Artifact,
    criteria: Option<&SpannedValue>,
    ctx: &SetCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(criteria) = criteria.and_then(SpannedValue::as_seq) else {
        return;
    };
    for crit in criteria {
        if let Some(m) = crit.get("match") {
            if let Some(pattern) = m.as_str() {
                if let Err(e) = benchpark_rex::Regex::new(pattern) {
                    emit(
                        out,
                        artifact,
                        "BP0207",
                        Severity::Error,
                        m.span,
                        format!("success-criterion regex does not compile: {e}"),
                        None,
                    );
                }
            }
        }
        if let Some(file) = crit.get("file") {
            if let Some(text) = file.as_str() {
                for r in refs_in(text) {
                    if !ctx.var_defined(&r) {
                        emit(
                            out,
                            artifact,
                            "BP0208",
                            Severity::Warn,
                            file.span,
                            format!(
                                "success-criterion file references unbound variable `{r}`; \
                                 the criterion can never locate its log"
                            ),
                            None,
                        );
                    }
                }
            }
        }
    }
}

/// Experiment-level rules: BP0201 (unbound template placeholder), BP0202 on
/// experiment variables, BP0204 (shadowing), BP0205 (matrix shape), BP0206
/// (zip lengths), BP0209 (non-discriminating template).
#[allow(clippy::too_many_arguments)]
fn check_experiment(
    artifact: &Artifact,
    template: &str,
    exp: &benchpark_yamlite::SpannedEntry,
    ws_vars: Option<&SpannedMap>,
    wl_vars: Option<&SpannedMap>,
    ctx: &SetCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let exp_vars = exp.value.get("variables").and_then(SpannedValue::as_map);

    for r in refs_in(template) {
        if !ctx.var_defined(&r) {
            emit(
                out,
                artifact,
                "BP0201",
                Severity::Error,
                exp.key_span,
                format!("name template references `{{{r}}}`, which no scope defines"),
                Some("bind the placeholder with a variable or drop it from the template"),
            );
        }
    }
    if let Some(ev) = exp_vars {
        for entry in ev.iter() {
            let shadows = if wl_vars.map(|m| m.contains_key(&entry.key)).unwrap_or(false) {
                Some("workload")
            } else if ws_vars.map(|m| m.contains_key(&entry.key)).unwrap_or(false) {
                Some("workspace")
            } else {
                None
            };
            if let Some(outer) = shadows {
                emit(
                    out,
                    artifact,
                    "BP0204",
                    Severity::Warn,
                    entry.key_span,
                    format!(
                        "experiment variable `{}` shadows a {outer}-level definition",
                        entry.key
                    ),
                    None,
                );
            }
        }
    }
    check_variables_map(artifact, exp_vars, ctx, out);

    // Consolidated scope, innermost definition winning — the generator's view.
    let mut vars: BTreeMap<String, VarVal> = BTreeMap::new();
    for scope in [ws_vars, wl_vars, exp_vars].into_iter().flatten() {
        for entry in scope.iter() {
            if let Some(v) = var_val(&entry.value) {
                vars.insert(entry.key.clone(), v);
            }
        }
    }

    // Matrices: BP0205.
    let mut matrix_vars: BTreeSet<String> = BTreeSet::new();
    if let Some(matrices) = exp.value.get("matrices").and_then(SpannedValue::as_seq) {
        for m in matrices {
            let Some(mmap) = m.as_map() else { continue };
            for mat in mmap.iter() {
                let Some(names) = mat.value.string_list() else {
                    continue;
                };
                for (name, span) in names {
                    match vars.get(&name) {
                        None => emit(
                            out,
                            artifact,
                            "BP0205",
                            Severity::Error,
                            span,
                            format!(
                                "matrix `{}` lists `{name}`, which no scope defines",
                                mat.key
                            ),
                            None,
                        ),
                        Some(VarVal::Scalar(_)) => emit(
                            out,
                            artifact,
                            "BP0205",
                            Severity::Error,
                            span,
                            format!(
                                "matrix `{}` lists `{name}`, which is a scalar; \
                                 matrix variables must be lists",
                                mat.key
                            ),
                            None,
                        ),
                        Some(VarVal::List(_)) => {
                            if !matrix_vars.insert(name.clone()) {
                                emit(
                                    out,
                                    artifact,
                                    "BP0205",
                                    Severity::Error,
                                    span,
                                    format!("variable `{name}` appears in more than one matrix"),
                                    Some("a variable may be consumed by at most one matrix"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // Zip axis: BP0206. Non-matrix list variables are zipped together, so
    // their lengths must agree.
    let zipped: Vec<(&String, &Vec<String>)> = vars
        .iter()
        .filter_map(|(k, v)| match v {
            VarVal::List(items) if !matrix_vars.contains(k) => Some((k, items)),
            _ => None,
        })
        .collect();
    let lengths: BTreeSet<usize> = zipped.iter().map(|(_, items)| items.len()).collect();
    if lengths.len() > 1 {
        let detail: Vec<String> = zipped
            .iter()
            .map(|(k, items)| format!("`{k}` has {}", items.len()))
            .collect();
        emit(
            out,
            artifact,
            "BP0206",
            Severity::Error,
            exp.key_span,
            format!(
                "zipped list variables have mismatched lengths: {}",
                detail.join(", ")
            ),
            Some("non-matrix lists are zipped index-by-index and must be the same length"),
        );
        return;
    }

    // BP0209: every generated experiment must get a distinct name.
    let template_refs: BTreeSet<String> = refs_in(template).into_iter().collect();
    for name in &matrix_vars {
        if let Some(VarVal::List(items)) = vars.get(name) {
            let distinct: BTreeSet<&String> = items.iter().collect();
            if distinct.len() > 1 && !template_refs.contains(name) {
                emit(
                    out,
                    artifact,
                    "BP0209",
                    Severity::Error,
                    exp.key_span,
                    format!(
                        "matrix variable `{name}` takes {} values but the name template \
                         never references it, so generated experiment names collide",
                        distinct.len()
                    ),
                    Some("add the variable to the name template"),
                );
            }
        }
    }
    let zip_len = lengths.into_iter().next().unwrap_or(1);
    if zip_len > 1 {
        let derive_ranks = !vars.contains_key("n_ranks")
            && template_refs.contains("n_ranks")
            && vars.contains_key("processes_per_node")
            && vars.contains_key("n_nodes");
        let keys: Vec<String> = (0..zip_len)
            .map(|i| {
                let mut key = String::new();
                for (name, items) in &zipped {
                    if template_refs.contains(name.as_str()) {
                        key.push_str(&items[i]);
                        key.push('/');
                    }
                }
                if derive_ranks {
                    if let (Some(ppn), Some(nodes)) = (
                        numeric_at(&vars, "processes_per_node", i),
                        numeric_at(&vars, "n_nodes", i),
                    ) {
                        key.push_str(&(ppn * nodes).to_string());
                    }
                }
                key
            })
            .collect();
        let distinct: BTreeSet<&String> = keys.iter().collect();
        if distinct.len() < zip_len {
            emit(
                out,
                artifact,
                "BP0209",
                Severity::Error,
                exp.key_span,
                format!(
                    "the zip axis generates {zip_len} experiments but the name template \
                     does not distinguish them, so generated names collide"
                ),
                Some(
                    "reference a zipped list variable (or a value derived from one) \
                      in the name template",
                ),
            );
        }
    }
}

/// The numeric value of `name` at zip index `i` (scalars repeat).
fn numeric_at(vars: &BTreeMap<String, VarVal>, name: &str, i: usize) -> Option<u64> {
    match vars.get(name)? {
        VarVal::Scalar(s) => s.parse().ok(),
        VarVal::List(items) => items.get(i)?.parse().ok(),
    }
}
