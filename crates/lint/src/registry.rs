//! The rule registry: every stable `BP####` code with its default severity
//! and a one-line summary. `docs/LINT.md` mirrors this table.

use crate::diag::Severity;

/// Static metadata for one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code (`BP0101`, …).
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of what the rule detects.
    pub summary: &'static str,
}

/// Every rule the linter implements, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "BP0001",
        severity: Severity::Error,
        name: "parse-error",
        summary: "an artifact could not be parsed as YAML",
    },
    RuleInfo {
        code: "BP0002",
        severity: Severity::Note,
        name: "unrecognized-artifact",
        summary: "an artifact matches no known layer and is skipped by every rule",
    },
    RuleInfo {
        code: "BP0101",
        severity: Severity::Error,
        name: "unknown-package",
        summary: "a spec names a package that is in no repository (virtuals allowed)",
    },
    RuleInfo {
        code: "BP0102",
        severity: Severity::Error,
        name: "unknown-compiler-for-system",
        summary: "a compiler request does not match any compilers.yaml toolchain",
    },
    RuleInfo {
        code: "BP0103",
        severity: Severity::Error,
        name: "unsatisfiable-version",
        summary: "no known version of the package satisfies the spec's constraint",
    },
    RuleInfo {
        code: "BP0104",
        severity: Severity::Error,
        name: "unknown-variant",
        summary: "a spec sets a variant the package does not declare",
    },
    RuleInfo {
        code: "BP0105",
        severity: Severity::Error,
        name: "conflicting-variants",
        summary: "one spec node sets the same variant twice with different values",
    },
    RuleInfo {
        code: "BP0106",
        severity: Severity::Error,
        name: "dangling-compiler-ref",
        summary: "a package definition's `compiler:` names no known definition",
    },
    RuleInfo {
        code: "BP0107",
        severity: Severity::Error,
        name: "dangling-env-package",
        summary: "an environment lists a package definition that does not exist",
    },
    RuleInfo {
        code: "BP0108",
        severity: Severity::Error,
        name: "unbuildable-package",
        summary: "`buildable: false` with no externals can never be satisfied",
    },
    RuleInfo {
        code: "BP0109",
        severity: Severity::Error,
        name: "invalid-spec",
        summary: "a spec string does not parse",
    },
    RuleInfo {
        code: "BP0201",
        severity: Severity::Error,
        name: "unbound-placeholder",
        summary: "an experiment name template references a variable no scope defines",
    },
    RuleInfo {
        code: "BP0202",
        severity: Severity::Error,
        name: "undefined-variable",
        summary: "a variable value references an undefined variable",
    },
    RuleInfo {
        code: "BP0203",
        severity: Severity::Warn,
        name: "unused-variable",
        summary: "a workspace-level variable is never referenced",
    },
    RuleInfo {
        code: "BP0204",
        severity: Severity::Warn,
        name: "shadowed-variable",
        summary: "an inner scope silently redefines an outer-scope variable",
    },
    RuleInfo {
        code: "BP0205",
        severity: Severity::Error,
        name: "bad-matrix",
        summary: "a matrix names an undefined or scalar variable, or one in two matrices",
    },
    RuleInfo {
        code: "BP0206",
        severity: Severity::Error,
        name: "zip-length-mismatch",
        summary: "zipped list variables have different lengths",
    },
    RuleInfo {
        code: "BP0207",
        severity: Severity::Error,
        name: "invalid-regex",
        summary: "a success-criterion regex does not compile",
    },
    RuleInfo {
        code: "BP0208",
        severity: Severity::Warn,
        name: "unbound-criterion-file",
        summary: "a success-criterion log path references an unbound variable",
    },
    RuleInfo {
        code: "BP0209",
        severity: Severity::Error,
        name: "nondiscriminating-template",
        summary: "generated experiment names collide because the template ignores a varying axis",
    },
    RuleInfo {
        code: "BP0301",
        severity: Severity::Error,
        name: "unknown-stage",
        summary: "a job references a stage that `stages:` does not declare",
    },
    RuleInfo {
        code: "BP0302",
        severity: Severity::Error,
        name: "dangling-needs",
        summary: "a job needs another job that does not exist",
    },
    RuleInfo {
        code: "BP0303",
        severity: Severity::Error,
        name: "forward-needs",
        summary: "a job needs a job in a later stage, which can never be satisfied",
    },
    RuleInfo {
        code: "BP0304",
        severity: Severity::Warn,
        name: "masked-failure",
        summary: "`retry` combined with `allow_failure: true` hides real breakage",
    },
    RuleInfo {
        code: "BP0305",
        severity: Severity::Warn,
        name: "empty-stage",
        summary: "a declared stage has no jobs",
    },
    RuleInfo {
        code: "BP0306",
        severity: Severity::Error,
        name: "needs-cycle",
        summary: "jobs need each other in a cycle the scheduler can never start",
    },
    RuleInfo {
        code: "BP0307",
        severity: Severity::Warn,
        name: "script-less-job",
        summary: "a job-like entry has no `script:` and is silently dropped",
    },
    RuleInfo {
        code: "BP0501",
        severity: Severity::Error,
        name: "unsatisfiable-spec",
        summary: "a spec has no solution on this site; notes carry the justification chain",
    },
    RuleInfo {
        code: "BP0502",
        severity: Severity::Warn,
        name: "dead-variant",
        summary: "a boolean variant value of the root package can never be taken on this site",
    },
    RuleInfo {
        code: "BP0503",
        severity: Severity::Warn,
        name: "ambiguous-virtual-provider",
        summary: "several providers are viable for a virtual and no site preference disambiguates",
    },
    RuleInfo {
        code: "BP0504",
        severity: Severity::Error,
        name: "conflicting-constraint-pair",
        summary: "two specific constraints in the composition can never hold together",
    },
];

/// Looks up a rule by its code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}
