//! The lint driver: builds the cross-artifact context and runs every rule.

use crate::artifact::{Artifact, ArtifactKind, ArtifactSet};
use crate::diag::{Diagnostic, LintReport, Severity};
use benchpark_pkg::{AppRepo, Repo};
use benchpark_yamlite::{Span, SpannedValue};
use std::collections::BTreeSet;

/// Variables Ramble itself binds during rendering; references to these are
/// always considered defined.
pub const BUILTIN_VARS: &[&str] = &[
    "application_name",
    "workload_name",
    "experiment_name",
    "experiment_run_dir",
    "workspace_dir",
    "command",
    "execute_experiment",
    "spack_setup",
    "batch_nodes",
    "batch_ranks",
    "mpi_command",
    "n_ranks",
    "repeat_index",
];

/// The cross-artifact facts rules consult: what names each layer defines, so
/// references across the Table 1 axes can be validated statically.
pub(crate) struct SetCtx<'a> {
    /// The artifact set under analysis.
    pub set: &'a ArtifactSet,
    /// Named package definitions (Figure 9): `default-compiler`, `saxpy`, …
    /// from every `spack:` section in the set.
    pub package_defs: BTreeSet<String>,
    /// Package names that appear in `packages.yaml` externals (their installed
    /// versions are outside the repo's version list).
    pub external_pkgs: BTreeSet<String>,
    /// `compilers.yaml` toolchains as `(name, version_text)`.
    pub compiler_entries: Vec<(String, String)>,
    /// Whether the set contains a compilers.yaml at all (the compiler
    /// cross-check only runs when it does).
    pub has_compilers_yaml: bool,
    /// Every variable name defined by any scope of any artifact, plus
    /// application workload defaults for declared workloads.
    pub defined_vars: BTreeSet<String>,
}

impl<'a> SetCtx<'a> {
    pub(crate) fn build(set: &'a ArtifactSet, apps: Option<&AppRepo>) -> SetCtx<'a> {
        let mut ctx = SetCtx {
            set,
            package_defs: BTreeSet::new(),
            external_pkgs: BTreeSet::new(),
            compiler_entries: Vec::new(),
            has_compilers_yaml: false,
            defined_vars: BTreeSet::new(),
        };
        for artifact in &set.artifacts {
            match artifact.kind {
                ArtifactKind::SpackConfig => {
                    ctx.collect_spack_section(artifact.doc.get("spack"));
                }
                ArtifactKind::Ramble => {
                    let ramble = artifact.doc.get("ramble");
                    ctx.collect_spack_section(ramble.and_then(|r| r.get("spack")));
                    ctx.collect_ramble_vars(ramble, apps);
                }
                ArtifactKind::Variables => {
                    if let Some(vars) = artifact.doc.get("variables").and_then(SpannedValue::as_map)
                    {
                        for entry in vars.iter() {
                            if entry.key != "compilers" {
                                ctx.defined_vars.insert(entry.key.clone());
                            }
                        }
                    }
                }
                ArtifactKind::Packages => {
                    if let Some(pkgs) = artifact.doc.get("packages").and_then(SpannedValue::as_map)
                    {
                        for entry in pkgs.iter() {
                            if let Some(externals) =
                                entry.value.get("externals").and_then(SpannedValue::as_seq)
                            {
                                for ext in externals {
                                    let spec_name = ext
                                        .get("spec")
                                        .and_then(SpannedValue::as_str)
                                        .and_then(|s| s.parse::<benchpark_spec::Spec>().ok())
                                        .and_then(|s| s.name);
                                    if let Some(name) = spec_name {
                                        ctx.external_pkgs.insert(name);
                                    }
                                    // the virtual the external satisfies also
                                    // escapes repo version checking
                                    ctx.external_pkgs.insert(entry.key.clone());
                                }
                            }
                        }
                    }
                }
                ArtifactKind::Compilers => {
                    ctx.has_compilers_yaml = true;
                    if let Some(list) = artifact.doc.get("compilers").and_then(SpannedValue::as_seq)
                    {
                        for item in list {
                            if let Some(spec) = item
                                .get("compiler")
                                .and_then(|c| c.get("spec"))
                                .and_then(SpannedValue::as_str)
                            {
                                let (name, version) = match spec.split_once('@') {
                                    Some((n, v)) => (n.to_string(), v.to_string()),
                                    None => (spec.to_string(), String::new()),
                                };
                                ctx.compiler_entries.push((name, version));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        ctx
    }

    fn collect_spack_section(&mut self, spack: Option<&SpannedValue>) {
        let Some(spack) = spack else { return };
        if let Some(pkgs) = spack.get("packages").and_then(SpannedValue::as_map) {
            for entry in pkgs.iter() {
                self.package_defs.insert(entry.key.clone());
            }
        }
    }

    fn collect_ramble_vars(&mut self, ramble: Option<&SpannedValue>, apps: Option<&AppRepo>) {
        let Some(ramble) = ramble else { return };
        if let Some(vars) = ramble.get("variables").and_then(SpannedValue::as_map) {
            for entry in vars.iter() {
                self.defined_vars.insert(entry.key.clone());
            }
        }
        let Some(applications) = ramble.get("applications").and_then(SpannedValue::as_map) else {
            return;
        };
        for app in applications.iter() {
            let Some(workloads) = app.value.get("workloads").and_then(SpannedValue::as_map) else {
                continue;
            };
            for wl in workloads.iter() {
                if let Some(apps) = apps {
                    if let Some(def) = apps.get(&app.key) {
                        for (name, _) in def.defaults_for(&wl.key) {
                            self.defined_vars.insert(name);
                        }
                    }
                }
                if let Some(vars) = wl.value.get("variables").and_then(SpannedValue::as_map) {
                    for entry in vars.iter() {
                        self.defined_vars.insert(entry.key.clone());
                    }
                }
                let Some(exps) = wl.value.get("experiments").and_then(SpannedValue::as_map) else {
                    continue;
                };
                for exp in exps.iter() {
                    if let Some(vars) = exp.value.get("variables").and_then(SpannedValue::as_map) {
                        for entry in vars.iter() {
                            self.defined_vars.insert(entry.key.clone());
                        }
                    }
                }
            }
        }
    }

    /// True when `name` is defined by some scope or is a render-time builtin.
    pub(crate) fn var_defined(&self, name: &str) -> bool {
        self.defined_vars.contains(name) || BUILTIN_VARS.contains(&name)
    }
}

/// Pushes a diagnostic, capturing the source snippet for the span.
pub(crate) fn emit(
    out: &mut Vec<Diagnostic>,
    artifact: &Artifact,
    code: &'static str,
    severity: Severity,
    span: Span,
    message: String,
    help: Option<&str>,
) {
    out.push(Diagnostic {
        code,
        severity,
        message,
        artifact: artifact.name.clone(),
        span: Some(span),
        snippet: artifact.line_text(span).map(|s| s.to_string()),
        help: help.map(|h| h.to_string()),
        notes: Vec::new(),
    });
}

/// Well-formed `{name}` references in a template string (`{{` escapes skipped).
pub(crate) fn refs_in(text: &str) -> Vec<String> {
    let mut refs = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
            }
            '{' => {
                let mut name = String::new();
                for nc in chars.by_ref() {
                    if nc == '}' {
                        break;
                    }
                    name.push(nc);
                }
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    refs.push(name);
                }
            }
            _ => {}
        }
    }
    refs
}

/// The lint engine: holds the package and application repositories the
/// cross-artifact rules validate against.
pub struct Linter {
    pub(crate) repo: Option<Repo>,
    pub(crate) apps: Option<AppRepo>,
    pub(crate) solve: bool,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A linter backed by the builtin package and application repositories.
    pub fn new() -> Linter {
        Linter {
            repo: Some(Repo::builtin()),
            apps: Some(AppRepo::builtin()),
            solve: false,
        }
    }

    /// A linter validating against caller-supplied repositories — used by the
    /// driver so contributed packages and applications are known to the rules.
    pub fn with_repos(repo: Repo, apps: AppRepo) -> Linter {
        Linter {
            repo: Some(repo),
            apps: Some(apps),
            solve: false,
        }
    }

    /// A linter with no repositories: repo-dependent rules (unknown package,
    /// unsatisfiable version, unknown variant) stay silent.
    pub fn bare() -> Linter {
        Linter {
            repo: None,
            apps: None,
            solve: false,
        }
    }

    /// Enables the `BP05xx` solver rules (`benchpark lint --solve`): every
    /// spec in the set is dry-solved against the set's own site configuration
    /// and unsatisfiable specs, dead variants, ambiguous virtual providers,
    /// and conflicting constraint pairs are reported with their justification
    /// chains.
    pub fn with_solve(mut self, solve: bool) -> Linter {
        self.solve = solve;
        self
    }

    /// Runs every rule over the set and returns the sorted report.
    pub fn lint(&self, set: &ArtifactSet) -> LintReport {
        let mut report = LintReport::new();
        report.diagnostics.extend(set.parse_diagnostics.clone());
        let ctx = SetCtx::build(set, self.apps.as_ref());
        let out = &mut report.diagnostics;
        for artifact in &set.artifacts {
            if artifact.kind == ArtifactKind::Unknown {
                out.push(Diagnostic {
                    code: "BP0002",
                    severity: Severity::Note,
                    message: "artifact does not look like any known layer \
                              (ramble / variables / spack / packages / compilers / ci)"
                        .to_string(),
                    artifact: artifact.name.clone(),
                    span: Some(artifact.doc.span),
                    snippet: artifact.line_text(artifact.doc.span).map(|s| s.to_string()),
                    help: None,
                    notes: Vec::new(),
                });
            }
        }
        crate::spack_rules::check(&ctx, self, out);
        crate::ramble_rules::check(&ctx, self, out);
        crate::ci_rules::check(&ctx, out);
        if self.solve {
            crate::solver_rules::check(&ctx, self, out);
        }
        report.finish();
        report
    }
}
