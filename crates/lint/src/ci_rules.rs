//! CI-layer rules (`BP03xx`): stage/needs referential integrity, masking
//! retry/allow_failure combinations, unreachable stages, and dependency
//! cycles the runtime parser cannot see.

use crate::artifact::{Artifact, ArtifactKind};
use crate::diag::{Diagnostic, Severity};
use crate::linter::{emit, SetCtx};
use benchpark_yamlite::{Span, SpannedValue};
use std::collections::{BTreeMap, BTreeSet};

/// One job as the linter sees it: pre-validation, straight from the tree.
struct LintJob<'a> {
    name: &'a str,
    name_span: Span,
    body: &'a SpannedValue,
    stage: Option<(String, Span)>,
    needs: Vec<(String, Span)>,
}

pub(crate) fn check(ctx: &SetCtx<'_>, out: &mut Vec<Diagnostic>) {
    for artifact in ctx.set.of_kind(ArtifactKind::Ci) {
        check_pipeline(artifact, out);
    }
}

const JOB_KEYS: &[&str] = &["script", "stage", "tags", "needs", "retry", "allow_failure"];

fn check_pipeline(artifact: &Artifact, out: &mut Vec<Diagnostic>) {
    let Some(doc) = artifact.doc.as_map() else {
        return;
    };
    let stages: Vec<(String, Span)> = artifact
        .doc
        .get("stages")
        .and_then(|s| s.string_list())
        .unwrap_or_else(|| vec![("test".to_string(), artifact.doc.span)]);
    let stage_index = |name: &str| -> Option<usize> { stages.iter().position(|(s, _)| s == name) };

    let mut jobs: Vec<LintJob<'_>> = Vec::new();
    for entry in doc.iter() {
        if entry.key == "stages" || entry.key.starts_with('.') {
            continue;
        }
        let Some(body) = entry.value.as_map() else {
            continue;
        };
        if !JOB_KEYS.iter().any(|k| body.contains_key(k)) {
            continue;
        }
        jobs.push(LintJob {
            name: &entry.key,
            name_span: entry.key_span,
            body: &entry.value,
            stage: entry
                .value
                .get("stage")
                .and_then(|s| s.as_str().map(|t| (t.to_string(), s.span))),
            needs: entry
                .value
                .get("needs")
                .and_then(|n| n.string_list())
                .unwrap_or_default(),
        });
    }
    let job_names: BTreeSet<&str> = jobs.iter().map(|j| j.name).collect();

    for job in &jobs {
        // BP0307: the runtime parser silently drops script-less entries.
        if job.body.get("script").is_none() {
            emit(
                out,
                artifact,
                "BP0307",
                Severity::Warn,
                job.name_span,
                format!(
                    "job `{}` has no `script:` and will be silently ignored by the runner",
                    job.name
                ),
                Some("add a script, or prefix the name with `.` to mark it as a template"),
            );
        }
        // BP0301: stage must be declared.
        if let Some((stage, span)) = &job.stage {
            if stage_index(stage).is_none() {
                emit(
                    out,
                    artifact,
                    "BP0301",
                    Severity::Error,
                    *span,
                    format!("job `{}` references undeclared stage `{stage}`", job.name),
                    Some("declare the stage in `stages:`"),
                );
            }
        }
        for (need, span) in &job.needs {
            if need == job.name {
                emit(
                    out,
                    artifact,
                    "BP0306",
                    Severity::Error,
                    *span,
                    format!("job `{}` needs itself", job.name),
                    None,
                );
            } else if !job_names.contains(need.as_str()) {
                // BP0302: dangling needs reference.
                emit(
                    out,
                    artifact,
                    "BP0302",
                    Severity::Error,
                    *span,
                    format!("job `{}` needs `{need}`, which does not exist", job.name),
                    None,
                );
            } else if let (Some((my_stage, _)), Some(other)) =
                (&job.stage, jobs.iter().find(|j| j.name == need.as_str()))
            {
                // BP0303: a need on a later stage can never be satisfied.
                if let (Some(mine), Some((other_stage, _))) = (stage_index(my_stage), &other.stage)
                {
                    if let Some(theirs) = stage_index(other_stage) {
                        if theirs > mine {
                            emit(
                                out,
                                artifact,
                                "BP0303",
                                Severity::Error,
                                *span,
                                format!(
                                    "job `{}` (stage `{my_stage}`) needs `{need}` from the \
                                     later stage `{other_stage}`",
                                    job.name
                                ),
                                Some(
                                    "stages run in order; needs may only point backwards \
                                      or sideways",
                                ),
                            );
                        }
                    }
                }
            }
        }
        // BP0304: retries of a job that is allowed to fail mask real breakage.
        let retries = job
            .body
            .get("retry")
            .and_then(SpannedValue::as_int)
            .unwrap_or(0);
        let allow_failure = job
            .body
            .get("allow_failure")
            .and_then(SpannedValue::as_bool)
            .unwrap_or(false);
        if retries > 0 && allow_failure {
            let span = job
                .body
                .get("retry")
                .map(|r| r.span)
                .unwrap_or(job.name_span);
            emit(
                out,
                artifact,
                "BP0304",
                Severity::Warn,
                span,
                format!(
                    "job `{}` combines `retry: {retries}` with `allow_failure: true`; \
                     failures are retried and then ignored",
                    job.name
                ),
                Some("drop one of the two settings"),
            );
        }
    }

    // BP0305: a declared stage no job populates.
    for (stage, span) in &stages {
        let used = jobs
            .iter()
            .any(|j| j.stage.as_ref().map(|(s, _)| s == stage).unwrap_or(false));
        if !used && artifact.doc.get("stages").is_some() {
            emit(
                out,
                artifact,
                "BP0305",
                Severity::Warn,
                *span,
                format!("stage `{stage}` has no jobs"),
                Some("remove the stage or add a job to it"),
            );
        }
    }

    // BP0306: cycles among same-stage needs (the runtime parser only rejects
    // self-needs and forward needs, so these deadlock the scheduler).
    let edges: BTreeMap<&str, Vec<&str>> = jobs
        .iter()
        .map(|j| {
            let same_stage: Vec<&str> = j
                .needs
                .iter()
                .filter(|(need, _)| {
                    need.as_str() != j.name
                        && jobs
                            .iter()
                            .find(|o| o.name == need.as_str())
                            .map(|o| {
                                o.stage.as_ref().map(|(s, _)| s.as_str())
                                    == j.stage.as_ref().map(|(s, _)| s.as_str())
                            })
                            .unwrap_or(false)
                })
                .map(|(need, _)| need.as_str())
                .collect();
            (j.name, same_stage)
        })
        .collect();
    for job in &jobs {
        if let Some(cycle) = find_cycle(job.name, &edges) {
            // Report each cycle once, from its lexicographically first member.
            if cycle.iter().min() == Some(&job.name) {
                emit(
                    out,
                    artifact,
                    "BP0306",
                    Severity::Error,
                    job.name_span,
                    format!("dependency cycle between jobs: {}", cycle.join(" -> ")),
                    Some("break the cycle; these jobs can never start"),
                );
            }
        }
    }
}

/// The cycle through `start`, if following `needs` edges returns to it.
fn find_cycle<'a>(start: &'a str, edges: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<&'a str>> {
    fn dfs<'a>(
        node: &'a str,
        start: &'a str,
        edges: &BTreeMap<&'a str, Vec<&'a str>>,
        path: &mut Vec<&'a str>,
    ) -> bool {
        for next in edges.get(node).into_iter().flatten() {
            if *next == start {
                return true;
            }
            if path.contains(next) {
                continue;
            }
            path.push(next);
            if dfs(next, start, edges, path) {
                return true;
            }
            path.pop();
        }
        false
    }
    let mut path = vec![start];
    if dfs(start, start, edges, &mut path) {
        path.push(start);
        Some(path)
    } else {
        None
    }
}
