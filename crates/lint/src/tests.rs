use crate::{ArtifactSet, Linter, Severity};

fn lint(texts: &[(&str, &str)]) -> crate::LintReport {
    Linter::new().lint(&ArtifactSet::from_texts(texts.iter().copied()))
}

fn codes(report: &crate::LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

fn diag<'a>(report: &'a crate::LintReport, code: &str) -> &'a crate::Diagnostic {
    report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected a {code} diagnostic, got {:?}", codes(report)))
}

const COMPILERS: &str = "compilers:\n- compiler:\n    spec: gcc@12.1.1\n";

#[test]
fn clean_composition_is_clean() {
    let ramble = "\
ramble:
  variables:
    n_ranks: '4'
  applications:
    saxpy:
      workloads:
        problem:
          variables:
            n: ['512', '1024']
          experiments:
            saxpy_{n}_{n_ranks}:
              variables:
                n_nodes: '1'
  spack:
    packages:
      gcc1211:
        spack_spec: gcc@12.1.1
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp
        compiler: gcc1211
    environments:
      saxpy:
        packages:
        - saxpy
";
    let variables = "\
variables:
  mpi_command: 'mpirun -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
";
    let packages = "\
packages:
  mpi:
    externals:
    - spec: mvapich2@2.3.7
      prefix: /usr
    buildable: false
";
    let ci = "\
stages: [build, bench]
build-job:
  stage: build
  script: ['echo build']
bench-job:
  stage: bench
  script: ['echo bench']
  needs: [build-job]
";
    let report = lint(&[
        ("ramble.yaml", ramble),
        ("variables.yaml", variables),
        ("packages.yaml", packages),
        ("compilers.yaml", COMPILERS),
        (".gitlab-ci.yml", ci),
    ]);
    assert!(
        report.is_empty(),
        "expected clean, got:\n{}",
        report.render()
    );
    assert!(report.is_clean(true));
    assert_eq!(report.summary(), "lint: clean");
}

#[test]
fn bp0001_parse_error() {
    let report = lint(&[("bad.yaml", "a: [1\n")]);
    let d = diag(&report, "BP0001");
    assert_eq!(d.severity, Severity::Error);
    assert!(!report.is_clean(false));
}

#[test]
fn bp0002_unrecognized_artifact() {
    let report = lint(&[("mystery.yaml", "foo: 1\n")]);
    let d = diag(&report, "BP0002");
    assert_eq!(d.severity, Severity::Note);
    // notes never fail a run
    assert!(report.is_clean(true));
}

#[test]
fn bp0101_unknown_package() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    ghost:\n      spack_spec: nosuchpkg@1.0\n",
    )]);
    diag(&report, "BP0101");
    // a virtual dependency is not an unknown package
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    hpl:\n      spack_spec: hpl@2.3 ^lapack\n",
    )]);
    assert!(!codes(&report).contains(&"BP0101"), "{}", report.render());
}

#[test]
fn bp0102_unknown_compiler_for_system() {
    // %clang is not in compilers.yaml
    let report = lint(&[
        (
            "spack.yaml",
            "spack:\n  packages:\n    saxpy:\n      spack_spec: saxpy@1.0.0 %clang\n",
        ),
        ("compilers.yaml", COMPILERS),
    ]);
    diag(&report, "BP0102");
    // a compiler-as-package whose version disagrees with the toolchain
    let report = lint(&[
        (
            "spack.yaml",
            "spack:\n  packages:\n    gcc99:\n      spack_spec: gcc@99.0\n",
        ),
        ("compilers.yaml", COMPILERS),
    ]);
    diag(&report, "BP0102");
    // without a compilers.yaml in the set the rule stays silent
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    saxpy:\n      spack_spec: saxpy@1.0.0 %clang\n",
    )]);
    assert!(!codes(&report).contains(&"BP0102"));
}

#[test]
fn bp0103_unsatisfiable_version() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    cm:\n      spack_spec: cmake@9.9.9\n",
    )]);
    let d = diag(&report, "BP0103");
    assert!(d.message.contains("cmake"), "{}", d.message);
    // a series request headed by a known version is satisfiable
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    mpi:\n      spack_spec: mvapich2@2.3.7-gcc12.1.1\n",
    )]);
    assert!(!codes(&report).contains(&"BP0103"), "{}", report.render());
}

#[test]
fn bp0104_unknown_variant() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: saxpy@1.0.0 +hyperdrive\n",
    )]);
    let d = diag(&report, "BP0104");
    assert!(d.message.contains("hyperdrive"));
    assert_eq!(d.span.unwrap().line, 4);
}

#[test]
fn bp0105_conflicting_variants() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: saxpy@1.0.0 +openmp ~openmp\n",
    )]);
    diag(&report, "BP0105");
    // conflicting settings on different nodes are fine
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: saxpy@1.0.0 +openmp ^hypre@2.25.0 ~openmp\n",
    )]);
    assert!(!codes(&report).contains(&"BP0105"));
}

#[test]
fn bp0106_dangling_compiler_ref() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: saxpy@1.0.0\n      compiler: nodef\n",
    )]);
    let d = diag(&report, "BP0106");
    assert!(d.message.contains("nodef"));
    assert_eq!(d.span.unwrap(), crate::Span::new(5, 17));
}

#[test]
fn bp0107_dangling_env_package() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: saxpy@1.0.0\n  environments:\n    e1:\n      packages:\n      - ghost\n",
    )]);
    let d = diag(&report, "BP0107");
    assert!(d.message.contains("ghost"));
    assert_eq!(d.span.unwrap(), crate::Span::new(8, 9));
}

#[test]
fn bp0108_buildable_false_without_externals() {
    let report = lint(&[("packages.yaml", "packages:\n  mpi:\n    buildable: false\n")]);
    diag(&report, "BP0108");
}

#[test]
fn bp0109_invalid_spec() {
    let report = lint(&[(
        "spack.yaml",
        "spack:\n  packages:\n    sx:\n      spack_spec: '((('\n",
    )]);
    diag(&report, "BP0109");
}

#[test]
fn bp0201_unbound_placeholder() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{ghost}:
              variables:
                n_nodes: '1'
",
    )]);
    let d = diag(&report, "BP0201");
    assert!(d.message.contains("ghost"));
    assert_eq!(d.span.unwrap(), crate::Span::new(7, 13));
}

#[test]
fn bp0202_undefined_variable_in_value() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          variables:
            launch: 'mpirun {ghost} {gone}'
          experiments:
            exp_{launch}:
              variables:
                n_nodes: '1'
",
    )]);
    let d = diag(&report, "BP0202");
    assert!(d.message.contains("ghost"));
    assert_eq!(d.span.unwrap(), crate::Span::new(7, 21));
    // both refs are reported
    assert_eq!(codes(&report).iter().filter(|c| **c == "BP0202").count(), 2);
}

#[test]
fn bp0203_unused_workspace_variable() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  variables:
    dead: '42'
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_one:
              variables:
                n_nodes: '1'
",
    )]);
    let d = diag(&report, "BP0203");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("dead"));
    assert_eq!(d.span.unwrap(), crate::Span::new(3, 5));
}

#[test]
fn bp0204_shadowed_variable() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  variables:
    n: '1'
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{n}:
              variables:
                n: '2'
",
    )]);
    let d = diag(&report, "BP0204");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.span.unwrap(), crate::Span::new(11, 17));
}

#[test]
fn bp0205_bad_matrix() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{n}:
              variables:
                n: '5'
              matrices:
              - m1:
                - n
                - ghost
",
    )]);
    let report_codes = codes(&report);
    // `n` is scalar, `ghost` undefined: two findings
    assert_eq!(
        report_codes.iter().filter(|c| **c == "BP0205").count(),
        2,
        "{}",
        report.render()
    );
}

#[test]
fn bp0206_zip_length_mismatch() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{a}:
              variables:
                a: ['1', '2']
                b: ['1', '2', '3']
",
    )]);
    let d = diag(&report, "BP0206");
    assert!(d.message.contains("`a` has 2"));
    assert!(d.message.contains("`b` has 3"));
}

#[test]
fn bp0207_invalid_regex() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          success_criteria:
          - name: done
            mode: string
            match: '(unclosed'
          experiments:
            exp_one:
              variables:
                n_nodes: '1'
",
    )]);
    let d = diag(&report, "BP0207");
    assert_eq!(d.span.unwrap().line, 9);
}

#[test]
fn bp0208_unbound_criterion_file() {
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          success_criteria:
          - name: done
            mode: string
            match: 'DONE'
            file: '{ghost_dir}/out.log'
          experiments:
            exp_one:
              variables:
                n_nodes: '1'
",
    )]);
    let d = diag(&report, "BP0208");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("ghost_dir"));
}

#[test]
fn bp0209_nondiscriminating_template() {
    // matrix variable with two values, never referenced by the template
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{n}:
              variables:
                n: ['1', '2']
                m: ['3', '4']
              matrices:
              - m1:
                - m
",
    )]);
    let d = diag(&report, "BP0209");
    assert!(d.message.contains("`m`"));
    // zip axis with no discriminating reference
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_static:
              variables:
                n: ['1', '2']
",
    )]);
    diag(&report, "BP0209");
    // …but a derived n_ranks reference discriminates the zip
    let report = lint(&[(
        "ramble.yaml",
        "\
ramble:
  applications:
    saxpy:
      workloads:
        problem:
          experiments:
            exp_{n_ranks}:
              variables:
                processes_per_node: '4'
                n_nodes: ['1', '2']
",
    )]);
    assert!(!codes(&report).contains(&"BP0209"), "{}", report.render());
}

#[test]
fn bp0301_unknown_stage() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [build]\nbench:\n  stage: deploy\n  script: ['x']\n",
    )]);
    let d = diag(&report, "BP0301");
    assert_eq!(d.span.unwrap(), crate::Span::new(3, 10));
}

#[test]
fn bp0302_dangling_needs() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [build]\nbench:\n  stage: build\n  script: ['x']\n  needs: [phantom]\n",
    )]);
    let d = diag(&report, "BP0302");
    assert!(d.message.contains("phantom"));
    assert_eq!(d.span.unwrap(), crate::Span::new(5, 11));
}

#[test]
fn bp0303_forward_needs() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "\
stages: [build, bench]
early:
  stage: build
  script: ['x']
  needs: [late]
late:
  stage: bench
  script: ['x']
",
    )]);
    let d = diag(&report, "BP0303");
    assert!(d.message.contains("later stage"));
}

#[test]
fn bp0304_retry_with_allow_failure() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [t]\nflaky:\n  stage: t\n  script: ['x']\n  retry: 2\n  allow_failure: true\n",
    )]);
    let d = diag(&report, "BP0304");
    assert_eq!(d.severity, Severity::Warn);
}

#[test]
fn bp0305_empty_stage() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [build, ghost-stage]\nb:\n  stage: build\n  script: ['x']\n",
    )]);
    let d = diag(&report, "BP0305");
    assert!(d.message.contains("ghost-stage"));
    assert_eq!(d.span.unwrap(), crate::Span::new(1, 17));
}

#[test]
fn bp0306_needs_cycle() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "\
stages: [t]
a:
  stage: t
  script: ['x']
  needs: [b]
b:
  stage: t
  script: ['x']
  needs: [a]
",
    )]);
    let d = diag(&report, "BP0306");
    assert!(d.message.contains("a -> b -> a"), "{}", d.message);
    // exactly one report per cycle
    assert_eq!(codes(&report).iter().filter(|c| **c == "BP0306").count(), 1);
    // self-needs are also cycles
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [t]\na:\n  stage: t\n  script: ['x']\n  needs: [a]\n",
    )]);
    diag(&report, "BP0306");
}

#[test]
fn bp0307_script_less_job() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [t]\nreal:\n  stage: t\n  script: ['x']\nghost:\n  stage: t\n",
    )]);
    let d = diag(&report, "BP0307");
    assert!(d.message.contains("ghost"));
    // dotted names are templates by convention and exempt
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [t]\n.tmpl:\n  stage: t\nreal:\n  stage: t\n  script: ['x']\n",
    )]);
    assert!(!codes(&report).contains(&"BP0307"));
}

#[test]
fn rendered_output_is_rustc_style() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [build]\nbench:\n  stage: deploy\n  script: ['x']\n",
    )]);
    let text = report.render();
    assert!(text.contains("error[BP0301]"), "{text}");
    assert!(text.contains("--> .gitlab-ci.yml:3:10"), "{text}");
    assert!(text.contains("3 |   stage: deploy"), "{text}");
    assert!(text.contains("lint: 1 error"), "{text}");
}

#[test]
fn json_output_carries_spans() {
    let report = lint(&[(
        ".gitlab-ci.yml",
        "stages: [build]\nbench:\n  stage: deploy\n  script: ['x']\n",
    )]);
    let json = report.to_json();
    assert!(json.contains("\"code\": \"BP0301\""), "{json}");
    assert!(json.contains("\"line\": 3, \"col\": 10"), "{json}");
    assert!(json.contains("\"errors\": 1"), "{json}");
}

#[test]
fn registry_covers_every_emitted_code() {
    use std::collections::BTreeSet;
    let table: BTreeSet<&str> = crate::RULES.iter().map(|r| r.code).collect();
    assert_eq!(
        table.len(),
        crate::RULES.len(),
        "duplicate codes in registry"
    );
    for code in table {
        assert!(
            code.starts_with("BP") && code.len() == 6,
            "malformed code {code}"
        );
    }
    assert!(crate::rule("BP0301").is_some());
    assert!(crate::rule("BP9999").is_none());
}

#[test]
fn report_sorting_is_deterministic() {
    let report = lint(&[
        (
            "b.yaml",
            "spack:\n  packages:\n    x:\n      spack_spec: nosuchpkg@1.0\n",
        ),
        (
            "a.yaml",
            "spack:\n  packages:\n    y:\n      spack_spec: alsomissing@1.0\n",
        ),
    ]);
    let artifacts: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.artifact.as_str())
        .collect();
    assert_eq!(artifacts, vec!["a.yaml", "b.yaml"]);
}
