//! The artifact model: parsed-but-not-executed configuration files, grouped
//! into the set that composes one workspace or pipeline.

use crate::diag::{Diagnostic, Severity};
use benchpark_yamlite::{parse_spanned, Span, SpannedValue};

/// What layer of the stack an artifact belongs to, decided from its content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `ramble:` — a Ramble workspace configuration (Figure 10).
    Ramble,
    /// `variables:` — scheduler/launcher variables (Figure 12).
    Variables,
    /// `spack:` with named package definitions (Figure 9).
    SpackConfig,
    /// `spack:` environment manifest with a `specs:` list (Figure 3).
    SpackEnv,
    /// `packages:` — system packages/externals (Figure 4).
    Packages,
    /// `compilers:` — system compiler toolchains.
    Compilers,
    /// A `.gitlab-ci.yml`-style pipeline: `stages:` plus job mappings.
    Ci,
    /// Anything the classifier does not recognize.
    Unknown,
}

impl ArtifactKind {
    /// The human label used in diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            ArtifactKind::Ramble => "ramble workspace config",
            ArtifactKind::Variables => "system variables config",
            ArtifactKind::SpackConfig => "spack package definitions",
            ArtifactKind::SpackEnv => "spack environment manifest",
            ArtifactKind::Packages => "system packages config",
            ArtifactKind::Compilers => "system compilers config",
            ArtifactKind::Ci => "ci pipeline",
            ArtifactKind::Unknown => "unrecognized artifact",
        }
    }
}

/// One parsed configuration file: its name, source lines (for snippets), kind,
/// and the span-carrying document tree.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Display name (file name or synthetic label).
    pub name: String,
    /// The source split into lines, for diagnostic snippets.
    pub lines: Vec<String>,
    /// The classified layer.
    pub kind: ArtifactKind,
    /// The parsed document.
    pub doc: SpannedValue,
}

impl Artifact {
    /// The source line a span points into, if any.
    pub fn line_text(&self, span: Span) -> Option<&str> {
        self.lines
            .get(span.line.wrapping_sub(1))
            .map(|s| s.as_str())
    }
}

/// Classifies a parsed document by its top-level structure.
fn classify(doc: &SpannedValue, name: &str) -> ArtifactKind {
    let Some(map) = doc.as_map() else {
        return ArtifactKind::Unknown;
    };
    if map.contains_key("ramble") {
        return ArtifactKind::Ramble;
    }
    if map.contains_key("variables") {
        return ArtifactKind::Variables;
    }
    if let Some(spack) = map.get("spack") {
        let has_defs = spack
            .as_map()
            .map(|m| m.contains_key("packages") || m.contains_key("environments"))
            .unwrap_or(false);
        let looks_like_defs = spack
            .get("packages")
            .and_then(SpannedValue::as_map)
            .map(|pkgs| pkgs.iter().any(|e| e.value.get("spack_spec").is_some()))
            .unwrap_or(false);
        if looks_like_defs || (has_defs && spack.get("specs").is_none()) {
            return ArtifactKind::SpackConfig;
        }
        return ArtifactKind::SpackEnv;
    }
    if map.contains_key("packages") {
        return ArtifactKind::Packages;
    }
    if map.contains_key("compilers") {
        return ArtifactKind::Compilers;
    }
    let job_like = map.iter().any(|e| {
        e.value
            .as_map()
            .map(|m| m.contains_key("script") || m.contains_key("stage"))
            .unwrap_or(false)
    });
    if map.contains_key("stages") || name.contains("gitlab-ci") || job_like {
        return ArtifactKind::Ci;
    }
    ArtifactKind::Unknown
}

/// The artifacts composing one workspace or pipeline, linted together so
/// cross-artifact references (Table 1's independent axes) can be validated.
#[derive(Debug, Clone, Default)]
pub struct ArtifactSet {
    /// Successfully parsed artifacts.
    pub artifacts: Vec<Artifact>,
    /// Parse failures, already converted to `BP0001` diagnostics.
    pub parse_diagnostics: Vec<Diagnostic>,
}

impl ArtifactSet {
    /// An empty set.
    pub fn new() -> ArtifactSet {
        ArtifactSet::default()
    }

    /// Parses and classifies one artifact text. A parse failure becomes a
    /// `BP0001` diagnostic instead of aborting the set.
    pub fn add(&mut self, name: &str, text: &str) {
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        match parse_spanned(text) {
            Ok(doc) => {
                let kind = classify(&doc, name);
                self.artifacts.push(Artifact {
                    name: name.to_string(),
                    lines,
                    kind,
                    doc,
                });
            }
            Err(e) => {
                let span = Span::new(e.line, 1);
                let snippet = lines.get(e.line.wrapping_sub(1)).cloned();
                self.parse_diagnostics.push(Diagnostic {
                    code: "BP0001",
                    severity: Severity::Error,
                    message: format!("could not parse artifact: {}", e.message),
                    artifact: name.to_string(),
                    span: Some(span),
                    snippet,
                    help: None,
                    notes: Vec::new(),
                });
            }
        }
    }

    /// Builds a set from `(name, text)` pairs.
    pub fn from_texts<'a>(texts: impl IntoIterator<Item = (&'a str, &'a str)>) -> ArtifactSet {
        let mut set = ArtifactSet::new();
        for (name, text) in texts {
            set.add(name, text);
        }
        set
    }

    /// All artifacts of a kind.
    pub fn of_kind(&self, kind: ArtifactKind) -> impl Iterator<Item = &Artifact> {
        self.artifacts.iter().filter(move |a| a.kind == kind)
    }
}
