//! Spack-layer rules (`BP01xx`): spec well-formedness, package/variant/version
//! existence against the builtin repo, and cross-references between package
//! definitions, environments, externals, and the system compiler toolchains.

use crate::artifact::{Artifact, ArtifactKind};
use crate::diag::{Diagnostic, Severity};
use crate::linter::{emit, Linter, SetCtx};
use benchpark_spec::{Spec, Version, VersionConstraint};
use benchpark_yamlite::{Span, SpannedValue};

pub(crate) fn check(ctx: &SetCtx<'_>, linter: &Linter, out: &mut Vec<Diagnostic>) {
    for artifact in &ctx.set.artifacts {
        match artifact.kind {
            ArtifactKind::SpackConfig => {
                check_spack_section(artifact, artifact.doc.get("spack"), ctx, linter, out);
            }
            ArtifactKind::Ramble => {
                let spack = artifact.doc.get("ramble").and_then(|r| r.get("spack"));
                check_spack_section(artifact, spack, ctx, linter, out);
            }
            ArtifactKind::SpackEnv => {
                let specs = artifact.doc.get("spack").and_then(|s| s.get("specs"));
                if let Some(list) = specs.and_then(|s| s.string_list()) {
                    for (text, span) in list {
                        check_spec(artifact, span, &text, ctx, linter, out);
                    }
                }
            }
            ArtifactKind::Packages => check_packages(artifact, ctx, linter, out),
            _ => {}
        }
    }
}

/// Rules over a `spack:` section holding named package definitions and
/// environments (Figure 9 of the paper).
fn check_spack_section(
    artifact: &Artifact,
    spack: Option<&SpannedValue>,
    ctx: &SetCtx<'_>,
    linter: &Linter,
    out: &mut Vec<Diagnostic>,
) {
    let Some(spack) = spack else { return };
    if let Some(pkgs) = spack.get("packages").and_then(SpannedValue::as_map) {
        for entry in pkgs.iter() {
            if let Some(spec_val) = entry.value.get("spack_spec") {
                if let Some(text) = spec_val.as_str() {
                    check_spec(artifact, spec_val.span, text, ctx, linter, out);
                }
            }
            if let Some(comp) = entry.value.get("compiler") {
                if let Some(name) = comp.as_str() {
                    if !ctx.package_defs.contains(name) {
                        emit(
                            out,
                            artifact,
                            "BP0106",
                            Severity::Error,
                            comp.span,
                            format!(
                                "package definition `{}` references compiler definition \
                                 `{name}`, which is not defined in any spack section",
                                entry.key
                            ),
                            Some("define it under `spack: packages:` or fix the name"),
                        );
                    }
                }
            }
        }
    }
    if let Some(envs) = spack.get("environments").and_then(SpannedValue::as_map) {
        for env in envs.iter() {
            let Some(list) = env.value.get("packages").and_then(|p| p.string_list()) else {
                continue;
            };
            for (name, span) in list {
                if !ctx.package_defs.contains(&name) {
                    emit(
                        out,
                        artifact,
                        "BP0107",
                        Severity::Error,
                        span,
                        format!(
                            "environment `{}` lists package definition `{name}`, \
                             which is not defined in any spack section",
                            env.key
                        ),
                        Some("every environment entry must name a `spack: packages:` definition"),
                    );
                }
            }
        }
    }
}

/// Rules over a system `packages.yaml`: external specs must parse, and a
/// package marked `buildable: false` must supply at least one external.
fn check_packages(
    artifact: &Artifact,
    ctx: &SetCtx<'_>,
    linter: &Linter,
    out: &mut Vec<Diagnostic>,
) {
    let Some(pkgs) = artifact.doc.get("packages").and_then(SpannedValue::as_map) else {
        return;
    };
    for entry in pkgs.iter() {
        let externals = entry.value.get("externals").and_then(SpannedValue::as_seq);
        if let Some(externals) = externals {
            for ext in externals {
                if let Some(spec_val) = ext.get("spec") {
                    if let Some(text) = spec_val.as_str() {
                        check_spec(artifact, spec_val.span, text, ctx, linter, out);
                    }
                }
            }
        }
        let buildable = entry.value.get("buildable").and_then(SpannedValue::as_bool);
        if buildable == Some(false) && externals.map(|e| e.is_empty()).unwrap_or(true) {
            let span = entry
                .value
                .get("buildable")
                .map(|b| b.span)
                .unwrap_or(entry.key_span);
            emit(
                out,
                artifact,
                "BP0108",
                Severity::Error,
                span,
                format!(
                    "package `{}` is marked `buildable: false` but provides no externals, \
                     so no install can ever satisfy it",
                    entry.key
                ),
                Some("add an `externals:` entry or drop `buildable: false`"),
            );
        }
    }
}

/// All spec-text rules for one spec site: parse (BP0109), conflicting variant
/// settings (BP0105), unknown packages (BP0101), unsatisfiable versions
/// (BP0103), unknown variants (BP0104), and compiler cross-checks (BP0102).
fn check_spec(
    artifact: &Artifact,
    span: Span,
    text: &str,
    ctx: &SetCtx<'_>,
    linter: &Linter,
    out: &mut Vec<Diagnostic>,
) {
    // Conflicting variant settings are detected textually, before parsing:
    // the spec parser may reject them outright, and pointing at the real
    // conflict beats a generic parse error.
    let mut conflicted = false;
    for node_text in text.split('^') {
        let settings = variant_settings(node_text);
        for (i, (name, value)) in settings.iter().enumerate() {
            if settings[..i].iter().any(|(n, v)| n == name && v != value) {
                conflicted = true;
                emit(
                    out,
                    artifact,
                    "BP0105",
                    Severity::Error,
                    span,
                    format!(
                        "variant `{name}` is set more than once with conflicting values \
                         in `{}`",
                        node_text.trim()
                    ),
                    Some("keep a single setting per variant"),
                );
            }
        }
    }
    let spec: Spec = match text.parse() {
        Ok(s) => s,
        Err(e) => {
            if !conflicted {
                emit(
                    out,
                    artifact,
                    "BP0109",
                    Severity::Error,
                    span,
                    format!("invalid spec `{text}`: {e}"),
                    None,
                );
            }
            return;
        }
    };
    check_spec_node(artifact, span, &spec, ctx, linter, out);
}

/// Per-node repo checks, recursing into `^` dependencies.
fn check_spec_node(
    artifact: &Artifact,
    span: Span,
    spec: &Spec,
    ctx: &SetCtx<'_>,
    linter: &Linter,
    out: &mut Vec<Diagnostic>,
) {
    if let (Some(name), Some(repo)) = (spec.name.as_deref(), linter.repo.as_ref()) {
        if repo.get(name).is_none() && !repo.is_virtual(name) {
            emit(
                out,
                artifact,
                "BP0101",
                Severity::Error,
                span,
                format!("unknown package `{name}`: not in the package repository"),
                Some("check the spelling against `Repo::builtin()` package names"),
            );
        } else if let Some(def) = repo.get(name) {
            let external = ctx.external_pkgs.contains(name)
                || ctx.compiler_entries.iter().any(|(n, _)| n == name);
            if !external
                && !spec.versions.is_any()
                && !def
                    .versions
                    .iter()
                    .any(|v| version_admits(&spec.versions, v))
            {
                let known: Vec<String> = def.versions.iter().map(|v| v.to_string()).collect();
                emit(
                    out,
                    artifact,
                    "BP0103",
                    Severity::Error,
                    span,
                    format!(
                        "no known version of `{name}` satisfies `@{}`",
                        spec.versions
                    ),
                    Some(&format!("known versions: {}", known.join(", "))),
                );
            }
            for variant in spec.variants.keys() {
                if !def.has_variant(variant) {
                    emit(
                        out,
                        artifact,
                        "BP0104",
                        Severity::Error,
                        span,
                        format!("package `{name}` has no variant `{variant}`"),
                        None,
                    );
                }
            }
        }
        // A compiler named as a package (e.g. `gcc@12.1.1`) must agree with
        // the system's compilers.yaml when one is part of the set.
        if ctx.has_compilers_yaml && ctx.compiler_entries.iter().any(|(n, _)| n == name) {
            check_compiler_versions(artifact, span, name, &spec.versions, "package", ctx, out);
        }
    }
    if let Some(compiler) = &spec.compiler {
        if ctx.has_compilers_yaml {
            let known = ctx
                .compiler_entries
                .iter()
                .any(|(n, _)| n == &compiler.name);
            if !known {
                emit(
                    out,
                    artifact,
                    "BP0102",
                    Severity::Error,
                    span,
                    format!(
                        "compiler `%{}` is not declared in this system's compilers.yaml",
                        compiler.name
                    ),
                    Some("use one of the toolchains listed in compilers.yaml"),
                );
            } else {
                check_compiler_versions(
                    artifact,
                    span,
                    &compiler.name,
                    &compiler.versions,
                    "compiler",
                    ctx,
                    out,
                );
            }
        }
    }
    for dep in spec.dependencies.values() {
        check_spec_node(artifact, span, dep, ctx, linter, out);
    }
}

/// BP0102 version half: some compilers.yaml entry for `name` must admit the
/// requested constraint.
fn check_compiler_versions(
    artifact: &Artifact,
    span: Span,
    name: &str,
    constraint: &VersionConstraint,
    what: &str,
    ctx: &SetCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    if constraint.is_any() {
        return;
    }
    let versions: Vec<&str> = ctx
        .compiler_entries
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect();
    let ok = versions
        .iter()
        .any(|v| v.is_empty() || version_admits(constraint, &Version::new(v)));
    if !ok {
        emit(
            out,
            artifact,
            "BP0102",
            Severity::Error,
            span,
            format!(
                "{what} `{name}@{constraint}` does not match any compilers.yaml toolchain \
                 (available: {})",
                versions.join(", ")
            ),
            Some("align the version with the system's compilers.yaml"),
        );
    }
}

/// Whether a concrete repo/toolchain version can satisfy a constraint,
/// treating the repo version as the head of its prefix series (so `@2.3.7`
/// in the repo admits a request for `@2.3.7-gcc12.1.1`).
fn version_admits(constraint: &VersionConstraint, v: &Version) -> bool {
    constraint.contains(v) || constraint.intersects(&VersionConstraint::series(v.clone()))
}

/// Textual variant settings in one spec node: `+name` / `~name` toggles and
/// `name=value` assignments, in source order.
fn variant_settings(node: &str) -> Vec<(String, String)> {
    let mut settings = Vec::new();
    let chars: Vec<char> = node.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '+' || c == '~' {
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len()
                && (chars[j].is_ascii_alphanumeric() || chars[j] == '_' || chars[j] == '-')
            {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty() {
                let value = if c == '+' { "enabled" } else { "disabled" };
                settings.push((name, value.to_string()));
            }
            i = j;
        } else {
            i += 1;
        }
    }
    for word in node.split_whitespace() {
        if word.starts_with('+') || word.starts_with('~') || word.starts_with('%') {
            continue;
        }
        if let Some(eq) = word.find('=') {
            let name = &word[..eq];
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                settings.push((name.to_string(), word[eq + 1..].to_string()));
            }
        }
    }
    settings
}
