//! The diagnostics model: codes, severities, spans, and rendering.

use benchpark_yamlite::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The composition will fail (at setup, concretization, or execution).
    Error,
    /// Suspicious but not fatal; `--deny warnings` promotes these.
    Warn,
    /// Informational.
    Note,
}

impl Severity {
    /// The lowercase label used in rendered output (`error` / `warning` /
    /// `note`).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: a stable `BP####` code, a message, and where it points.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule code (`BP0101`, …). Documented in `docs/LINT.md`.
    pub code: &'static str,
    /// Severity the rule fired at.
    pub severity: Severity,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Name of the artifact (file) the diagnostic is in, e.g. `ramble.yaml`.
    pub artifact: String,
    /// 1-based line/column the diagnostic points at, when known.
    pub span: Option<Span>,
    /// The offending source line, captured at emit time.
    pub snippet: Option<String>,
    /// An optional `help:` line suggesting the fix.
    pub help: Option<String>,
    /// Additional `= note:` lines — the solver rules put justification
    /// chains here so an unsat finding explains *why* (rustc-style).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Renders this diagnostic in rustc style:
    ///
    /// ```text
    /// error[BP0301]: job `bench` references unknown stage `deploy`
    ///   --> .gitlab-ci.yml:7:10
    ///    |
    ///  7 |   stage: deploy
    ///    |          ^
    ///    = help: declare the stage in `stages:`
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity.label(),
            self.code,
            self.message
        );
        match self.span {
            Some(span) => {
                out.push_str(&format!(
                    "  --> {}:{}:{}\n",
                    self.artifact, span.line, span.col
                ));
                if let Some(snippet) = &self.snippet {
                    let no = span.line.to_string();
                    let pad = " ".repeat(no.len());
                    out.push_str(&format!("{pad} |\n"));
                    out.push_str(&format!("{no} | {snippet}\n"));
                    let caret_pad = " ".repeat(span.col.saturating_sub(1));
                    out.push_str(&format!("{pad} | {caret_pad}^\n"));
                }
            }
            None => out.push_str(&format!("  --> {}\n", self.artifact)),
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }
}

/// The outcome of a lint pass: every diagnostic, sorted for determinism.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (artifact, line, col, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Sorts diagnostics into the deterministic presentation order.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let ka = (
                a.artifact.as_str(),
                a.span.map(|s| (s.line, s.col)).unwrap_or((0, 0)),
                a.code,
            );
            let kb = (
                b.artifact.as_str(),
                b.span.map(|s| (s.line, s.col)).unwrap_or((0, 0)),
                b.code,
            );
            ka.cmp(&kb)
        });
    }

    /// Number of `Error` diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn` diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when the report holds no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when nothing would fail the run: no errors (and, with
    /// `deny_warnings`, no warnings either).
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders every diagnostic plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary (`2 errors, 1 warning` / `clean`).
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "lint: clean".to_string();
        }
        let notes = self.count(Severity::Note);
        let mut parts = Vec::new();
        for (n, name) in [
            (self.errors(), "error"),
            (self.warnings(), "warning"),
            (notes, "note"),
        ] {
            if n > 0 {
                parts.push(format!("{n} {name}{}", if n == 1 { "" } else { "s" }));
            }
        }
        format!("lint: {}", parts.join(", "))
    }

    /// Renders the report as a JSON document (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": {}, ", json_str(d.code)));
            out.push_str(&format!("\"severity\": {}, ", json_str(d.severity.label())));
            out.push_str(&format!("\"artifact\": {}, ", json_str(&d.artifact)));
            match d.span {
                Some(s) => out.push_str(&format!("\"line\": {}, \"col\": {}, ", s.line, s.col)),
                None => out.push_str("\"line\": null, \"col\": null, "),
            }
            match &d.help {
                Some(h) => out.push_str(&format!("\"help\": {}, ", json_str(h))),
                None => out.push_str("\"help\": null, "),
            }
            out.push_str("\"notes\": [");
            for (j, note) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(note));
            }
            out.push_str("], ");
            out.push_str(&format!("\"message\": {}", json_str(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
