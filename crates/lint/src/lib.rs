//! `benchpark-lint` — cross-artifact static analysis for the benchmarking
//! stack.
//!
//! The paper's central observation is that a benchmarking campaign is
//! assembled from *independent, composable artifacts* — Spack package
//! definitions and environments, system `packages.yaml` / `compilers.yaml`
//! profiles, Ramble workspace configurations, and CI pipeline definitions
//! (Table 1). Composition is exactly where campaigns break: a workspace
//! references a variable only some other file defines, a spec requests a
//! compiler the target system does not ship, a pipeline job needs a stage
//! that never runs. Each mistake is cheap to detect *statically* — before
//! any allocation is burned on a doomed run — but only by analyzing the
//! artifacts **together**.
//!
//! This crate parses (but does not execute) an [`ArtifactSet`], classifies
//! each artifact by layer, and runs a registry of cross-artifact rules over
//! the whole set. Findings are [`Diagnostic`]s with stable `BP####` codes,
//! severities, and 1-based line/column [`Span`]s into the originating file,
//! rendered rustc-style or as JSON:
//!
//! ```text
//! error[BP0301]: job `bench` references undeclared stage `deploy`
//!   --> .gitlab-ci.yml:7:10
//!    |
//!  7 |   stage: deploy
//!    |          ^
//!   = help: declare the stage in `stages:`
//! ```
//!
//! The rule catalogue lives in [`registry::RULES`] and is documented in
//! `docs/LINT.md`. Codes are grouped by layer: `BP00xx` artifact-level,
//! `BP01xx` Spack, `BP02xx` Ramble, `BP03xx` CI, and `BP05xx` solver-backed
//! rules (dry-concretization, enabled with [`Linter::with_solve`]).

#![deny(missing_docs)]

mod artifact;
mod ci_rules;
mod diag;
mod linter;
mod ramble_rules;
pub mod registry;
mod solver_rules;
mod spack_rules;

pub use artifact::{Artifact, ArtifactKind, ArtifactSet};
pub use benchpark_yamlite::Span;
pub use diag::{Diagnostic, LintReport, Severity};
pub use linter::{Linter, BUILTIN_VARS};
pub use registry::{rule, RuleInfo, RULES};

#[cfg(test)]
mod tests;
