//! Experiment F6 / ablation A2: the Figure 6 automation loop, measuring the
//! binary cache's effect — a cold pipeline builds everything from source; a
//! warm pipeline (rolling cache, §7.2) fetches.

use benchpark_ci::{run_pipeline, BenchparkExecutor, Lab, Repository};
use benchpark_cluster::{Cluster, Machine};
use benchpark_core::SystemProfile;
use benchpark_pkg::Repo;
use benchpark_spack::InstallDatabase;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CI_CONFIG: &str = "stages:\n  - build\n  - bench\nbuild:\n  stage: build\n  script:\n    - spack install amg2023+caliper\nbench:\n  stage: bench\n  script:\n    - submit cts1 ci/amg.sbatch\n";

const BENCH_SCRIPT: &str =
    "#SBATCH -N 1\n#SBATCH -n 8\nsrun -n 8 amg -P 2 2 2 -n 64 64 64 -problem 1\n";

fn source_repo() -> Repository {
    let mut repo = Repository::init("llnl/benchpark");
    repo.commit(
        "main",
        "olga",
        "ci",
        &[
            (".gitlab-ci.yml", CI_CONFIG),
            ("ci/amg.sbatch", BENCH_SCRIPT),
        ],
    )
    .unwrap();
    repo
}

/// Runs one pipeline; returns the virtual build makespan parsed from the log.
fn run_once(executor: &mut BenchparkExecutor<'_>, tag: u64) -> f64 {
    let mut lab = Lab::new();
    let id = lab
        .receive_mirror(&source_repo(), "main", &format!("pr-{tag}"))
        .unwrap();
    run_pipeline(&mut lab, id, "olga", executor).unwrap();
    let p = lab.pipeline(id).unwrap();
    assert_eq!(
        p.state(),
        benchpark_ci::PipelineState::Success,
        "{:#?}",
        p.jobs
    );
    // "installed N packages in X virtual seconds"
    p.jobs[0]
        .log
        .lines()
        .find(|l| l.contains("virtual seconds"))
        .and_then(|l| l.split_whitespace().nth(4))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

fn report() {
    println!("\n========= Experiment F6 / Ablation A2: CI binary cache =========\n");
    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SystemProfile::cts1().site_config());
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));

    let cold = run_once(&mut executor, 1);
    executor.db = InstallDatabase::new(); // fresh builder machine, warm cache
    let warm = run_once(&mut executor, 2);
    let (hits, misses, pushes) = executor.cache.stats();
    println!("pipeline        virtual build seconds");
    println!("cold (source)   {cold:>12.1}");
    println!("warm (cache)    {warm:>12.1}");
    println!("speedup         {:>12.1}x", cold / warm.max(1e-9));
    println!("cache: {hits} hits / {misses} misses / {pushes} pushes\n");
    assert!(warm * 5.0 < cold, "cache must be much faster");
}

fn bench(c: &mut Criterion) {
    report();
    let pkg_repo = Repo::builtin();

    c.bench_function("ci/pipeline_cold_cache", |b| {
        let mut i = 100u64;
        b.iter(|| {
            // fresh executor each time: cold cache, cold DB
            let mut executor =
                BenchparkExecutor::new(&pkg_repo, SystemProfile::cts1().site_config());
            executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
            i += 1;
            black_box(run_once(&mut executor, i))
        })
    });

    c.bench_function("ci/pipeline_warm_cache", |b| {
        // shared executor: cache warms on the first iteration
        let mut executor = BenchparkExecutor::new(&pkg_repo, SystemProfile::cts1().site_config());
        executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
        let mut i = 10_000u64;
        run_once(&mut executor, i);
        b.iter(|| {
            executor.db = InstallDatabase::new();
            i += 1;
            black_box(run_once(&mut executor, i))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
