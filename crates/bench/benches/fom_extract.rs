//! Experiment A5: figure-of-merit extraction throughput — the rex engine
//! scanning benchmark logs with Figure 8's patterns (the hot loop of
//! `ramble workspace analyze` when thousands of experiments report).

use benchpark_rex::Regex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Builds a synthetic AMG-style log of `lines` lines with FOMs sprinkled in.
fn synthetic_log(lines: usize) -> String {
    let mut out = String::new();
    for i in 0..lines {
        match i % 8 {
            0 => out.push_str("iteration residual 1.0e-05 cycle v\n"),
            1 => out.push_str(&format!(
                "Solve phase time: {}.{:03} seconds\n",
                i % 97,
                i % 1000
            )),
            2 => out.push_str(&format!("Figure of Merit (FOM_Solve): {}.4e8\n", i % 9 + 1)),
            3 => out.push_str("Kernel done\n"),
            _ => out.push_str("some unrelated progress output with numbers 123 456\n"),
        }
    }
    out
}

fn report() {
    println!("\n============== Experiment A5: FOM extraction ==============\n");
    let log = synthetic_log(10_000);
    let re = Regex::new(r"Figure of Merit \(FOM_Solve\): (?P<fom>[0-9.e+-]+)").unwrap();
    let count = log.lines().filter(|l| re.captures(l).is_some()).count();
    println!(
        "10k-line log: {count} FOM_Solve matches extracted ({} bytes scanned)\n",
        log.len()
    );
}

fn bench(c: &mut Criterion) {
    report();
    let fom_re = Regex::new(r"Figure of Merit \(FOM_Solve\): (?P<fom>[0-9.e+-]+)").unwrap();
    let success_re = Regex::new(r"(?P<done>Kernel done)").unwrap();
    let time_re = Regex::new(r"Solve phase time: (?P<t>[0-9.e+-]+) seconds").unwrap();

    let mut group = c.benchmark_group("fom_extract");
    for lines in [1_000usize, 10_000] {
        let log = synthetic_log(lines);
        group.throughput(Throughput::Bytes(log.len() as u64));
        group.bench_with_input(BenchmarkId::new("three_patterns", lines), &log, |b, log| {
            b.iter(|| {
                let mut foms = 0usize;
                for line in log.lines() {
                    if let Some(c) = fom_re.captures(line) {
                        black_box(c.name("fom"));
                        foms += 1;
                    }
                    if success_re.is_match(line) {
                        foms += 1;
                    }
                    if let Some(c) = time_re.captures(line) {
                        black_box(c.name("t"));
                        foms += 1;
                    }
                }
                black_box(foms)
            })
        });
    }
    group.finish();

    c.bench_function("fom_extract/compile_fig8_regex", |b| {
        b.iter(|| black_box(Regex::new(r"(?P<done>Kernel done)").unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
