//! Experiment F14 (+ ablation A4): regenerates Figure 14 — the Extra-P
//! model of MPI_Bcast on the CTS architecture — for the linear broadcast
//! (the paper's `c + a·p¹` form) and the binomial-tree ablation, then
//! benchmarks the model-fitting and scaling-study machinery.

use benchpark_cluster::BcastAlgorithm;
use benchpark_core::{scaling, MetricsDatabase};
use benchpark_perf::extrap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_fig14() -> Vec<(f64, f64)> {
    println!("\n================= Experiment F14: Figure 14 =================\n");
    let db = MetricsDatabase::new();
    let linear = scaling::bcast_scaling_study(
        "cts1",
        None,
        benchpark_bench::bench_dir("fig14-linear"),
        &db,
    )
    .expect("study runs");
    print!("{}", linear.render());
    println!("\npaper:  -0.6355857931034596 + 0.04660217702356169 * p^(1)");
    println!("ours:   {}\n", linear.model);
    assert_eq!(
        (linear.model.i, linear.model.j),
        (1.0, 0),
        "shape must match the paper"
    );

    println!("----- ablation A4: binomial-tree broadcast -----\n");
    let tree = scaling::bcast_scaling_study(
        "cts1",
        Some(BcastAlgorithm::BinomialTree),
        benchpark_bench::bench_dir("fig14-tree"),
        &db,
    )
    .expect("ablation runs");
    print!("{}", tree.render());
    assert_eq!(
        (tree.model.i, tree.model.j),
        (0.0, 1),
        "tree must fit log2(p)"
    );
    println!();
    linear.points
}

fn bench(c: &mut Criterion) {
    let points = regenerate_fig14();

    c.bench_function("fig14/extrap_fit_8_points", |b| {
        b.iter(|| black_box(extrap::fit(black_box(&points)).unwrap()))
    });

    let many: Vec<(f64, f64)> = (1..=200)
        .map(|i| {
            let p = (i * 16) as f64;
            (p, -0.64 + 0.0466 * p)
        })
        .collect();
    c.bench_function("fig14/extrap_fit_200_points", |b| {
        b.iter(|| black_box(extrap::fit(black_box(&many)).unwrap()))
    });

    c.bench_function("fig14/full_scaling_study", |b| {
        let db = MetricsDatabase::new();
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let dir = benchpark_bench::bench_dir(&format!("fig14-bench-{i}"));
            black_box(scaling::bcast_scaling_study("cts1", None, dir, &db).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
