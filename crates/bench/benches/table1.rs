//! Experiment T1: regenerates Table 1 (the component matrix) and validates
//! that every cell maps to an implemented module, then benchmarks the
//! component registry + render path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_table1() {
    println!("\n================= Experiment T1: Table 1 =================\n");
    println!("{}", benchpark_core::render_table1());
    // cross-check: the implementing registries actually populate
    assert!(benchpark_pkg::Repo::builtin().len() >= 20);
    assert!(benchpark_pkg::AppRepo::builtin().len() >= 5);
    assert_eq!(benchpark_core::SystemProfile::all().len(), 4);
    assert_eq!(benchpark_core::table1().len(), 6);
    println!("all 6 components verified against implemented modules\n");
}

fn bench(c: &mut Criterion) {
    regenerate_table1();
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(benchpark_core::render_table1()))
    });
    c.bench_function("table1/repo_builtin", |b| {
        b.iter(|| black_box(benchpark_pkg::Repo::builtin().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
