//! Ablation A3: scheduler policy — conservative backfill vs. FIFO.
//!
//! The scenario that separates the policies: a long 1-node job is running, a
//! machine-wide job waits behind it at the head of the queue, and a stream
//! of short benchmark jobs arrives. FIFO makes the short jobs wait for the
//! wide job; backfill runs them in the wide job's shadow on the idle nodes.
//! Continuous benchmarking is exactly such a stream of short filler jobs.

use benchpark_cluster::{Cluster, Machine, SchedulerPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct MixOutcome {
    makespan: f64,
    mean_filler_wait: f64,
    utilization: f64,
}

fn run_mix(policy: SchedulerPolicy) -> MixOutcome {
    let mut cluster = Cluster::with_policy(Machine::ats4(), policy);
    // blocker: one node, runs for a while (big single-rank AMG), long limit
    let blocker = "#SBATCH -N 1\n#SBATCH -n 1\n#SBATCH -t 60:00\nsrun -n 1 amg -P 1 1 1 -n 400 400 400 -problem 1\n";
    // wide: needs the whole machine, queued right behind the blocker
    let wide = format!(
        "#SBATCH -N {}\n#SBATCH -n 8\n#SBATCH -t 60:00\nsrun -n 8 amg -P 2 2 2 -n 96 96 96 -problem 1\n",
        Machine::ats4().nodes
    );
    // fillers: short benchmark jobs with tight limits (they fit the shadow)
    let filler = "#SBATCH -N 1\n#SBATCH -n 4\n#SBATCH -t 2:00\nsrun -n 4 amg -P 2 2 1 -n 96 96 96 -problem 1\n";

    cluster.submit_script(blocker, "prod").unwrap();
    let _wide_id = cluster.submit_script(&wide, "prod").unwrap();
    let mut filler_ids = Vec::new();
    for _ in 0..16 {
        filler_ids.push(cluster.submit_script(filler, "bench").unwrap());
    }
    cluster.run_until_idle();

    let mean_filler_wait = filler_ids
        .iter()
        .map(|id| {
            let job = cluster.job(*id).unwrap();
            job.start_time.unwrap() - job.submit_time
        })
        .sum::<f64>()
        / filler_ids.len() as f64;
    MixOutcome {
        makespan: cluster.now(),
        mean_filler_wait,
        utilization: cluster.utilization(),
    }
}

fn report() {
    println!("\n=============== Ablation A3: scheduler policy ===============\n");
    let fifo = run_mix(SchedulerPolicy::Fifo);
    let backfill = run_mix(SchedulerPolicy::Backfill);
    println!("policy      makespan(s)   mean filler wait(s)   utilization");
    println!(
        "FIFO        {:>10.3}   {:>18.3}   {:>10.1}%",
        fifo.makespan,
        fifo.mean_filler_wait,
        fifo.utilization * 100.0
    );
    println!(
        "Backfill    {:>10.3}   {:>18.3}   {:>10.1}%",
        backfill.makespan,
        backfill.mean_filler_wait,
        backfill.utilization * 100.0
    );
    println!(
        "\nbackfill cuts filler wait {:.1}x and makespan {:.2}x\n",
        fifo.mean_filler_wait / backfill.mean_filler_wait.max(1e-9),
        fifo.makespan / backfill.makespan.max(1e-9),
    );
    assert!(
        backfill.mean_filler_wait < fifo.mean_filler_wait,
        "backfill must reduce filler wait"
    );
    assert!(backfill.makespan <= fifo.makespan + 1e-9);
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("scheduler/fifo_mix", |b| {
        b.iter(|| black_box(run_mix(SchedulerPolicy::Fifo).makespan))
    });
    c.bench_function("scheduler/backfill_mix", |b| {
        b.iter(|| black_box(run_mix(SchedulerPolicy::Backfill).makespan))
    });
    c.bench_function("scheduler/throughput_100_jobs", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(Machine::cts1());
            for _ in 0..100 {
                cluster
                    .submit_script(
                        "#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 amg -P 2 2 1 -n 32 32 32 -problem 1\n",
                        "x",
                    )
                    .unwrap();
            }
            cluster.run_until_idle();
            black_box(cluster.now())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
