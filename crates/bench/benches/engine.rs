//! Execution-engine throughput: plan + drive a ~1k-node synthetic DAG
//! through `benchpark-engine` with 1 worker (pure serial drive) and with 8
//! workers (crossbeam pool), and verify on the way that both produce the
//! same task reports — the engine's determinism invariant at benchmark
//! scale.
//!
//! The DAG shape mimics a deep software stack: 32 "packages" of 32
//! "layers" each, where layer `l` of package `p` depends on layer `l-1` of
//! the same package and on the same layer of package `p-1` — plenty of
//! cross-chain edges so the scheduler has real choices to make.

use benchpark_engine::{Engine, TaskGraph, TaskStatus};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PACKAGES: usize = 32;
const LAYERS: usize = 32;

fn synthetic_dag() -> TaskGraph<u64> {
    let mut graph = TaskGraph::new();
    let mut ids = Vec::with_capacity(PACKAGES * LAYERS);
    for p in 0..PACKAGES {
        for l in 0..LAYERS {
            let n = (p * LAYERS + l) as u64;
            // durations vary but are a pure function of the node identity
            let duration = 1.0 + ((n * 7919) % 13) as f64;
            let id = graph
                .add_task(&format!("pkg{p:02}/layer{l:02}"), n, duration)
                .expect("unique keys");
            if l > 0 {
                graph.depends_on(id, ids[p * LAYERS + l - 1]).unwrap();
            }
            if p > 0 {
                graph.depends_on(id, ids[(p - 1) * LAYERS + l]).unwrap();
            }
            ids.push(id);
        }
    }
    graph
}

fn drive(workers: usize, pooled: bool) -> f64 {
    let graph = synthetic_dag();
    let engine = Engine::new(workers);
    let report = if pooled {
        engine
            .run_pool(&graph, |task, _ctx| Ok::<u64, String>(task.payload * 2))
            .unwrap()
    } else {
        engine
            .run(&graph, |task, _ctx| Ok::<u64, String>(task.payload * 2))
            .unwrap()
    };
    assert_eq!(report.count(TaskStatus::Success), PACKAGES * LAYERS);
    report.makespan
}

fn report() {
    println!("\n=============== Execution engine: 1k-node DAG ===============\n");
    let graph = synthetic_dag();
    println!(
        "{} tasks, total work {:.0} virtual seconds",
        graph.len(),
        graph.total_work()
    );
    let serial = drive(1, false);
    let pooled = drive(8, true);
    println!("jobs=1 makespan {serial:>8.0} virtual s");
    println!(
        "jobs=8 makespan {pooled:>8.0} virtual s  ({:.2}x speedup)",
        serial / pooled.max(1e-9)
    );

    // determinism spot-check at bench scale: serial and pooled reports match
    let e1 = Engine::new(8);
    let r1 = e1
        .run(&graph, |task, _ctx| Ok::<u64, String>(task.payload * 2))
        .unwrap();
    let r8 = e1
        .run_pool(&graph, |task, _ctx| Ok::<u64, String>(task.payload * 2))
        .unwrap();
    for (a, b) in r1.tasks.iter().zip(r8.tasks.iter()) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.status, b.status);
        assert_eq!(a.output, b.output);
        assert_eq!(a.start, b.start);
        assert_eq!(a.finish, b.finish);
    }
    println!(
        "serial and pooled reports identical across all {} tasks\n",
        r1.tasks.len()
    );
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("engine/plan_1k_dag", |b| {
        let graph = synthetic_dag();
        b.iter(|| black_box(graph.plan(8).unwrap().makespan))
    });
    c.bench_function("engine/serial_jobs1", |b| {
        b.iter(|| black_box(drive(1, false)))
    });
    c.bench_function("engine/pool_jobs8", |b| {
        b.iter(|| black_box(drive(8, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
