//! Experiment F7: the real saxpy kernel (paper Figure 7), executed
//! multithreaded — thread-scaling of the one piece of benchmark source code
//! the paper prints in full.

use benchpark_cluster::saxpy_kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn report() {
    println!("\n============== Experiment F7: saxpy kernel ==============\n");
    let n = 1 << 22;
    let x = vec![1.0f32; n];
    let y = vec![2.0f32; n];
    println!(
        "n = {n} elements ({} MiB traffic per call)",
        n * 12 / (1 << 20)
    );
    for threads in [1usize, 2, 4, 8] {
        let mut r = vec![0.0f32; n];
        let start = std::time::Instant::now();
        for _ in 0..8 {
            saxpy_kernel(&mut r, &x, &y, 2.5, threads);
        }
        let per_call = start.elapsed().as_secs_f64() / 8.0;
        println!(
            "  {threads} thread(s): {:>8.3} ms/call  ({:.1} GB/s)",
            per_call * 1e3,
            (n * 12) as f64 / per_call / 1e9
        );
        assert_eq!(r[0], 4.5);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    report();
    let n = 1 << 21;
    let x = vec![1.0f32; n];
    let y = vec![2.0f32; n];

    let mut group = c.benchmark_group("saxpy_kernel");
    group.throughput(Throughput::Bytes((n * 12) as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let mut r = vec![0.0f32; n];
            b.iter(|| {
                saxpy_kernel(black_box(&mut r), black_box(&x), black_box(&y), 2.5, t);
                black_box(r[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
