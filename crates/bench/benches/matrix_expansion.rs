//! Experiment F10 at scale: Ramble's experiment-generation machinery
//! (zips + matrices) on growing variable spaces, with the Figure 10 case as
//! the calibration point (exactly 8 experiments).

use benchpark_ramble::{generate_experiments, RambleConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Builds a ramble.yaml whose single experiment crosses an n×n matrix with a
/// length-n zip → n³ experiments.
fn synthetic_config(n: usize) -> RambleConfig {
    let list = |prefix: &str| -> String {
        let items: Vec<String> = (0..n).map(|i| format!("'{prefix}{i}'")).collect();
        format!("[{}]", items.join(", "))
    };
    let yaml = format!(
        "ramble:\n  applications:\n    saxpy:\n      workloads:\n        problem:\n          experiments:\n            e_{{a}}_{{b}}_{{z}}:\n              variables:\n                a: {}\n                b: {}\n                z: {}\n              matrices:\n              - m:\n                - a\n                - b\n",
        list("a"),
        list("b"),
        list("z"),
    );
    RambleConfig::from_yaml(&yaml).unwrap()
}

fn fig10_case() {
    println!("\n======== Experiment F10: Figure 10 expansion ========\n");
    let yaml = benchpark_core::experiment_template("saxpy", "openmp").unwrap();
    let config = RambleConfig::from_yaml(&yaml).unwrap();
    let wl = &config.applications["saxpy"]["problem"];
    let mut base = BTreeMap::new();
    base.insert("batch_time".to_string(), "120".to_string());
    let exps = generate_experiments("saxpy", "problem", wl, &wl.experiments[0], &base).unwrap();
    println!("Figure 10 template expands to {} experiments:", exps.len());
    for exp in &exps {
        println!("  {}", exp.name);
    }
    assert_eq!(exps.len(), 8);
    println!();
}

fn bench(c: &mut Criterion) {
    fig10_case();

    let mut group = c.benchmark_group("matrix_expansion");
    for n in [2usize, 4, 8, 16] {
        let config = synthetic_config(n);
        let wl = config.applications["saxpy"]["problem"].clone();
        group.bench_with_input(BenchmarkId::new("n_cubed", n * n * n), &n, |b, _| {
            b.iter(|| {
                let exps = generate_experiments(
                    "saxpy",
                    "problem",
                    black_box(&wl),
                    &wl.experiments[0],
                    &BTreeMap::new(),
                )
                .unwrap();
                assert_eq!(exps.len(), n * n * n);
                black_box(exps)
            })
        });
    }
    group.finish();

    c.bench_function("matrix_expansion/fig10", |b| {
        let yaml = benchpark_core::experiment_template("saxpy", "openmp").unwrap();
        let config = RambleConfig::from_yaml(&yaml).unwrap();
        let wl = config.applications["saxpy"]["problem"].clone();
        let mut base = BTreeMap::new();
        base.insert("batch_time".to_string(), "120".to_string());
        b.iter(|| {
            black_box(
                generate_experiments("saxpy", "problem", &wl, &wl.experiments[0], &base).unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
