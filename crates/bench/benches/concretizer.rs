//! Ablation A1: concretizer costs — single spec vs. full environment,
//! `unify: true` vs. `unify: false`, and `--reuse` against a warm database.

use benchpark_concretizer::{Concretizer, SiteConfig};
use benchpark_pkg::Repo;
use benchpark_spec::Spec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn env_roots() -> Vec<Spec> {
    [
        "saxpy+openmp",
        "amg2023+caliper",
        "stream",
        "lulesh+openmp",
        "osu-micro-benchmarks",
        "caliper",
        "hypre+openmp",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

fn report() {
    println!("\n=============== Ablation A1: concretizer ===============\n");
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let solver = Concretizer::new(&repo, &config);
    let roots = env_roots();
    let unified = solver.concretize_env(&roots, true).unwrap();
    let independent = solver.concretize_env(&roots, false).unwrap();
    let count_distinct = |dags: &[benchpark_concretizer::ConcreteSpec]| {
        let mut hashes = std::collections::BTreeSet::new();
        for dag in dags {
            for node in dag.nodes.values() {
                hashes.insert(node.hash.clone());
            }
        }
        hashes.len()
    };
    println!("environment of {} roots:", roots.len());
    println!(
        "  unify: true  → {} distinct package configurations",
        count_distinct(&unified)
    );
    println!(
        "  unify: false → {} distinct package configurations",
        count_distinct(&independent)
    );
    println!("(unification deduplicates shared dependencies across roots)\n");
}

fn bench(c: &mut Criterion) {
    report();
    let repo = Repo::builtin();
    let config = SiteConfig::example_cts();
    let roots = env_roots();

    c.bench_function("concretize/saxpy_single", |b| {
        let solver = Concretizer::new(&repo, &config);
        let spec: Spec = "saxpy@1.0.0 +openmp ^cmake@3.23.1".parse().unwrap();
        b.iter(|| black_box(solver.concretize(black_box(&spec)).unwrap()))
    });

    c.bench_function("concretize/amg_stack", |b| {
        let solver = Concretizer::new(&repo, &config);
        let spec: Spec = "amg2023+caliper".parse().unwrap();
        b.iter(|| black_box(solver.concretize(black_box(&spec)).unwrap()))
    });

    c.bench_function("concretize/env7_unify_true", |b| {
        let solver = Concretizer::new(&repo, &config);
        b.iter(|| black_box(solver.concretize_env(black_box(&roots), true).unwrap()))
    });

    c.bench_function("concretize/env7_unify_false", |b| {
        let solver = Concretizer::new(&repo, &config);
        b.iter(|| black_box(solver.concretize_env(black_box(&roots), false).unwrap()))
    });

    // reuse: warm database adopts installed specs instead of re-deciding
    let warm = {
        let solver = Concretizer::new(&repo, &config);
        solver.concretize_env(&roots, true).unwrap()
    };
    let mut reuse_config = SiteConfig::example_cts();
    reuse_config.reuse = true;
    reuse_config.installed = warm;
    c.bench_function("concretize/amg_stack_with_reuse", |b| {
        let solver = Concretizer::new(&repo, &reuse_config);
        let spec: Spec = "amg2023+caliper".parse().unwrap();
        b.iter(|| black_box(solver.concretize(black_box(&spec)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
