//! `benchpark-bench` — the benchmark harness.
//!
//! Each Criterion bench target regenerates one of the paper's tables or
//! figures (printing the artifact before measuring) and then benchmarks the
//! machinery that produced it. See `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! | target             | artifact |
//! |--------------------|----------|
//! | `table1`           | Table 1: the component matrix |
//! | `fig14_extrap`     | Figure 14: Extra-P model of MPI_Bcast on CTS (+ ablation A4) |
//! | `concretizer`      | Ablation A1: unify / reuse solve costs |
//! | `matrix_expansion` | Figure 10 cardinalities at scale |
//! | `scheduler`        | Ablation A3: FIFO vs backfill |
//! | `ci_pipeline`      | Figure 6 / ablation A2: cold vs warm binary cache |
//! | `fom_extract`      | Figure 8: FOM regex extraction throughput |
//! | `saxpy_kernel`     | Figure 7: the real kernel's thread scaling |
//! | `engine`           | Experiment engine: LPT plan + drive at DAG scale |
//!
//! The Criterion targets above regenerate artifacts; the [`suite`] module is
//! the other half of the story — the deterministic hot-path suite behind
//! `benchpark bench` whose medians form the committed `BENCH_<date>.json`
//! trajectory (see `docs/perf/methodology.md`).

pub mod suite;

pub use suite::{
    deep_package_name, run_suite, suite_names, synth_ledger_lines, synth_manifest, synth_repo,
    Scale, SuiteConfig,
};

/// A scratch directory for bench workspaces.
pub fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
