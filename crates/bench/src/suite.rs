//! The hot-path suite behind `benchpark bench`: the benches whose medians
//! form the repository's committed `BENCH_<date>.json` trajectory.
//!
//! Unlike the Criterion targets next door (which regenerate paper artifacts
//! and print prose), this suite is a *measurement instrument*: fixed
//! deterministic workloads, fixed iteration counts, statistics emitted as a
//! [`BenchReport`] that `benchpark regress --bench` can gate on. The
//! workload size is part of every bench name (`engine.plan.lpt.100k`), so a
//! resized workload starts a fresh trajectory instead of corrupting an old
//! one. See `docs/perf/methodology.md` for how these numbers are produced,
//! compared, and acted on, and `docs/perf/benches.md` for what each bench
//! covers.
//!
//! The suite covers the pipeline's known hot paths:
//!
//! * **concretization** — single-spec and 7-root environment solves;
//! * **yamlite** — parse/emit of a large generated experiment manifest and
//!   of ledger-shaped JSON lines;
//! * **spec** — parsing a corpus of constraint-heavy spec strings;
//! * **engine** — LPT planning and crossbeam-pool drive of a 100k-task DAG;
//! * **ledger** — replay, regression scan, and fingerprint indexing over a
//!   10k-run history;
//! * **serve** — submission-queue admission plus deficit-round-robin batch
//!   picking over 10k synthetic multi-tenant requests (no execution), and
//!   the observability path: rolling windows + stage histograms + SLO
//!   verdicts + status-snapshot serialization over 10k completions;
//! * **telemetry** — journal append throughput under a recording sink, and
//!   `record_hist` aggregation throughput at 1M samples.

use benchpark_concretizer::{Concretizer, SiteConfig};
use benchpark_core::benchjson::{BenchEnv, BenchRecord, BenchReport, BENCH_SCHEMA, BENCH_SUITE};
use benchpark_core::{scan_regressions, FingerprintIndex, LedgerLoad, RunRecord};
use benchpark_engine::{Engine, TaskGraph};
use benchpark_pkg::Repo;
use benchpark_ramble::{ExperimentResult, ExperimentStatus, FomValue};
use benchpark_serve::{DrrScheduler, ExperimentRequest, QueueConfig, SubmissionQueue};
use benchpark_spec::Spec;
use benchpark_telemetry::TelemetrySink;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// Workload scale. The *full* scale is the committed trajectory; *tiny*
/// exists so tests can exercise the whole machinery in milliseconds. Sizes
/// are baked into bench names, so the two scales can never be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Trajectory scale: 100k-task DAGs, 10k-run ledgers.
    Full,
    /// Test scale: everything shrunk ~50×.
    Tiny,
}

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Timed samples per bench (each of the bench's fixed `iters`
    /// iterations). More samples tighten the noise band.
    pub samples: u64,
    /// Case-sensitive substring filter over bench names.
    pub filter: Option<String>,
    /// Workload scale.
    pub scale: Scale,
    /// `created` date stamped into the report (`YYYY-MM-DD`).
    pub created: String,
}

impl SuiteConfig {
    /// The trajectory configuration: full scale, 7 samples.
    pub fn full(created: impl Into<String>) -> SuiteConfig {
        SuiteConfig {
            samples: 7,
            filter: None,
            scale: Scale::Full,
            created: created.into(),
        }
    }

    /// The local-iteration configuration: full-scale workloads (so medians
    /// stay comparable with the committed trajectory) but only 3 samples.
    /// Not gate-quality — a median of 3 measurably flakes under ambient
    /// interference; CI and accept/reject decisions use full samples.
    pub fn quick(created: impl Into<String>) -> SuiteConfig {
        SuiteConfig {
            samples: 3,
            ..SuiteConfig::full(created)
        }
    }

    /// The test configuration: tiny workloads, 2 samples.
    pub fn tiny(created: impl Into<String>) -> SuiteConfig {
        SuiteConfig {
            samples: 2,
            filter: None,
            scale: Scale::Tiny,
            created: created.into(),
        }
    }
}

/// One suite bench: a name, its subsystem group, a fixed iteration count,
/// and the measured routine.
struct BenchDef<'w> {
    name: String,
    group: &'static str,
    iters: u64,
    routine: Box<dyn FnMut() + 'w>,
}

/// Sizes derived from the scale.
struct Sizes {
    /// Suffix appended to scaled bench names (`100k`, `2k`).
    dag_tag: &'static str,
    dag_tasks: usize,
    ledger_tag: &'static str,
    ledger_runs: usize,
    manifest_tag: &'static str,
    manifest_experiments: usize,
    journal_tag: &'static str,
    journal_events: usize,
    serve_tag: &'static str,
    serve_requests: usize,
    hist_tag: &'static str,
    hist_records: usize,
    status_tag: &'static str,
    status_events: usize,
    repo_tag: &'static str,
    repo_packages: usize,
    repo_width: usize,
}

impl Sizes {
    fn of(scale: Scale) -> Sizes {
        match scale {
            Scale::Full => Sizes {
                dag_tag: "100k",
                dag_tasks: 100_000,
                ledger_tag: "10k",
                ledger_runs: 10_000,
                manifest_tag: "1500",
                manifest_experiments: 1_500,
                journal_tag: "100k",
                journal_events: 100_000,
                serve_tag: "10k",
                serve_requests: 10_000,
                hist_tag: "1m",
                hist_records: 1_000_000,
                status_tag: "10k",
                status_events: 10_000,
                repo_tag: "10k",
                repo_packages: 10_000,
                repo_width: 100,
            },
            Scale::Tiny => Sizes {
                dag_tag: "2k",
                dag_tasks: 2_000,
                ledger_tag: "200",
                ledger_runs: 200,
                manifest_tag: "30",
                manifest_experiments: 30,
                journal_tag: "2k",
                journal_events: 2_000,
                serve_tag: "500",
                serve_requests: 500,
                hist_tag: "20k",
                hist_records: 20_000,
                status_tag: "500",
                status_events: 500,
                repo_tag: "500",
                repo_packages: 500,
                repo_width: 25,
            },
        }
    }
}

/// Names of every bench the suite would run at `scale` (before filtering).
pub fn suite_names(scale: Scale) -> Vec<String> {
    let s = Sizes::of(scale);
    vec![
        "concretize.env7.unify".to_string(),
        format!("concretize.repo_{}.cold", s.repo_tag),
        format!("concretize.repo_{}.incr", s.repo_tag),
        "concretize.single".to_string(),
        format!("engine.drive.pool.{}", s.dag_tag),
        format!("engine.plan.lpt.{}", s.dag_tag),
        format!("fingerprint.index.{}", s.ledger_tag),
        "json.emit.run_record".to_string(),
        "json.parse.ledger_line".to_string(),
        format!("ledger.regress.{}", s.ledger_tag),
        format!("ledger.replay.{}", s.ledger_tag),
        format!("serve.enqueue_drain.{}", s.serve_tag),
        format!("serve.status.snapshot.{}", s.status_tag),
        "spec.parse.corpus256".to_string(),
        format!("telemetry.hist.record.{}", s.hist_tag),
        format!("telemetry.journal.{}", s.journal_tag),
        format!("yamlite.emit.manifest{}", s.manifest_tag),
        format!("yamlite.parse.manifest{}", s.manifest_tag),
    ]
}

/// Runs the hot-path suite and returns the report. `progress` receives one
/// line per finished bench (pass `|_| {}` to stay quiet).
pub fn run_suite(config: &SuiteConfig, mut progress: impl FnMut(&str)) -> BenchReport {
    let sizes = Sizes::of(config.scale);

    // shared deterministic workloads, prepared once outside all timing
    let repo = Repo::builtin();
    let site = SiteConfig::example_cts();
    let env_roots: Vec<Spec> = [
        "saxpy+openmp",
        "amg2023+caliper",
        "stream",
        "lulesh+openmp",
        "osu-micro-benchmarks",
        "caliper",
        "hypre+openmp",
    ]
    .iter()
    .map(|s| s.parse().expect("builtin spec parses"))
    .collect();
    let single_root: Vec<Spec> = vec!["saxpy+openmp".parse().expect("builtin spec parses")];
    let manifest = synth_manifest(sizes.manifest_experiments);
    let manifest_value = benchpark_yamlite::parse(&manifest).expect("synthetic manifest parses");
    let ledger_lines = synth_ledger_lines(sizes.ledger_runs);
    let ledger_text = ledger_lines.join("\n");
    let ledger_load = replay_lines(&ledger_text);
    let sample_line = ledger_lines[ledger_lines.len() / 2].clone();
    let sample_record =
        RunRecord::parse_line(&sample_line).expect("synthetic ledger line parses back");
    let probe_hexes: Vec<String> = (0..64)
        .map(|i| fingerprint_hex(i * sizes.ledger_runs as u64 / 64, 0))
        .collect();
    let dag = synth_dag(sizes.dag_tasks);
    let spec_corpus = synth_spec_corpus(256);
    let serve_requests = synth_requests(sizes.serve_requests);
    let synth_repo = synth_repo(sizes.repo_packages, sizes.repo_width);
    let synth_root: Spec = "synth-root".parse().expect("synth root parses");
    // the incremental bench re-propagates one version edit against a warm
    // session; the session's cold solve happens once here, outside timing
    let synth_cz = Concretizer::new(&synth_repo, &site);
    let mut synth_session = synth_cz
        .session(&synth_root)
        .expect("synthetic repo solves");
    let edit_target = deep_package_name(sizes.repo_packages, sizes.repo_width);
    let edit_constraint =
        benchpark_spec::VersionConstraint::exactly("2.0.0".parse().expect("version parses"));

    let mut benches: Vec<BenchDef> = Vec::new();
    benches.push(BenchDef {
        name: "concretize.env7.unify".into(),
        group: "concretizer",
        iters: 8,
        routine: Box::new(|| {
            let solver = Concretizer::new(&repo, &site);
            black_box(solver.concretize_env(&env_roots, true).expect("solves"));
        }),
    });
    benches.push(BenchDef {
        name: "concretize.single".into(),
        group: "concretizer",
        iters: 64,
        routine: Box::new(|| {
            let solver = Concretizer::new(&repo, &site);
            black_box(solver.concretize_env(&single_root, false).expect("solves"));
        }),
    });
    benches.push(BenchDef {
        name: format!("concretize.repo_{}.cold", sizes.repo_tag),
        group: "concretizer",
        iters: 1,
        routine: Box::new(|| {
            let solver = Concretizer::new(&synth_repo, &site);
            black_box(
                solver
                    .concretize(&synth_root)
                    .expect("synthetic repo solves"),
            );
        }),
    });
    benches.push(BenchDef {
        name: format!("concretize.repo_{}.incr", sizes.repo_tag),
        group: "concretizer",
        iters: 4,
        routine: Box::new(|| {
            black_box(
                synth_session
                    .resolve_version(&edit_target, &edit_constraint)
                    .expect("incremental edit solves"),
            );
        }),
    });
    benches.push(BenchDef {
        name: format!("yamlite.parse.manifest{}", sizes.manifest_tag),
        group: "yamlite",
        iters: 2,
        routine: Box::new(|| {
            black_box(benchpark_yamlite::parse(&manifest).expect("parses"));
        }),
    });
    benches.push(BenchDef {
        name: format!("yamlite.emit.manifest{}", sizes.manifest_tag),
        group: "yamlite",
        iters: 4,
        routine: Box::new(|| {
            black_box(benchpark_yamlite::emit(&manifest_value));
        }),
    });
    benches.push(BenchDef {
        name: "json.parse.ledger_line".into(),
        group: "yamlite",
        iters: 256,
        routine: Box::new(|| {
            black_box(benchpark_yamlite::parse_json(&sample_line).expect("parses"));
        }),
    });
    benches.push(BenchDef {
        name: "json.emit.run_record".into(),
        group: "yamlite",
        iters: 256,
        routine: Box::new(|| {
            black_box(sample_record.to_json_line());
        }),
    });
    benches.push(BenchDef {
        name: "spec.parse.corpus256".into(),
        group: "spec",
        iters: 8,
        routine: Box::new(|| {
            for text in &spec_corpus {
                black_box(text.parse::<Spec>().expect("corpus spec parses"));
            }
        }),
    });
    benches.push(BenchDef {
        name: format!("engine.plan.lpt.{}", sizes.dag_tag),
        group: "engine",
        iters: 1,
        routine: Box::new(|| {
            black_box(dag.plan(8).expect("plans"));
        }),
    });
    benches.push(BenchDef {
        name: format!("engine.drive.pool.{}", sizes.dag_tag),
        group: "engine",
        iters: 1,
        routine: Box::new(|| {
            let engine = Engine::new(8);
            black_box(
                engine
                    .run_pool(&dag, |task, _ctx| Ok::<u64, String>(task.payload))
                    .expect("drives"),
            );
        }),
    });
    benches.push(BenchDef {
        name: format!("ledger.replay.{}", sizes.ledger_tag),
        group: "ledger",
        iters: 1,
        routine: Box::new(|| {
            black_box(replay_lines(&ledger_text));
        }),
    });
    benches.push(BenchDef {
        name: format!("ledger.regress.{}", sizes.ledger_tag),
        group: "ledger",
        iters: 1,
        routine: Box::new(|| {
            let db = ledger_load.to_database();
            black_box(scan_regressions(&db, 0.05));
        }),
    });
    benches.push(BenchDef {
        name: format!("fingerprint.index.{}", sizes.ledger_tag),
        group: "ledger",
        iters: 1,
        routine: Box::new(|| {
            let index = FingerprintIndex::from_ledger(&ledger_load);
            for hex in &probe_hexes {
                black_box(index.lookup_hex(hex));
            }
            black_box(index.len());
        }),
    });
    benches.push(BenchDef {
        name: format!("serve.enqueue_drain.{}", sizes.serve_tag),
        group: "serve",
        iters: 1,
        routine: Box::new(|| {
            let config = QueueConfig {
                max_queued_per_tenant: sizes.serve_requests,
                max_queued_global: sizes.serve_requests,
                ..QueueConfig::default()
            };
            let mut queue = SubmissionQueue::new(config.clone(), TelemetrySink::noop());
            for request in &serve_requests {
                queue
                    .admit(request.clone())
                    .expect("synthetic request admits");
            }
            let mut sched = DrrScheduler::new(&config);
            let mut drained = 0usize;
            while !queue.is_empty() {
                drained += sched.next_batch(&mut queue).len();
            }
            assert_eq!(drained, sizes.serve_requests);
            black_box(drained);
        }),
    });
    benches.push(BenchDef {
        name: format!("serve.status.snapshot.{}", sizes.status_tag),
        group: "serve",
        iters: 1,
        routine: Box::new(|| {
            black_box(status_snapshot_storm(sizes.status_events));
        }),
    });
    benches.push(BenchDef {
        name: format!("telemetry.journal.{}", sizes.journal_tag),
        group: "telemetry",
        iters: 1,
        routine: Box::new(|| {
            black_box(journal_storm(sizes.journal_events));
        }),
    });
    benches.push(BenchDef {
        name: format!("telemetry.hist.record.{}", sizes.hist_tag),
        group: "telemetry",
        iters: 1,
        routine: Box::new(|| {
            black_box(hist_storm(sizes.hist_records));
        }),
    });

    let mut results = Vec::new();
    for bench in &mut benches {
        if let Some(filter) = &config.filter {
            if !bench.name.contains(filter.as_str()) {
                continue;
            }
        }
        let record = measure(bench, config.samples.max(2));
        progress(&format!(
            "{:<32} median {:>12}  mean {:>12}  ±{:>10}  ({} samples × {} iters)",
            record.name,
            benchpark_core::benchjson::format_ns(record.median_ns),
            benchpark_core::benchjson::format_ns(record.mean_ns),
            benchpark_core::benchjson::format_ns(record.std_ns),
            record.samples,
            record.iters,
        ));
        results.push(record);
    }
    results.sort_by(|a, b| a.name.cmp(&b.name));
    BenchReport {
        schema: BENCH_SCHEMA,
        suite: BENCH_SUITE.to_string(),
        created: config.created.clone(),
        env: BenchEnv::current(),
        results,
    }
}

/// Times one bench: a warm-up pass, then `samples` timed passes of the
/// bench's fixed `iters` iterations.
fn measure(bench: &mut BenchDef, samples: u64) -> BenchRecord {
    (bench.routine)(); // warm-up
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..bench.iters {
            (bench.routine)();
        }
        per_iter_ns.push(start.elapsed().as_secs_f64() * 1e9 / bench.iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let var =
        per_iter_ns.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / per_iter_ns.len() as f64;
    BenchRecord {
        name: bench.name.clone(),
        group: bench.group.to_string(),
        iters: bench.iters,
        samples,
        median_ns: median,
        mean_ns: mean,
        std_ns: var.sqrt(),
        units: "ns/iter".to_string(),
    }
}

/// The canonical name of the synthetic package at `(layer, col)`.
fn synth_package_name(layer: usize, col: usize) -> String {
    format!("synth-l{layer:03}-p{col:03}")
}

/// A package deep in the synthetic repo's last layer — the incremental
/// bench's edit target (an edit at the bottom touches the smallest
/// frontier, which is exactly the case incremental re-propagation exists
/// for).
pub fn deep_package_name(packages: usize, width: usize) -> String {
    let depth = packages / width;
    synth_package_name(depth - 1, 0)
}

/// A deterministic layered stress repository of `packages` packages plus a
/// `synth-root` aggregator: `packages / width` layers of `width` packages,
/// the root depending on every layer-0 package and each layer-`i` package
/// depending on two packages of layer `i+1` (wrapping), so the root's
/// closure is the entire repository. Every package declares three versions
/// and one boolean variant; alternating dependency edges carry version
/// constraints so the solver does real domain pruning, not just graph
/// walking.
pub fn synth_repo(packages: usize, width: usize) -> Repo {
    use benchpark_pkg::{DepType, PackageDef};
    let depth = packages / width;
    let mut repo = Repo::new();
    for layer in 0..depth {
        for col in 0..width {
            let mut pkg =
                PackageDef::new(&synth_package_name(layer, col), "synthetic stress package")
                    .version("2.1.0")
                    .version("2.0.0")
                    .version("1.9.0")
                    .variant_bool("tuned", col % 2 == 0, "synthetic tuning knob");
            if layer + 1 < depth {
                let d1 = (col + 1) % width;
                let d2 = (col + 7) % width;
                let n1 = synth_package_name(layer + 1, d1);
                pkg = if col % 2 == 0 {
                    pkg.depends_on(&format!("{n1}@2:"), DepType::Link)
                } else {
                    pkg.depends_on(&n1, DepType::Link)
                };
                if d2 != d1 {
                    pkg = pkg.depends_on(&synth_package_name(layer + 1, d2), DepType::Link);
                }
            }
            repo.add(pkg);
        }
    }
    let mut root = PackageDef::new("synth-root", "synthetic stress root").version("1.0");
    for col in 0..width {
        root = root.depends_on(&synth_package_name(0, col), DepType::Link);
    }
    repo.add(root);
    repo
}

/// A deterministic ramble.yaml-shaped manifest with `n` experiment entries —
/// nested maps, sequences, flow lists, quoted and plain scalars — sized to
/// stress the parser the way a fleet-scale workspace does.
pub fn synth_manifest(n: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(n * 400);
    out.push_str("ramble:\n  variables:\n    mpi_command: 'srun -N {n_nodes} -n {n_ranks}'\n");
    out.push_str("    batch_submit: 'sbatch {execute_experiment}'\n  applications:\n");
    for i in 0..n {
        let app = ["saxpy", "amg2023", "lulesh", "stream"][i % 4];
        let _ = writeln!(out, "    exp_{i:05}:");
        let _ = writeln!(out, "      workloads:");
        let _ = writeln!(out, "        problem:");
        let _ = writeln!(out, "          experiments:");
        let _ = writeln!(out, "            {app}_{i:05}:");
        let _ = writeln!(out, "              variant: openmp");
        let _ = writeln!(out, "              variables:");
        let _ = writeln!(out, "                n_nodes: [1, 2, 4, 8]");
        let _ = writeln!(out, "                n_ranks: {}", (i % 16 + 1) * 4);
        let _ = writeln!(
            out,
            "                omp_threads: {{a: {}, b: 2}}",
            i % 8 + 1
        );
        let _ = writeln!(out, "                tag: \"run {i} of {n}\"");
        let _ = writeln!(out, "              zips:");
        let _ = writeln!(out, "                - [n_nodes, n_ranks]");
    }
    out
}

/// A deterministic corpus of constraint-heavy spec strings.
/// `n` valid experiment requests cycling through 8 tenants, 2 systems, and
/// 2 built-in experiments, so admission validation always passes and the
/// DRR scheduler has a genuinely multi-tenant queue to arbitrate.
fn synth_requests(n: usize) -> Vec<ExperimentRequest> {
    const TENANTS: [&str; 8] = [
        "acme", "blue", "cobalt", "delta", "ember", "flint", "gamma", "helix",
    ];
    const SYSTEMS: [&str; 2] = ["cts1", "ats2"];
    const EXPERIMENTS: [(&str, &str); 2] = [("saxpy", "openmp"), ("stream", "openmp")];
    (0..n)
        .map(|i| {
            let (benchmark, variant) = EXPERIMENTS[i % EXPERIMENTS.len()];
            ExperimentRequest::new(
                TENANTS[i % TENANTS.len()],
                benchmark,
                variant,
                SYSTEMS[(i / TENANTS.len()) % SYSTEMS.len()],
            )
        })
        .collect()
}

fn synth_spec_corpus(n: usize) -> Vec<String> {
    let apps = ["saxpy", "amg2023", "lulesh", "stream", "hypre", "caliper"];
    let variants = ["+openmp", "~openmp", "+caliper", ""];
    let versions = ["@1.0", "@2.3.7", "@0.4:1.2", ""];
    (0..n)
        .map(|i| {
            format!(
                "{}{}{}{}",
                apps[i % apps.len()],
                versions[(i / 3) % versions.len()],
                variants[(i / 7) % variants.len()],
                if i % 5 == 0 { " %gcc@12.1.0" } else { "" },
            )
        })
        .collect()
}

/// A layered DAG of `n` trivial tasks: ~100 tasks per layer, each depending
/// on two tasks of the previous layer, with LCG-derived durations.
fn synth_dag(n: usize) -> TaskGraph<u64> {
    let mut graph = TaskGraph::new();
    let width = 100.min(n.max(1));
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let duration = 0.5 + (state >> 40) as f64 / (1u64 << 24) as f64 * 9.5;
        let id = graph
            .add_task(&format!("task-{i:06}"), i as u64, duration)
            .expect("unique keys");
        let layer = i / width;
        if layer > 0 {
            let base = (layer - 1) * width;
            let d1 = base + (i + 1) % width;
            let d2 = base + (i + 7) % width;
            graph.depends_on(id, ids[d1]).expect("dep exists");
            if d2 != d1 {
                graph.depends_on(id, ids[d2]).expect("dep exists");
            }
        }
        ids.push(id);
    }
    graph
}

/// Canonical 16-hex-digit fingerprint for synthetic run `i`, experiment `j`.
fn fingerprint_hex(i: u64, j: u64) -> String {
    format!(
        "{:016x}",
        (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (j.wrapping_mul(0xff51_afd7_ed55_8ccd))
    )
}

/// A deterministic `runs`-line ledger: four benchmarks × three systems of
/// interleaved history, each run carrying two experiments with three FOMs
/// and a fingerprint, FOM values wobbling ±2% so the regression scan does
/// real statistics without ever alarming.
pub fn synth_ledger_lines(runs: usize) -> Vec<String> {
    let benchmarks = ["saxpy", "amg2023", "lulesh", "stream"];
    let systems = ["cts1", "ats2", "ats4"];
    (0..runs)
        .map(|i| {
            let benchmark = benchmarks[i % benchmarks.len()];
            let system = systems[(i / benchmarks.len()) % systems.len()];
            let wobble = 1.0 + ((i % 9) as f64 - 4.0) * 0.005;
            let results: Vec<ExperimentResult> = (0..2u64)
                .map(|j| {
                    let mut variables = BTreeMap::new();
                    variables.insert("n_nodes".to_string(), (1 << (j % 4)).to_string());
                    variables.insert("experiment_run".to_string(), i.to_string());
                    ExperimentResult {
                        experiment: format!("{benchmark}_exp{j}"),
                        application: benchmark.to_string(),
                        workload: "problem".to_string(),
                        status: ExperimentStatus::Success,
                        foms: vec![
                            FomValue {
                                name: "figure_of_merit".to_string(),
                                value: format!("{:.4}", 12.5 * wobble + j as f64),
                                units: "s".to_string(),
                                context: BTreeMap::new(),
                            },
                            FomValue {
                                name: "bandwidth".to_string(),
                                value: format!("{:.2}", 182.0 / wobble),
                                units: "GB/s".to_string(),
                                context: BTreeMap::new(),
                            },
                            FomValue {
                                name: "iterations".to_string(),
                                value: "100".to_string(),
                                units: "".to_string(),
                                context: BTreeMap::new(),
                            },
                        ],
                        criteria: vec![("converged".to_string(), true)],
                        variables,
                        profile: vec![
                            ("setup".to_string(), 0.8),
                            ("solve".to_string(), 11.7 * wobble),
                        ],
                        cached: false,
                    }
                })
                .collect();
            let mut record = RunRecord::from_run(
                system,
                benchmark,
                "openmp",
                &format!("manifest for {benchmark} on {system}"),
                &results,
                None,
            )
            .with_fingerprints(vec![
                (format!("{benchmark}_exp0"), fingerprint_hex(i as u64, 0)),
                (format!("{benchmark}_exp1"), fingerprint_hex(i as u64, 1)),
            ]);
            record.sequence = i as u64 + 1;
            record.to_json_line()
        })
        .collect()
}

/// Replays ledger text through the line parser — the hot loop of
/// `load_ledger` without the filesystem.
fn replay_lines(text: &str) -> LedgerLoad {
    let mut load = LedgerLoad::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(mut record) = RunRecord::parse_line(line) {
            record.sequence = load.runs.len() as u64 + 1;
            load.runs.push(record);
        } else {
            load.skipped += 1;
        }
    }
    load
}

/// Hammers a recording sink with `records` histogram samples across four
/// stage families and a rotating per-tenant pair, values spread by an LCG
/// over the full bucket range — the daemon's per-commit `record_hist`
/// traffic at fleet scale.
fn hist_storm(records: usize) -> usize {
    let sink = TelemetrySink::recording();
    let stages = [
        "serve.stage.queue_wait",
        "serve.stage.schedule",
        "serve.stage.execute",
        "serve.stage.commit",
    ];
    let tenants = ["serve.tenant.acme.queue_wait", "serve.tenant.blue.execute"];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..records {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let value = state >> 28; // up to ~2^36: exercises overflow too
        if i % 8 < 6 {
            sink.record_hist(stages[i % stages.len()], value);
        } else {
            sink.record_hist(tenants[i % tenants.len()], value);
        }
    }
    sink.report().map(|r| r.histograms.len()).unwrap_or(0)
}

/// Feeds `events` synthetic request completions through the daemon's
/// observability state — rolling windows plus stage/tenant histograms —
/// then builds and serializes the status snapshot with SLO verdicts: one
/// drain-loop's worth of `--status-out` work, end to end.
fn status_snapshot_storm(events: usize) -> usize {
    use benchpark_serve::{
        CompletionEvent, RollingWindows, SloSpec, StageHists, StatusSnapshot, TenantStats,
    };
    const TENANTS: [&str; 8] = [
        "acme", "blue", "cobalt", "delta", "ember", "flint", "gamma", "helix",
    ];
    let slo =
        SloSpec::parse("p99_queue_wait <= 2048 ticks\nhit_rate >= 0.25\nreject_rate <= 0.05\n")
            .expect("bench SLO parses");
    let mut windows = RollingWindows::default();
    let mut hists = StageHists::default();
    let mut report = benchpark_serve::ServeReport::default();
    let mut state = 0x517c_c1b7_2722_0a95_u64;
    for i in 0..events {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let tenant = TENANTS[i % TENANTS.len()];
        let tick = i as u64 * 2;
        let queue_wait = (state >> 56) + 1;
        let execute = (state >> 48) & 0x3ff;
        windows.record_submit(tick);
        windows.record_complete(
            tick + 1,
            CompletionEvent {
                fresh: 1,
                cached: (i % 4) as u64,
                queue_wait_ticks: queue_wait,
                execute_ticks: execute,
                ..CompletionEvent::default()
            },
        );
        hists.record(
            tenant,
            queue_wait,
            (i % 4) as u64,
            execute,
            (i % 4) as u64 + 1,
        );
        let stats = report
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(TenantStats::default);
        stats.submitted += 1;
        stats.completed += 1;
        stats.fresh += 1;
        stats.cached += (i % 4) as u64;
        report.admitted += 1;
        report.completed += 1;
        report.experiments_fresh += 1;
        report.experiments_cached += (i % 4) as u64;
    }
    let snapshot = StatusSnapshot::build(events as u64 * 2, &report, &hists, &windows, Some(&slo));
    snapshot.to_json().len()
}

/// Hammers a recording sink with `events` journal appends: nested spans,
/// repeated counters, and observation samples in a fixed rotation.
fn journal_storm(events: usize) -> usize {
    let sink = TelemetrySink::recording();
    let counters = ["cache.hit", "engine.tasks.success", "concretizer.solves"];
    let gauges = ["scheduler.queue_depth", "install.worker_utilization"];
    let mut emitted = 0usize;
    while emitted < events {
        let span = sink.span("bench.storm");
        emitted += 2; // start + end
        for name in counters {
            sink.incr(name, 1);
            emitted += 1;
        }
        for (k, name) in gauges.iter().enumerate() {
            sink.observe(name, (emitted + k) as f64);
            emitted += 1;
        }
        drop(span);
    }
    sink.report().map(|r| r.journal.len()).unwrap_or(0)
}
