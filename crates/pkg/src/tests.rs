//! Tests for package recipes, the repository, and application definitions.

use crate::{AppRepo, BuildSystem, DepType, PackageDef, Repo, SuccessMode};
use benchpark_spec::Spec;

fn spec(s: &str) -> Spec {
    s.parse().unwrap()
}

#[test]
fn builtin_repo_contents() {
    let repo = Repo::builtin();
    assert!(
        repo.len() >= 20,
        "expected a substantial builtin repo, got {}",
        repo.len()
    );
    for name in [
        "saxpy",
        "amg2023",
        "hypre",
        "caliper",
        "adiak",
        "cmake",
        "gcc",
        "mvapich2",
        "spectrum-mpi",
        "cray-mpich",
        "intel-oneapi-mkl",
        "cuda",
        "hip",
    ] {
        assert!(repo.get(name).is_some(), "missing package {name}");
    }
}

#[test]
fn virtual_packages() {
    let repo = Repo::builtin();
    assert!(repo.is_virtual("mpi"));
    assert!(repo.is_virtual("blas"));
    assert!(repo.is_virtual("lapack"));
    assert!(!repo.is_virtual("cmake"));
    assert!(!repo.is_virtual("nonexistent"));

    let mpi_providers: Vec<&str> = repo
        .providers("mpi")
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    assert!(mpi_providers.contains(&"mvapich2"));
    assert!(mpi_providers.contains(&"openmpi"));
    assert!(mpi_providers.contains(&"spectrum-mpi"));
    assert!(mpi_providers.contains(&"cray-mpich"));

    let blas: Vec<&str> = repo
        .providers("blas")
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    assert!(blas.contains(&"intel-oneapi-mkl"));
    assert!(blas.contains(&"openblas"));
    assert!(blas.contains(&"essl"));
}

#[test]
fn overlay_shadows_builtin() {
    let mut overlay = Repo::new();
    overlay.add(
        PackageDef::new("saxpy", "patched saxpy")
            .version("2.0.0")
            .build_cost(1.0),
    );
    let repo = Repo::builtin().overlay(overlay);
    let saxpy = repo.get("saxpy").unwrap();
    assert_eq!(saxpy.description, "patched saxpy");
    assert_eq!(saxpy.preferred_version().unwrap().as_str(), "2.0.0");
    // other packages unaffected
    assert!(repo.get("cmake").is_some());
}

/// Figure 11: `cmake_args` produces `-DUSE_*=ON` per variant.
#[test]
fn golden_fig11_saxpy_cmake_args() {
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();
    assert_eq!(saxpy.build_system, BuildSystem::Cmake);

    let args = saxpy.install_args(&spec("saxpy@=1.0.0+openmp~cuda~rocm"));
    assert_eq!(args, vec!["-DUSE_OPENMP=ON"]);

    let args = saxpy.install_args(&spec("saxpy@=1.0.0~openmp+cuda~rocm"));
    assert_eq!(args, vec!["-DUSE_CUDA=ON"]);

    let args = saxpy.install_args(&spec("saxpy@=1.0.0~openmp~cuda+rocm"));
    assert_eq!(args, vec!["-DUSE_HIP=ON"]);

    let args = saxpy.install_args(&spec("saxpy@=1.0.0~openmp~cuda~rocm"));
    assert!(args.is_empty());
}

#[test]
fn build_type_arg_for_cmake_packages() {
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();
    let args = saxpy.install_args(&spec("saxpy build_type=Debug +openmp"));
    assert!(args.contains(&"-DCMAKE_BUILD_TYPE=Debug".to_string()));
}

#[test]
fn conditional_dependencies() {
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();

    let base: Vec<String> = saxpy
        .active_dependencies(&spec("saxpy+openmp~cuda~rocm"))
        .iter()
        .map(|d| d.spec.name_str().to_string())
        .collect();
    assert!(base.contains(&"cmake".to_string()));
    assert!(base.contains(&"mpi".to_string()));
    assert!(!base.contains(&"cuda".to_string()));
    assert!(!base.contains(&"hip".to_string()));

    let with_cuda: Vec<String> = saxpy
        .active_dependencies(&spec("saxpy+cuda~rocm+openmp"))
        .iter()
        .map(|d| d.spec.name_str().to_string())
        .collect();
    assert!(with_cuda.contains(&"cuda".to_string()));
    assert!(!with_cuda.contains(&"hip".to_string()));
}

#[test]
fn dependency_types() {
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();
    let cmake_dep = saxpy
        .dependencies
        .iter()
        .find(|d| d.spec.name_str() == "cmake")
        .unwrap();
    assert_eq!(cmake_dep.dep_type, DepType::Build);
    let mpi_dep = saxpy
        .dependencies
        .iter()
        .find(|d| d.spec.name_str() == "mpi")
        .unwrap();
    assert_eq!(mpi_dep.dep_type, DepType::Link);
}

#[test]
fn conflicts_detected() {
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();
    let violations = saxpy.violated_conflicts(&spec("saxpy+cuda+rocm"));
    assert_eq!(violations.len(), 1);
    assert!(violations[0].contains("GPU programming model"));
    assert!(saxpy
        .violated_conflicts(&spec("saxpy+cuda~rocm"))
        .is_empty());
    assert!(saxpy
        .violated_conflicts(&spec("saxpy~cuda+rocm"))
        .is_empty());

    let hypre = repo.get("hypre").unwrap();
    assert_eq!(hypre.violated_conflicts(&spec("hypre+cuda+rocm")).len(), 1);
}

#[test]
fn variant_defaults() {
    use benchpark_spec::VariantValue;
    let repo = Repo::builtin();
    let saxpy = repo.get("saxpy").unwrap();
    assert_eq!(
        saxpy.variant_default("openmp"),
        Some(&VariantValue::Bool(true))
    );
    assert_eq!(
        saxpy.variant_default("cuda"),
        Some(&VariantValue::Bool(false))
    );
    assert!(saxpy.variant_default("nope").is_none());
    assert!(saxpy.has_variant("rocm"));
}

#[test]
fn version_preferences() {
    let repo = Repo::builtin();
    let cmake = repo.get("cmake").unwrap();
    assert_eq!(cmake.preferred_version().unwrap().as_str(), "3.23.1");

    let constraint = spec("cmake@3.20:").versions;
    let admitted: Vec<&str> = cmake
        .admitted_versions(&constraint)
        .map(|v| v.as_str())
        .collect();
    assert_eq!(admitted, vec!["3.23.1", "3.20.2"]);
}

// ---------------------------------------------------------------------------
// Applications
// ---------------------------------------------------------------------------

#[test]
fn builtin_apps() {
    let apps = AppRepo::builtin();
    assert!(apps.len() >= 5);
    for name in ["saxpy", "amg2023", "stream", "osu-bcast", "lulesh"] {
        assert!(apps.get(name).is_some(), "missing application {name}");
    }
}

/// Figure 8 reproduced: executable template, workload, variable, FOM regex,
/// and success criterion all match the paper.
#[test]
fn golden_fig8_saxpy_application() {
    let apps = AppRepo::builtin();
    let saxpy = apps.get("saxpy").unwrap();

    let exe = saxpy.get_executable("p").unwrap();
    assert_eq!(exe.template, "saxpy -n {n}");
    assert!(exe.use_mpi);

    let workload = saxpy.get_workload("problem").unwrap();
    assert_eq!(workload.executables, vec!["p"]);

    let n = saxpy
        .workload_variables
        .iter()
        .find(|v| v.name == "n")
        .unwrap();
    assert_eq!(n.default, "1");
    assert_eq!(n.description, "problem size");
    assert_eq!(n.workloads, vec!["problem"]);

    let fom = &saxpy.figures_of_merit[0];
    assert_eq!(fom.name, "success");
    assert_eq!(fom.fom_regex, r"(?P<done>Kernel done)");
    assert_eq!(fom.group_name, "done");
    assert_eq!(fom.units, "");

    let crit = &saxpy.success_criteria[0];
    assert_eq!(crit.name, "pass");
    assert_eq!(crit.mode, SuccessMode::StringMatch);
    assert_eq!(crit.match_expr, "Kernel done");
    assert_eq!(crit.file, "{experiment_run_dir}/{experiment_name}.out");
}

#[test]
fn all_fom_regexes_compile() {
    // Every built-in FOM regex and success criterion must compile with rex.
    let apps = AppRepo::builtin();
    for name in apps.names().map(String::from).collect::<Vec<_>>() {
        let app = apps.get(&name).unwrap();
        for fom in &app.figures_of_merit {
            let re = benchpark_rex::Regex::new(&fom.fom_regex)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", fom.name));
            assert!(
                re.capture_names().any(|n| n == fom.group_name),
                "{name}/{}: regex lacks group {}",
                fom.name,
                fom.group_name
            );
        }
        for crit in &app.success_criteria {
            if crit.mode == SuccessMode::StringMatch {
                benchpark_rex::Regex::new(&crit.match_expr)
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", crit.name));
            }
        }
    }
}

#[test]
fn workload_variable_scoping() {
    let apps = AppRepo::builtin();
    let amg = apps.get("amg2023").unwrap();
    let p1 = amg.defaults_for("problem1");
    let p2 = amg.defaults_for("problem2");
    assert_eq!(p1.get("problem_kind").unwrap(), "1");
    assert_eq!(p2.get("problem_kind").unwrap(), "2");
    // unscoped variables apply to all workloads
    assert_eq!(p1.get("nx").unwrap(), "110");
    assert_eq!(p2.get("nx").unwrap(), "110");
}

#[test]
fn software_spec_indirection() {
    let apps = AppRepo::builtin();
    // osu-bcast runs from the osu-micro-benchmarks package
    assert_eq!(
        apps.get("osu-bcast").unwrap().software,
        "osu-micro-benchmarks"
    );
    // saxpy defaults to its own name
    assert_eq!(apps.get("saxpy").unwrap().software, "saxpy");
}

#[test]
fn applications_reference_real_packages() {
    let repo = Repo::builtin();
    let apps = AppRepo::builtin();
    for name in apps.names().map(String::from).collect::<Vec<_>>() {
        let app = apps.get(&name).unwrap();
        assert!(
            repo.get(&app.software).is_some(),
            "application {name} references unknown package {}",
            app.software
        );
    }
}
