//! The built-in package collection.
//!
//! Covers the full software stacks the paper's demonstration systems need
//! (§4): saxpy and AMG2023 plus their transitive dependencies on three
//! machines — `cts1` (Intel + MVAPICH2 + MKL), `ats2` (Power9 + Spectrum MPI
//! + ESSL + CUDA), and `ats4` (Trento + Cray MPICH + ROCm).

use crate::package::{BuildSystem, DepType, PackageDef};
use benchpark_spec::{Spec, VariantValue};

/// Figure 11's `cmake_args` for saxpy, verbatim behavior.
fn saxpy_args(spec: &Spec) -> Vec<String> {
    let mut args = Vec::new();
    if spec.variants.get("openmp") == Some(&VariantValue::Bool(true)) {
        args.push("-DUSE_OPENMP=ON".to_string());
    }
    if spec.variants.get("cuda") == Some(&VariantValue::Bool(true)) {
        args.push("-DUSE_CUDA=ON".to_string());
    }
    if spec.variants.get("rocm") == Some(&VariantValue::Bool(true)) {
        args.push("-DUSE_HIP=ON".to_string());
    }
    args
}

fn hypre_args(spec: &Spec) -> Vec<String> {
    let mut args = Vec::new();
    if spec.variants.get("openmp") == Some(&VariantValue::Bool(true)) {
        args.push("--with-openmp".to_string());
    }
    if spec.variants.get("cuda") == Some(&VariantValue::Bool(true)) {
        args.push("--with-cuda".to_string());
    }
    if spec.variants.get("rocm") == Some(&VariantValue::Bool(true)) {
        args.push("--with-hip".to_string());
    }
    args
}

fn amg2023_args(spec: &Spec) -> Vec<String> {
    let mut args = Vec::new();
    if spec.variants.get("caliper") == Some(&VariantValue::Bool(true)) {
        args.push("-DWITH_CALIPER=ON".to_string());
    }
    if spec.variants.get("mpi") != Some(&VariantValue::Bool(false)) {
        args.push("-DWITH_MPI=ON".to_string());
    }
    args
}

/// Builds the complete built-in package list.
#[allow(clippy::vec_init_then_push)] // one push block per package reads best
pub fn builtin() -> Vec<PackageDef> {
    let mut pkgs = Vec::new();

    // --- compilers (installed as packages; also referenced by %compiler) ---
    pkgs.push(
        PackageDef::new("gcc", "The GNU Compiler Collection")
            .version("12.1.1")
            .version("11.2.0")
            .version("10.3.1")
            .version("8.5.0")
            .build_system(BuildSystem::Autotools)
            .build_cost(3600.0),
    );
    pkgs.push(
        PackageDef::new("llvm", "The LLVM compiler infrastructure (clang)")
            .version("14.0.6")
            .version("13.0.1")
            .build_cost(5400.0),
    );
    pkgs.push(
        PackageDef::new("intel-oneapi-compilers", "Intel oneAPI compilers")
            .version("2022.1.0")
            .version("2021.6.0")
            .build_system(BuildSystem::Bundle)
            .build_cost(600.0),
    );
    pkgs.push(
        PackageDef::new("rocmcc", "AMD ROCm compiler (amdclang)")
            .version("5.2.0")
            .version("5.1.3")
            .build_system(BuildSystem::Bundle)
            .build_cost(600.0),
    );
    pkgs.push(
        PackageDef::new("xl", "IBM XL compiler suite")
            .version("16.1.1")
            .build_system(BuildSystem::Bundle)
            .build_cost(600.0),
    );

    // --- build tools --------------------------------------------------------
    pkgs.push(
        PackageDef::new("cmake", "Cross-platform build-system generator")
            .version("3.23.1")
            .version("3.20.2")
            .version("3.14.5")
            .variant_bool("ownlibs", true, "Use bundled libraries")
            .build_system(BuildSystem::Autotools)
            .build_cost(300.0),
    );
    pkgs.push(
        PackageDef::new("ninja", "Small, fast build system")
            .version("1.11.0")
            .build_cost(30.0),
    );
    pkgs.push(
        PackageDef::new("python", "The Python interpreter")
            .version("3.9.12")
            .version("3.8.13")
            .depends_on("zlib", DepType::Link)
            .build_system(BuildSystem::Autotools)
            .build_cost(400.0),
    );
    pkgs.push(
        PackageDef::new("zlib", "Compression library")
            .version("1.2.12")
            .version("1.2.11")
            .build_system(BuildSystem::Autotools)
            .build_cost(15.0),
    );
    pkgs.push(
        PackageDef::new("hwloc", "Hardware locality detection")
            .version("2.7.1")
            .build_system(BuildSystem::Autotools)
            .build_cost(60.0),
    );

    // --- MPI providers ------------------------------------------------------
    pkgs.push(
        PackageDef::new("mvapich2", "MVAPICH2 MPI implementation")
            .version("2.3.7")
            .version("2.3.6")
            .provides("mpi")
            .variant_bool("cuda", false, "CUDA-aware MPI")
            .depends_on("hwloc", DepType::Link)
            .depends_on_when("cuda", DepType::Link, "+cuda")
            .build_system(BuildSystem::Autotools)
            .build_cost(900.0),
    );
    pkgs.push(
        PackageDef::new("openmpi", "Open MPI implementation")
            .version("4.1.4")
            .version("4.1.2")
            .provides("mpi")
            .variant_bool("cuda", false, "CUDA-aware MPI")
            .depends_on("hwloc", DepType::Link)
            .depends_on_when("cuda", DepType::Link, "+cuda")
            .build_system(BuildSystem::Autotools)
            .build_cost(800.0),
    );
    pkgs.push(
        PackageDef::new("spectrum-mpi", "IBM Spectrum MPI (Power systems)")
            .version("10.3.1.2")
            .provides("mpi")
            .variant_bool("cuda", true, "CUDA-aware MPI")
            .build_system(BuildSystem::Bundle)
            .build_cost(120.0),
    );
    pkgs.push(
        PackageDef::new("cray-mpich", "HPE Cray MPICH (Cray systems)")
            .version("8.1.16")
            .provides("mpi")
            .variant_bool("rocm", true, "GPU-aware MPI")
            .build_system(BuildSystem::Bundle)
            .build_cost(120.0),
    );

    // --- BLAS / LAPACK providers -------------------------------------------
    pkgs.push(
        PackageDef::new("intel-oneapi-mkl", "Intel oneAPI Math Kernel Library")
            .version("2022.1.0")
            .version("2021.4.0")
            .provides("blas")
            .provides("lapack")
            .build_system(BuildSystem::Bundle)
            .build_cost(180.0),
    );
    pkgs.push(
        PackageDef::new("openblas", "OpenBLAS: optimized BLAS/LAPACK")
            .version("0.3.20")
            .version("0.3.18")
            .provides("blas")
            .provides("lapack")
            .variant_bool("threads", true, "Multithreaded kernels")
            .build_system(BuildSystem::Makefile)
            .build_cost(700.0),
    );
    pkgs.push(
        PackageDef::new("essl", "IBM Engineering and Scientific Subroutine Library")
            .version("6.3.0")
            .provides("blas")
            .provides("lapack")
            .build_system(BuildSystem::Bundle)
            .build_cost(120.0),
    );

    // --- GPU runtimes -------------------------------------------------------
    pkgs.push(
        PackageDef::new("cuda", "NVIDIA CUDA toolkit")
            .version("11.7.0")
            .version("10.2.89")
            .build_system(BuildSystem::Bundle)
            .build_cost(500.0),
    );
    pkgs.push(
        PackageDef::new("hip", "AMD ROCm HIP runtime")
            .version("5.2.0")
            .version("5.1.3")
            .build_system(BuildSystem::Bundle)
            .build_cost(500.0),
    );

    // --- performance tooling (§5) -------------------------------------------
    pkgs.push(
        PackageDef::new("adiak", "Run metadata collection library")
            .version("0.4.0")
            .version("0.2.2")
            .depends_on("cmake@3.14:", DepType::Build)
            .build_cost(45.0),
    );
    pkgs.push(
        PackageDef::new("caliper", "Performance introspection and profiling library")
            .version("2.8.0")
            .version("2.7.0")
            .variant_bool("adiak", true, "Metadata support via Adiak")
            .variant_bool("mpi", true, "MPI-aware aggregation")
            .depends_on("cmake@3.14:", DepType::Build)
            .depends_on_when("adiak@0.4:", DepType::Link, "+adiak")
            .depends_on_when("mpi", DepType::Link, "+mpi")
            .build_cost(240.0),
    );

    // --- solvers ------------------------------------------------------------
    pkgs.push(
        PackageDef::new("hypre", "Scalable linear solvers and multigrid methods")
            .version("2.25.0")
            .version("2.24.0")
            .variant_bool("mpi", true, "Distributed solve via MPI")
            .variant_bool("openmp", false, "OpenMP threading")
            .variant_bool("cuda", false, "NVIDIA GPU support")
            .variant_bool("rocm", false, "AMD GPU support")
            .depends_on("blas", DepType::Link)
            .depends_on("lapack", DepType::Link)
            .depends_on_when("mpi", DepType::Link, "+mpi")
            .depends_on_when("cuda@10:", DepType::Link, "+cuda")
            .depends_on_when("hip", DepType::Link, "+rocm")
            .conflicts_with(
                "+rocm",
                Some("+cuda"),
                "hypre cannot enable CUDA and ROCm together",
            )
            .build_system(BuildSystem::Autotools)
            .build_cost(420.0)
            .with_args(hypre_args),
    );

    // --- benchmarks (§4) -----------------------------------------------------
    pkgs.push(
        PackageDef::new("saxpy", "Test saxpy problem.")
            .version("1.0.0")
            .variant_bool("openmp", true, "OpenMP")
            .variant_bool("cuda", false, "CUDA")
            .variant_bool("rocm", false, "ROCm")
            .depends_on("cmake@3.20:", DepType::Build)
            .depends_on("mpi", DepType::Link)
            .depends_on_when("cuda@10:", DepType::Link, "+cuda")
            .depends_on_when("hip", DepType::Link, "+rocm")
            .conflicts_with("+rocm", Some("+cuda"), "pick one GPU programming model")
            .build_cost(20.0)
            .with_args(saxpy_args),
    );
    pkgs.push(
        PackageDef::new(
            "amg2023",
            "Parallel algebraic multigrid solver benchmark (AMG2023)",
        )
        .version("1.0")
        .variant_bool("mpi", true, "Distributed runs via MPI")
        .variant_bool("openmp", false, "OpenMP threading")
        .variant_bool("cuda", false, "NVIDIA GPU support")
        .variant_bool("rocm", false, "AMD GPU support")
        .variant_bool("caliper", false, "Caliper annotations")
        .depends_on("cmake@3.14:", DepType::Build)
        .depends_on("hypre@2.24:", DepType::Link)
        .depends_on_when("mpi", DepType::Link, "+mpi")
        .depends_on_when("hypre+cuda", DepType::Link, "+cuda")
        .depends_on_when("hypre+rocm", DepType::Link, "+rocm")
        .depends_on_when("hypre+openmp", DepType::Link, "+openmp")
        .depends_on_when("caliper+adiak", DepType::Link, "+caliper")
        .conflicts_with("+rocm", Some("+cuda"), "pick one GPU programming model")
        .build_cost(90.0)
        .with_args(amg2023_args),
    );
    pkgs.push(
        PackageDef::new("stream", "McCalpin STREAM memory bandwidth benchmark")
            .version("5.10")
            .variant_bool("openmp", true, "OpenMP threading")
            .build_system(BuildSystem::Makefile)
            .build_cost(5.0),
    );
    pkgs.push(
        PackageDef::new("osu-micro-benchmarks", "OSU MPI micro-benchmarks")
            .version("5.9")
            .version("5.6.3")
            .depends_on("mpi", DepType::Link)
            .build_system(BuildSystem::Autotools)
            .build_cost(60.0),
    );
    pkgs.push(
        PackageDef::new("hpl", "High-Performance Linpack (TOP500 benchmark)")
            .version("2.3")
            .variant_bool("openmp", false, "Threaded BLAS")
            .depends_on("mpi", DepType::Link)
            .depends_on("blas", DepType::Link)
            .build_system(BuildSystem::Makefile)
            .build_cost(45.0),
    );
    pkgs.push(
        PackageDef::new(
            "lulesh",
            "Livermore unstructured Lagrangian shock hydrodynamics proxy app",
        )
        .version("2.0.3")
        .variant_bool("openmp", true, "OpenMP threading")
        .variant_bool("mpi", true, "MPI domain decomposition")
        .depends_on_when("mpi", DepType::Link, "+mpi")
        .build_system(BuildSystem::Makefile)
        .build_cost(25.0),
    );

    pkgs
}
