//! Built-in application definitions.
//!
//! `saxpy` reproduces paper Figure 8 line-for-line; the others follow the
//! same DSL for the benchmarks §4 and Figure 14 exercise.

use crate::application::{ApplicationDef, SuccessMode};

/// Builds the complete built-in application list.
pub fn builtin() -> Vec<ApplicationDef> {
    vec![saxpy(), amg2023(), stream(), osu_bcast(), hpl(), lulesh()]
}

/// Paper Figure 8, verbatim.
fn saxpy() -> ApplicationDef {
    ApplicationDef::new("saxpy", "Single-kernel SAXPY micro-benchmark")
        .executable("p", "saxpy -n {n}", true)
        .workload("problem", &["p"])
        .workload_variable("n", "1", "problem size", &["problem"])
        .figure_of_merit("success", r"(?P<done>Kernel done)", "done", "")
        .figure_of_merit(
            "kernel_time",
            r"Kernel time \(s\): (?P<time>[0-9]+\.[0-9]+)",
            "time",
            "s",
        )
        .success_criteria(
            "pass",
            SuccessMode::StringMatch,
            r"Kernel done",
            "{experiment_run_dir}/{experiment_name}.out",
        )
}

/// AMG2023 [21]: a BoomerAMG (hypre) driver with setup and solve phases.
fn amg2023() -> ApplicationDef {
    ApplicationDef::new("amg2023", "Parallel algebraic multigrid benchmark")
        .executable(
            "p",
            "amg -P {px} {py} {pz} -n {nx} {ny} {nz} -problem {problem_kind}",
            true,
        )
        .workload("problem1", &["p"])
        .workload("problem2", &["p"])
        .workload_variable("px", "2", "processor topology x", &[])
        .workload_variable("py", "2", "processor topology y", &[])
        .workload_variable("pz", "2", "processor topology z", &[])
        .workload_variable("nx", "110", "per-process grid points x", &[])
        .workload_variable("ny", "110", "per-process grid points y", &[])
        .workload_variable("nz", "110", "per-process grid points z", &[])
        .workload_variable(
            "problem_kind",
            "1",
            "1 = Laplace, 2 = 27-pt stencil",
            &["problem1"],
        )
        .workload_variable(
            "problem_kind",
            "2",
            "1 = Laplace, 2 = 27-pt stencil",
            &["problem2"],
        )
        .figure_of_merit(
            "setup_fom",
            r"Figure of Merit \(FOM_Setup\): (?P<fom>[0-9.e+-]+)",
            "fom",
            "DOF/s",
        )
        .figure_of_merit(
            "solve_fom",
            r"Figure of Merit \(FOM_Solve\): (?P<fom>[0-9.e+-]+)",
            "fom",
            "DOF/s",
        )
        .figure_of_merit(
            "solve_time",
            r"Solve phase time: (?P<t>[0-9.e+-]+) seconds",
            "t",
            "s",
        )
        .success_criteria(
            "converged",
            SuccessMode::StringMatch,
            r"Iterations = \d+",
            "{experiment_run_dir}/{experiment_name}.out",
        )
}

/// McCalpin STREAM: memory-bandwidth FOMs per kernel.
fn stream() -> ApplicationDef {
    ApplicationDef::new("stream", "STREAM memory bandwidth benchmark")
        .executable("p", "stream -s {array_size}", false)
        .workload("standard", &["p"])
        .workload_variable(
            "array_size",
            "80000000",
            "elements per array",
            &["standard"],
        )
        .figure_of_merit("copy_bw", r"Copy:\s+(?P<bw>[0-9.]+)", "bw", "MB/s")
        .figure_of_merit("scale_bw", r"Scale:\s+(?P<bw>[0-9.]+)", "bw", "MB/s")
        .figure_of_merit("add_bw", r"Add:\s+(?P<bw>[0-9.]+)", "bw", "MB/s")
        .figure_of_merit("triad_bw", r"Triad:\s+(?P<bw>[0-9.]+)", "bw", "MB/s")
        .success_criteria(
            "validated",
            SuccessMode::StringMatch,
            r"Solution Validates",
            "{experiment_run_dir}/{experiment_name}.out",
        )
}

/// OSU broadcast latency: the microbenchmark behind Figure 14.
fn osu_bcast() -> ApplicationDef {
    ApplicationDef::new("osu-bcast", "OSU MPI_Bcast latency micro-benchmark")
        .software_spec("osu-micro-benchmarks")
        .executable(
            "p",
            "osu_bcast -m {message_size}:{message_size} -i {iterations}",
            true,
        )
        .workload("bcast", &["p"])
        .workload_variable("message_size", "8", "message size in bytes", &["bcast"])
        .workload_variable("iterations", "1000", "iterations per size", &["bcast"])
        .figure_of_merit(
            "avg_latency",
            r"^(?P<size>\d+)\s+(?P<lat>[0-9.]+)$",
            "lat",
            "us",
        )
        .success_criteria(
            "pass",
            SuccessMode::StringMatch,
            r"# OSU MPI Broadcast Latency Test",
            "{experiment_run_dir}/{experiment_name}.out",
        )
}

/// High-Performance Linpack: the compute-bound TOP500 benchmark.
fn hpl() -> ApplicationDef {
    ApplicationDef::new("hpl", "High-Performance Linpack benchmark")
        .executable("p", "xhpl -N {problem_size} -NB {block_size}", true)
        .workload("standard", &["p"])
        .workload_variable("problem_size", "40000", "matrix dimension N", &["standard"])
        .workload_variable("block_size", "192", "panel block size NB", &["standard"])
        .figure_of_merit(
            "gflops",
            r"WR\S+\s+\d+\s+\d+\s+[0-9.]+\s+(?P<gf>[0-9.e+]+)",
            "gf",
            "GFLOPS",
        )
        .figure_of_merit("hpl_time", r"Time\s+:\s+(?P<t>[0-9.]+)", "t", "s")
        .success_criteria(
            "passed",
            SuccessMode::StringMatch,
            r"PASSED",
            "{experiment_run_dir}/{experiment_name}.out",
        )
}

/// LULESH shock hydrodynamics proxy application.
fn lulesh() -> ApplicationDef {
    ApplicationDef::new(
        "lulesh",
        "Unstructured Lagrangian shock hydrodynamics proxy",
    )
    .executable("p", "lulesh2.0 -s {size} -i {iterations}", true)
    .workload("standard", &["p"])
    .workload_variable("size", "30", "problem edge length", &["standard"])
    .workload_variable("iterations", "100", "max iterations", &["standard"])
    .figure_of_merit("fom", r"FOM\s+=\s+(?P<fom>[0-9.]+)", "fom", "z/s")
    .figure_of_merit("elapsed", r"Elapsed time\s+=\s+(?P<t>[0-9.]+)", "t", "s")
    .success_criteria(
        "ran",
        SuccessMode::StringMatch,
        r"Run completed",
        "{experiment_run_dir}/{experiment_name}.out",
    )
}
