//! The `application.py` analogue: how experiments run and how their output
//! is evaluated (paper §3.2, Figure 8).

use std::collections::BTreeMap;

/// An executable declaration:
/// `executable('p', 'saxpy -n {n}', use_mpi=True)` (Figure 8, line 4).
#[derive(Debug, Clone)]
pub struct ExecutableDef {
    /// Short handle (`'p'`).
    pub name: String,
    /// Command template with `{variable}` placeholders.
    pub template: String,
    /// Whether the command is launched under the system's MPI launcher.
    pub use_mpi: bool,
}

/// A workload: a named scenario composed of executables
/// (`workload('problem', executables=['p'])`, Figure 8 line 5).
#[derive(Debug, Clone)]
pub struct WorkloadDef {
    pub name: String,
    /// Executable handles run in order.
    pub executables: Vec<String>,
    /// Input files to stage (empty for saxpy; AMG2023 generates its own).
    pub inputs: Vec<String>,
}

/// A workload variable with default
/// (`workload_variable('n', default='1', …)`, Figure 8 lines 6–8).
#[derive(Debug, Clone)]
pub struct WorkloadVariable {
    pub name: String,
    pub default: String,
    pub description: String,
    /// Workloads the variable applies to (empty = all).
    pub workloads: Vec<String>,
}

/// A figure of merit extracted from experiment output
/// (`figure_of_merit("success", fom_regex=…, group_name=…, units=…)`,
/// Figure 8 lines 9–11).
#[derive(Debug, Clone)]
pub struct FomDef {
    pub name: String,
    /// Regex with a named group; applied per line of the output file.
    pub fom_regex: String,
    /// The named group whose text becomes the FOM value.
    pub group_name: String,
    pub units: String,
    /// Output file template (defaults to the experiment's stdout log).
    pub log_file: Option<String>,
}

/// How a success criterion is evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuccessMode {
    /// `mode='string'`: a regex must match somewhere in the file.
    StringMatch,
    /// `mode='fom_comparison'`: a named FOM must satisfy a comparison
    /// (e.g. `> 0`).
    FomComparison,
}

/// A success criterion
/// (`success_criteria('pass', mode='string', match=…, file=…)`,
/// Figure 8 lines 12–14).
#[derive(Debug, Clone)]
pub struct SuccessCriterion {
    pub name: String,
    pub mode: SuccessMode,
    /// For `StringMatch`: the regex. For `FomComparison`: `"<fom> <op> <value>"`.
    pub match_expr: String,
    /// File template, e.g. `{experiment_run_dir}/{experiment_name}.out`.
    pub file: String,
}

/// A complete application definition.
#[derive(Debug, Clone)]
pub struct ApplicationDef {
    pub name: String,
    pub description: String,
    pub executables: Vec<ExecutableDef>,
    pub workloads: Vec<WorkloadDef>,
    pub workload_variables: Vec<WorkloadVariable>,
    pub figures_of_merit: Vec<FomDef>,
    pub success_criteria: Vec<SuccessCriterion>,
    /// The package (by name) whose installation provides the executable.
    pub software: String,
}

impl ApplicationDef {
    /// Starts an application definition (`class Saxpy(SpackApplication)`).
    pub fn new(name: &str, description: &str) -> ApplicationDef {
        ApplicationDef {
            name: name.to_string(),
            description: description.to_string(),
            executables: Vec::new(),
            workloads: Vec::new(),
            workload_variables: Vec::new(),
            figures_of_merit: Vec::new(),
            success_criteria: Vec::new(),
            software: name.to_string(),
        }
    }

    /// `executable('p', 'saxpy -n {n}', use_mpi=True)`.
    pub fn executable(mut self, name: &str, template: &str, use_mpi: bool) -> Self {
        self.executables.push(ExecutableDef {
            name: name.to_string(),
            template: template.to_string(),
            use_mpi,
        });
        self
    }

    /// `workload('problem', executables=['p'])`.
    pub fn workload(mut self, name: &str, executables: &[&str]) -> Self {
        self.workloads.push(WorkloadDef {
            name: name.to_string(),
            executables: executables.iter().map(|s| s.to_string()).collect(),
            inputs: Vec::new(),
        });
        self
    }

    /// `workload_variable('n', default='1', description=…, workloads=[…])`.
    pub fn workload_variable(
        mut self,
        name: &str,
        default: &str,
        description: &str,
        workloads: &[&str],
    ) -> Self {
        self.workload_variables.push(WorkloadVariable {
            name: name.to_string(),
            default: default.to_string(),
            description: description.to_string(),
            workloads: workloads.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// `figure_of_merit("success", fom_regex=…, group_name=…, units=…)`.
    pub fn figure_of_merit(
        mut self,
        name: &str,
        fom_regex: &str,
        group_name: &str,
        units: &str,
    ) -> Self {
        self.figures_of_merit.push(FomDef {
            name: name.to_string(),
            fom_regex: fom_regex.to_string(),
            group_name: group_name.to_string(),
            units: units.to_string(),
            log_file: None,
        });
        self
    }

    /// `success_criteria('pass', mode='string', match=…, file=…)`.
    pub fn success_criteria(
        mut self,
        name: &str,
        mode: SuccessMode,
        match_expr: &str,
        file: &str,
    ) -> Self {
        self.success_criteria.push(SuccessCriterion {
            name: name.to_string(),
            mode,
            match_expr: match_expr.to_string(),
            file: file.to_string(),
        });
        self
    }

    /// Names the backing package if it differs from the application name.
    pub fn software_spec(mut self, package: &str) -> Self {
        self.software = package.to_string();
        self
    }

    /// Looks up a workload.
    pub fn get_workload(&self, name: &str) -> Option<&WorkloadDef> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// Looks up an executable by handle.
    pub fn get_executable(&self, name: &str) -> Option<&ExecutableDef> {
        self.executables.iter().find(|e| e.name == name)
    }

    /// Default variable values applicable to `workload`.
    pub fn defaults_for(&self, workload: &str) -> BTreeMap<String, String> {
        self.workload_variables
            .iter()
            .filter(|v| v.workloads.is_empty() || v.workloads.iter().any(|w| w == workload))
            .map(|v| (v.name.clone(), v.default.clone()))
            .collect()
    }

    /// A deterministic rendering of every result-shaping field of this
    /// definition — executables, workloads, variable defaults, FOM
    /// extraction rules, success criteria, and the backing software
    /// package. Experiment fingerprints hash this text, so editing any of
    /// these (the `application.py` half of "adding a benchmark", §4)
    /// invalidates cached results; cosmetic fields like `description` are
    /// deliberately excluded.
    pub fn fingerprint_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "application {} software {}", self.name, self.software);
        for exe in &self.executables {
            let _ = writeln!(
                out,
                "executable {} mpi={} template {}",
                exe.name, exe.use_mpi, exe.template
            );
        }
        for wl in &self.workloads {
            let _ = writeln!(
                out,
                "workload {} executables [{}] inputs [{}]",
                wl.name,
                wl.executables.join(","),
                wl.inputs.join(",")
            );
        }
        for var in &self.workload_variables {
            let _ = writeln!(
                out,
                "variable {} default {} workloads [{}]",
                var.name,
                var.default,
                var.workloads.join(",")
            );
        }
        for fom in &self.figures_of_merit {
            let _ = writeln!(
                out,
                "fom {} regex {} group {} units {} log {}",
                fom.name,
                fom.fom_regex,
                fom.group_name,
                fom.units,
                fom.log_file.as_deref().unwrap_or("-")
            );
        }
        for crit in &self.success_criteria {
            let _ = writeln!(
                out,
                "criterion {} mode {:?} match {} file {}",
                crit.name, crit.mode, crit.match_expr, crit.file
            );
        }
        out
    }
}

/// A registry of application definitions.
#[derive(Debug, Clone, Default)]
pub struct AppRepo {
    apps: BTreeMap<String, ApplicationDef>,
}

impl AppRepo {
    /// An empty registry.
    pub fn new() -> AppRepo {
        AppRepo::default()
    }

    /// The built-in applications (saxpy, amg2023, stream, osu-bcast, lulesh).
    pub fn builtin() -> AppRepo {
        let mut repo = AppRepo::new();
        for app in crate::apps::builtin() {
            repo.add(app);
        }
        repo
    }

    /// Adds (or replaces) an application.
    pub fn add(&mut self, app: ApplicationDef) {
        self.apps.insert(app.name.clone(), app);
    }

    /// Looks up an application.
    pub fn get(&self, name: &str) -> Option<&ApplicationDef> {
        self.apps.get(name)
    }

    /// All application names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.apps.keys().map(|s| s.as_str())
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}
