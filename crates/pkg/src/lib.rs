//! `benchpark-pkg` — package and application recipe repository.
//!
//! Spack's third primary component (paper §3.1) is *"package files, which
//! define the build space for the package and provide package installation
//! recipes templatized by the concrete spec"*; Ramble mirrors this with
//! `application.py` files describing how experiments run (§3.2, Figure 8).
//! This crate provides both halves:
//!
//! * [`PackageDef`] — the `package.py` analogue: known versions, variants
//!   with defaults, conditional dependencies (`depends_on("cuda", when="+cuda")`),
//!   virtual packages (`mvapich2` *provides* `mpi`), conflicts, and
//!   build-system argument generation (Figure 11's `cmake_args`).
//! * [`ApplicationDef`] — the `application.py` analogue: executables,
//!   workloads, workload variables, figures of merit, and success criteria
//!   (Figure 8, reproduced verbatim for saxpy).
//! * [`Repo`] / [`AppRepo`] — registries with a built-in collection covering
//!   everything the paper's demonstration needs (saxpy, AMG2023, their full
//!   dependency stacks, three MPI implementations, BLAS/LAPACK providers,
//!   CUDA/ROCm, Caliper/Adiak), plus a `repo overlay` mechanism matching
//!   Benchpark's `repo/` directory (Figure 1a lines 41–48).

mod application;
mod apps;
mod package;
mod packages;
mod repo;

pub use application::{
    AppRepo, ApplicationDef, ExecutableDef, FomDef, SuccessCriterion, SuccessMode, WorkloadDef,
    WorkloadVariable,
};
pub use package::{
    BuildSystem, ConflictDef, DepType, DependencyDef, PackageDef, ProvidesDef, VariantDef,
};
pub use repo::Repo;

#[cfg(test)]
mod tests;
