//! The `package.py` analogue: build recipes templatized by concrete specs.

use benchpark_spec::{Spec, VariantValue, Version};

/// Dependency classification, as in Spack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepType {
    /// Needed to build (cmake, compilers) — not part of the runtime closure.
    Build,
    /// Linked against — part of the runtime closure.
    Link,
    /// Needed at run time only (launchers, interpreters).
    Run,
}

/// A declared dependency, optionally conditional on the dependent's spec.
#[derive(Debug, Clone)]
pub struct DependencyDef {
    /// Constraint the dependency must satisfy (`cmake@3.20:`, `mpi`).
    pub spec: Spec,
    /// Dependency type.
    pub dep_type: DepType,
    /// `when=` condition evaluated against the *dependent's* spec
    /// (`when="+cuda"`); `None` means unconditional.
    pub when: Option<Spec>,
}

/// A variant declaration with its default.
#[derive(Debug, Clone)]
pub struct VariantDef {
    pub name: String,
    pub default: VariantValue,
    pub description: String,
    /// Allowed values for single/multi variants (`None` = unrestricted).
    pub allowed: Option<Vec<String>>,
}

/// A virtual package this package provides (`provides("mpi")`).
#[derive(Debug, Clone)]
pub struct ProvidesDef {
    pub virtual_name: String,
    /// Optional condition on the provider's spec.
    pub when: Option<Spec>,
}

/// A declared conflict: spec may not satisfy `conflict` when `when` holds.
#[derive(Debug, Clone)]
pub struct ConflictDef {
    pub conflict: Spec,
    pub when: Option<Spec>,
    pub message: String,
}

/// Build system, which controls how install arguments are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSystem {
    Cmake,
    Autotools,
    Makefile,
    /// No build: metapackages and externally-provided software.
    Bundle,
}

/// A package recipe (the `package.py` analogue).
#[derive(Clone)]
pub struct PackageDef {
    pub name: String,
    pub description: String,
    /// Known versions, newest first. The concretizer prefers the first
    /// non-deprecated entry absent other constraints.
    pub versions: Vec<Version>,
    pub variants: Vec<VariantDef>,
    pub dependencies: Vec<DependencyDef>,
    pub provides: Vec<ProvidesDef>,
    pub conflicts: Vec<ConflictDef>,
    pub build_system: BuildSystem,
    /// Relative cost of building this package from source, in abstract
    /// build-seconds; drives the simulated install engine and the
    /// binary-cache ablation.
    pub build_cost: f64,
    /// Figure 11's `cmake_args(self)`: extra arguments derived from the
    /// concrete spec.
    args_fn: Option<fn(&Spec) -> Vec<String>>,
}

impl std::fmt::Debug for PackageDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackageDef")
            .field("name", &self.name)
            .field("versions", &self.versions)
            .field("variants", &self.variants.len())
            .field("dependencies", &self.dependencies.len())
            .finish()
    }
}

impl PackageDef {
    /// Starts a recipe. Mirrors `class Foo(Package)`.
    pub fn new(name: &str, description: &str) -> PackageDef {
        PackageDef {
            name: name.to_string(),
            description: description.to_string(),
            versions: Vec::new(),
            variants: Vec::new(),
            dependencies: Vec::new(),
            provides: Vec::new(),
            conflicts: Vec::new(),
            build_system: BuildSystem::Cmake,
            build_cost: 10.0,
            args_fn: None,
        }
    }

    /// `version("1.0.0")` — declare in preference order, newest first.
    pub fn version(mut self, v: &str) -> Self {
        self.versions.push(Version::new(v));
        self
    }

    /// `variant("openmp", default=True, description=…)`.
    pub fn variant_bool(mut self, name: &str, default: bool, description: &str) -> Self {
        self.variants.push(VariantDef {
            name: name.to_string(),
            default: VariantValue::Bool(default),
            description: description.to_string(),
            allowed: None,
        });
        self
    }

    /// `variant("build_type", default="Release", values=…)`.
    pub fn variant_single(
        mut self,
        name: &str,
        default: &str,
        allowed: &[&str],
        description: &str,
    ) -> Self {
        self.variants.push(VariantDef {
            name: name.to_string(),
            default: VariantValue::Single(default.to_string()),
            description: description.to_string(),
            allowed: if allowed.is_empty() {
                None
            } else {
                Some(allowed.iter().map(|s| s.to_string()).collect())
            },
        });
        self
    }

    /// `depends_on("cmake@3.20:", type="build")`.
    pub fn depends_on(mut self, spec: &str, dep_type: DepType) -> Self {
        self.dependencies.push(DependencyDef {
            spec: spec.parse().expect("recipe dependency spec must parse"),
            dep_type,
            when: None,
        });
        self
    }

    /// `depends_on("cuda", when="+cuda")`.
    pub fn depends_on_when(mut self, spec: &str, dep_type: DepType, when: &str) -> Self {
        self.dependencies.push(DependencyDef {
            spec: spec.parse().expect("recipe dependency spec must parse"),
            dep_type,
            when: Some(when.parse().expect("recipe when-condition must parse")),
        });
        self
    }

    /// `provides("mpi")`.
    pub fn provides(mut self, virtual_name: &str) -> Self {
        self.provides.push(ProvidesDef {
            virtual_name: virtual_name.to_string(),
            when: None,
        });
        self
    }

    /// `provides("scalapack", when="+scalapack")` — the package provides the
    /// virtual only under the given condition; selecting it as the provider
    /// forces that condition onto its spec.
    pub fn provides_when(mut self, virtual_name: &str, when: &str) -> Self {
        self.provides.push(ProvidesDef {
            virtual_name: virtual_name.to_string(),
            when: Some(when.parse().expect("provides when-condition must parse")),
        });
        self
    }

    /// `conflicts("+cuda", when="+rocm", msg=…)`.
    pub fn conflicts_with(mut self, conflict: &str, when: Option<&str>, message: &str) -> Self {
        self.conflicts.push(ConflictDef {
            conflict: conflict.parse().expect("conflict spec must parse"),
            when: when.map(|w| w.parse().expect("conflict when-spec must parse")),
            message: message.to_string(),
        });
        self
    }

    /// Sets the build system.
    pub fn build_system(mut self, bs: BuildSystem) -> Self {
        self.build_system = bs;
        self
    }

    /// Sets the simulated source-build cost.
    pub fn build_cost(mut self, cost: f64) -> Self {
        self.build_cost = cost;
        self
    }

    /// Installs the `cmake_args` hook (Figure 11).
    pub fn with_args(mut self, f: fn(&Spec) -> Vec<String>) -> Self {
        self.args_fn = Some(f);
        self
    }

    /// The declared default for a variant.
    pub fn variant_default(&self, name: &str) -> Option<&VariantValue> {
        self.variants
            .iter()
            .find(|v| v.name == name)
            .map(|v| &v.default)
    }

    /// True if the recipe declares this variant.
    pub fn has_variant(&self, name: &str) -> bool {
        self.variants.iter().any(|v| v.name == name)
    }

    /// The newest declared version (first entry).
    pub fn preferred_version(&self) -> Option<&Version> {
        self.versions.first()
    }

    /// Versions admitted by a constraint, in declaration (preference) order.
    pub fn admitted_versions<'a>(
        &'a self,
        constraint: &'a benchpark_spec::VersionConstraint,
    ) -> impl Iterator<Item = &'a Version> + 'a {
        self.versions.iter().filter(|v| constraint.contains(v))
    }

    /// Dependencies active for the given (possibly partial) spec: a
    /// conditional dependency applies when the spec *satisfies* its
    /// `when` condition.
    pub fn active_dependencies(&self, spec: &Spec) -> Vec<&DependencyDef> {
        self.dependencies
            .iter()
            .filter(|d| match &d.when {
                None => true,
                Some(cond) => spec.satisfies(cond),
            })
            .collect()
    }

    /// Evaluates declared conflicts against a concrete spec; returns the
    /// messages of violated conflicts.
    pub fn violated_conflicts(&self, spec: &Spec) -> Vec<String> {
        self.conflicts
            .iter()
            .filter(|c| {
                let when_holds = c.when.as_ref().is_none_or(|w| spec.satisfies(w));
                when_holds && spec.satisfies(&c.conflict)
            })
            .map(|c| c.message.clone())
            .collect()
    }

    /// Build-system arguments for a concrete spec (Figure 11's behavior).
    pub fn install_args(&self, spec: &Spec) -> Vec<String> {
        let mut args = Vec::new();
        if self.build_system == BuildSystem::Cmake {
            if let Some(VariantValue::Single(bt)) = spec.variants.get("build_type") {
                args.push(format!("-DCMAKE_BUILD_TYPE={bt}"));
            }
        }
        if let Some(f) = self.args_fn {
            args.extend(f(spec));
        }
        args
    }
}
