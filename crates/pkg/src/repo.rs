//! Package registries with overlay support.

use crate::package::PackageDef;
use std::collections::BTreeMap;

/// A registry of package recipes, name → definition.
///
/// Benchpark keeps a `repo/` directory of overlay recipes that shadow the
/// upstream Spack repository (Figure 1a, lines 41–48); [`Repo::overlay`]
/// models exactly that.
#[derive(Debug, Clone, Default)]
pub struct Repo {
    packages: BTreeMap<String, PackageDef>,
}

impl Repo {
    /// An empty repository.
    pub fn new() -> Repo {
        Repo::default()
    }

    /// The built-in repository with every package the demonstration needs.
    pub fn builtin() -> Repo {
        let mut repo = Repo::new();
        for pkg in crate::packages::builtin() {
            repo.add(pkg);
        }
        repo
    }

    /// Adds (or replaces) a recipe.
    pub fn add(&mut self, pkg: PackageDef) {
        self.packages.insert(pkg.name.clone(), pkg);
    }

    /// Overlays `other` on top of `self`: recipes in `other` shadow ours.
    pub fn overlay(mut self, other: Repo) -> Repo {
        for (name, pkg) in other.packages {
            self.packages.insert(name, pkg);
        }
        self
    }

    /// Looks up a recipe by name.
    pub fn get(&self, name: &str) -> Option<&PackageDef> {
        self.packages.get(name)
    }

    /// True if `name` is a known *virtual* package (has providers but no
    /// recipe of its own).
    pub fn is_virtual(&self, name: &str) -> bool {
        !self.packages.contains_key(name)
            && self
                .packages
                .values()
                .any(|p| p.provides.iter().any(|pr| pr.virtual_name == name))
    }

    /// Recipes providing the virtual package `virtual_name`, sorted by name.
    pub fn providers(&self, virtual_name: &str) -> Vec<&PackageDef> {
        self.packages
            .values()
            .filter(|p| p.provides.iter().any(|pr| pr.virtual_name == virtual_name))
            .collect()
    }

    /// All package names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.packages.keys().map(|s| s.as_str())
    }

    /// Number of recipes.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// True if no recipes are registered.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Iterates over all recipes.
    pub fn iter(&self) -> impl Iterator<Item = &PackageDef> {
        self.packages.values()
    }
}
