//! `benchpark-yamlite` — a YAML-subset parser and emitter.
//!
//! Benchpark's entire configuration surface is YAML: Spack environment manifests
//! (`spack.yaml`), system package/compiler configuration (`packages.yaml`,
//! `compilers.yaml`), Ramble workspace configuration (`ramble.yaml`), scheduler
//! variables (`variables.yaml`), and CI pipelines (`.gitlab-ci.yml`). This crate
//! implements the subset of YAML those files use, so the configuration texts
//! printed in the paper (Figures 3, 4, 9, 10, 12) parse verbatim:
//!
//! * block mappings and block sequences with indentation-based nesting,
//! * sequences at the same indentation level as their parent key,
//! * flow sequences (`['8', '4']`) and flow mappings (`{a: 1}`),
//! * plain, single-quoted and double-quoted scalars,
//! * scalar tag inference (null / bool / int / float / string),
//! * comments and blank lines,
//! * a deterministic emitter that round-trips through the parser.
//!
//! It deliberately does not implement anchors, aliases, tags, multi-document
//! streams, or block scalars — none of which Benchpark configs use.
//!
//! # Example
//!
//! ```
//! use benchpark_yamlite::{parse, Value};
//!
//! let doc = parse("spack:\n  specs: [amg2023+caliper]\n  view: true\n").unwrap();
//! let specs = doc.get_path(&["spack", "specs"]).unwrap();
//! assert_eq!(specs.as_seq().unwrap()[0].as_str(), Some("amg2023+caliper"));
//! assert_eq!(doc.get_path(&["spack", "view"]).unwrap().as_bool(), Some(true));
//! ```

mod emitter;
mod error;
mod json;
mod parser;
mod span;
mod value;

pub use emitter::emit;
pub use error::{ParseError, Result};
pub use json::{emit_json, json_number, json_string, parse_json};
pub use parser::{parse, parse_spanned};
pub use span::{Span, SpannedEntry, SpannedMap, SpannedNode, SpannedValue};
pub use value::{Map, Value};

#[cfg(test)]
mod tests;
