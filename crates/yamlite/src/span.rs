//! Source spans and the span-carrying document model.
//!
//! [`crate::parse_spanned`] returns a [`SpannedValue`] tree in which every
//! node — and every mapping key — remembers the 1-based line/column where it
//! appeared in the source text. Consumers that do not care about positions use
//! [`crate::parse`], which is the same parse with the spans stripped.

use crate::value::{format_float, Map, Value};

/// A 1-based source position (`line:col`) of a parsed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (byte offset within the line, plus one).
    pub col: usize,
}

impl Span {
    /// Creates a span at `line:col`.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parsed YAML value plus the source position it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedValue {
    /// Where the value begins in the source.
    pub span: Span,
    /// The value itself.
    pub node: SpannedNode,
}

/// The span-carrying counterpart of [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedNode {
    /// `null`, `~`, or an empty value position.
    Null,
    /// `true` / `false` plain scalars.
    Bool(bool),
    /// Plain scalars that parse as integers.
    Int(i64),
    /// Plain scalars that parse as floats (but not integers).
    Float(f64),
    /// Everything else, including all quoted scalars.
    Str(String),
    /// Block or flow sequences.
    Seq(Vec<SpannedValue>),
    /// Block or flow mappings.
    Map(SpannedMap),
}

/// One `key: value` pair of a [`SpannedMap`], with the key's own span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedEntry {
    /// The mapping key.
    pub key: String,
    /// Where the key appears in the source.
    pub key_span: Span,
    /// The entry's value.
    pub value: SpannedValue,
}

/// An order-preserving mapping that keeps a span for every key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpannedMap {
    entries: Vec<SpannedEntry>,
}

impl SpannedMap {
    /// Creates an empty map.
    pub fn new() -> SpannedMap {
        SpannedMap::default()
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (the parser guarantees key uniqueness).
    pub fn insert(&mut self, key: impl Into<String>, key_span: Span, value: SpannedValue) {
        self.entries.push(SpannedEntry {
            key: key.into(),
            key_span,
            value,
        });
    }

    /// Looks up a key's value.
    pub fn get(&self, key: &str) -> Option<&SpannedValue> {
        self.entry(key).map(|e| &e.value)
    }

    /// Looks up a key's full entry (including the key span).
    pub fn entry(&self, key: &str) -> Option<&SpannedEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entry(key).is_some()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SpannedEntry> {
        self.entries.iter()
    }
}

impl SpannedValue {
    /// A spanned value with no useful position (used by synthetic documents).
    pub fn detached(node: SpannedNode) -> SpannedValue {
        SpannedValue {
            span: Span::default(),
            node,
        }
    }

    /// Returns the string content for string scalars.
    pub fn as_str(&self) -> Option<&str> {
        match &self.node {
            SpannedNode::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders any scalar as a string (`null` becomes an empty string).
    /// Sequences and mappings return `None`.
    pub fn scalar_string(&self) -> Option<String> {
        match &self.node {
            SpannedNode::Null => Some(String::new()),
            SpannedNode::Bool(b) => Some(b.to_string()),
            SpannedNode::Int(i) => Some(i.to_string()),
            SpannedNode::Float(f) => Some(format_float(*f)),
            SpannedNode::Str(s) => Some(s.clone()),
            SpannedNode::Seq(_) | SpannedNode::Map(_) => None,
        }
    }

    /// Returns the boolean for bool scalars.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.node {
            SpannedNode::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer for int scalars.
    pub fn as_int(&self) -> Option<i64> {
        match &self.node {
            SpannedNode::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the element list for sequences.
    pub fn as_seq(&self) -> Option<&[SpannedValue]> {
        match &self.node {
            SpannedNode::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map for mappings.
    pub fn as_map(&self) -> Option<&SpannedMap> {
        match &self.node {
            SpannedNode::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True for null nodes.
    pub fn is_null(&self) -> bool {
        matches!(self.node, SpannedNode::Null)
    }

    /// Map lookup shorthand; `None` for non-maps.
    pub fn get(&self, key: &str) -> Option<&SpannedValue> {
        self.as_map()?.get(key)
    }

    /// Walks a chain of mapping keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&SpannedValue> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// Treats the value as a list of strings with the span of each element: a
    /// sequence of scalars yields its scalar renderings, a single scalar
    /// yields a one-element list. Mapping elements yield `None`.
    pub fn string_list(&self) -> Option<Vec<(String, Span)>> {
        match &self.node {
            SpannedNode::Seq(items) => items
                .iter()
                .map(|v| v.scalar_string().map(|s| (s, v.span)))
                .collect(),
            _ => Some(vec![(self.scalar_string()?, self.span)]),
        }
    }

    /// Strips the spans, producing the plain [`Value`] tree.
    pub fn into_value(self) -> Value {
        match self.node {
            SpannedNode::Null => Value::Null,
            SpannedNode::Bool(b) => Value::Bool(b),
            SpannedNode::Int(i) => Value::Int(i),
            SpannedNode::Float(f) => Value::Float(f),
            SpannedNode::Str(s) => Value::Str(s),
            SpannedNode::Seq(items) => {
                Value::Seq(items.into_iter().map(SpannedValue::into_value).collect())
            }
            SpannedNode::Map(map) => {
                let mut out = Map::new();
                for entry in map.entries {
                    out.insert(entry.key, entry.value.into_value());
                }
                Value::Map(out)
            }
        }
    }

    /// Strips the spans without consuming the tree.
    pub fn to_value(&self) -> Value {
        self.clone().into_value()
    }
}
