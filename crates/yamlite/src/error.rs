//! Parse errors with line positions.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while parsing a YAML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}
