//! Indentation-based recursive-descent parser for the YAML subset.
//!
//! The parser builds a [`SpannedValue`] tree natively — every node and every
//! mapping key records the 1-based `line:col` where it begins — and
//! [`parse`] is simply [`parse_spanned`] with the spans stripped.

use crate::error::{ParseError, Result};
use crate::span::{Span, SpannedMap, SpannedNode, SpannedValue};
use crate::value::Value;

/// Parses a YAML document into a [`Value`].
///
/// An empty document (or one containing only comments) parses to
/// [`Value::Null`].
pub fn parse(input: &str) -> Result<Value> {
    parse_spanned(input).map(SpannedValue::into_value)
}

/// Parses a YAML document into a [`SpannedValue`] carrying source positions.
///
/// An empty document (or one containing only comments) parses to a null node
/// with a default span.
pub fn parse_spanned(input: &str) -> Result<SpannedValue> {
    let lines = preprocess(input)?;
    if lines.is_empty() {
        return Ok(SpannedValue::detached(SpannedNode::Null));
    }
    // A document whose single line is neither a sequence item nor a mapping
    // entry is a bare scalar (or flow collection) document.
    if lines.len() == 1
        && !is_seq_item(lines[0].text)
        && split_key(lines[0].text, lines[0].no, lines[0].indent + 1).is_err()
    {
        return parse_scalar_or_flow(lines[0].text, lines[0].no, lines[0].indent + 1);
    }
    let mut pos = 0;
    let value = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos < lines.len() {
        return Err(ParseError::new(
            lines[pos].no,
            format!(
                "trailing content with unexpected indentation: {:?}",
                lines[pos].text
            ),
        ));
    }
    Ok(value)
}

/// One significant (non-blank, non-comment) line of input, borrowed from the
/// source text — preprocessing a document allocates only the `Vec`, never a
/// `String` per line.
#[derive(Debug)]
struct Line<'a> {
    /// 1-based source line number.
    no: usize,
    /// Number of leading spaces.
    indent: usize,
    /// Content with indentation and trailing comment removed.
    text: &'a str,
}

/// An inline mapping value: its text (borrowed from the source line) plus
/// the 1-based column it starts at.
struct Inline<'a> {
    text: &'a str,
    col: usize,
}

/// Strips comments/blank lines and records indentation.
fn preprocess(input: &str) -> Result<Vec<Line<'_>>> {
    let mut out = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        if raw[indent..].starts_with('\t') {
            return Err(ParseError::new(no, "tabs are not allowed in indentation"));
        }
        let stripped = strip_comment(&raw[indent..]);
        let text = stripped.trim_end();
        if text.is_empty() {
            continue;
        }
        if text == "---" && out.is_empty() {
            continue; // tolerate a leading document marker
        }
        out.push(Line { no, indent, text });
    }
    Ok(out)
}

/// Removes a trailing `# comment`. A `#` begins a comment only when it is the
/// first character or preceded by whitespace, and only outside quotes.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => {
                // skip escaped quotes inside double-quoted strings
                if in_double && i > 0 && bytes[i - 1] == b'\\' {
                } else {
                    in_double = !in_double;
                }
            }
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses the block starting at `pos`, whose lines are indented `indent`.
fn parse_block(lines: &[Line<'_>], pos: &mut usize, indent: usize) -> Result<SpannedValue> {
    let line = &lines[*pos];
    if line.indent != indent {
        return Err(ParseError::new(
            line.no,
            format!("expected indentation {indent}, found {}", line.indent),
        ));
    }
    if is_seq_item(line.text) {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent, None)
    }
}

fn is_seq_item(text: &str) -> bool {
    text == "-" || text.starts_with("- ")
}

/// An already-extracted first entry for a mapping that begins inline inside a
/// sequence item (e.g. `- key: value`).
struct FirstEntry<'a> {
    key: String,
    key_span: Span,
    inline: Option<Inline<'a>>,
    no: usize,
}

/// Parses a block mapping at `indent`. If `first` is given, it is an
/// already-extracted first entry (used for mappings that begin inline inside a
/// sequence item, e.g. `- key: value`).
fn parse_mapping(
    lines: &[Line<'_>],
    pos: &mut usize,
    indent: usize,
    first: Option<FirstEntry<'_>>,
) -> Result<SpannedValue> {
    let mut map = SpannedMap::new();
    let mut map_span = Span::new(lines.get(*pos).map(|l| l.no).unwrap_or(0), indent + 1);

    if let Some(entry) = first {
        map_span = entry.key_span;
        let value = mapping_value(lines, pos, indent, entry.inline, entry.no, entry.key_span)?;
        map.insert(entry.key, entry.key_span, value);
    }

    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent || is_seq_item(line.text) {
            break;
        }
        let no = line.no;
        let (key, key_span, inline) = split_key(line.text, no, line.indent + 1)?;
        *pos += 1;
        let value = mapping_value(lines, pos, indent, inline, no, key_span)?;
        if map.contains_key(&key) {
            return Err(ParseError::new(
                no,
                format!("duplicate mapping key {key:?}"),
            ));
        }
        if map.is_empty() {
            map_span = key_span;
        }
        map.insert(key, key_span, value);
    }
    Ok(SpannedValue {
        span: map_span,
        node: SpannedNode::Map(map),
    })
}

/// Parses the value of a mapping entry whose key line has been consumed.
fn mapping_value(
    lines: &[Line<'_>],
    pos: &mut usize,
    key_indent: usize,
    inline: Option<Inline<'_>>,
    no: usize,
    key_span: Span,
) -> Result<SpannedValue> {
    if let Some(inline) = inline {
        return parse_scalar_or_flow(inline.text, no, inline.col);
    }
    // No inline value: the value is a nested block (deeper indent), a sequence
    // at the same indent as the key (YAML permits this), or null.
    if *pos < lines.len() {
        let next = &lines[*pos];
        if next.indent > key_indent {
            return parse_block(lines, pos, next.indent);
        }
        if next.indent == key_indent && is_seq_item(next.text) {
            return parse_sequence(lines, pos, key_indent);
        }
    }
    Ok(SpannedValue {
        span: key_span,
        node: SpannedNode::Null,
    })
}

/// Parses a block sequence at `indent`.
fn parse_sequence(lines: &[Line<'_>], pos: &mut usize, indent: usize) -> Result<SpannedValue> {
    let mut items = Vec::new();
    let seq_span = Span::new(lines[*pos].no, indent + 1);
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent || !is_seq_item(line.text) {
            break;
        }
        let no = line.no;
        let content = if line.text == "-" {
            ""
        } else {
            &line.text[2..]
        };
        let content = content.trim_start();
        // Column where the item's own content begins; an inline mapping that
        // starts on the `- ` line continues at this indentation.
        let item_indent = line.indent + (line.text.len() - content.len());
        let item_col = item_indent + 1;
        *pos += 1;

        if content.is_empty() {
            // `-` alone: nested block on following deeper-indented lines.
            if *pos < lines.len() && lines[*pos].indent > indent {
                items.push(parse_block(lines, pos, lines[*pos].indent)?);
            } else {
                items.push(SpannedValue {
                    span: Span::new(no, indent + 1),
                    node: SpannedNode::Null,
                });
            }
        } else if content.starts_with(['[', '{']) {
            // flow collections are values, never `key: value` entries
            items.push(parse_scalar_or_flow(content, no, item_col)?);
        } else if let Ok((key, key_span, inline)) = split_key(content, no, item_col) {
            // `- key: …` starts a mapping whose entries align at item_indent.
            items.push(parse_mapping(
                lines,
                pos,
                item_indent,
                Some(FirstEntry {
                    key,
                    key_span,
                    inline,
                    no,
                }),
            )?);
        } else {
            items.push(parse_scalar_or_flow(content, no, item_col)?);
        }
    }
    Ok(SpannedValue {
        span: seq_span,
        node: SpannedNode::Seq(items),
    })
}

/// Splits a mapping line into `(key, key_span, inline_value)`. `base_col` is
/// the 1-based column of `text`'s first byte in the source line. Fails if the
/// line does not contain a top-level `": "` (or trailing `:`).
fn split_key<'a>(
    text: &'a str,
    no: usize,
    base_col: usize,
) -> Result<(String, Span, Option<Inline<'a>>)> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    // Flow-collection nesting depth: a `:` inside `[...]`/`{...}` belongs to
    // the flow collection, not to this line's `key: value` split. This is what
    // lets a whole-document flow mapping (`{a: 1, b: 2}`) parse as one value.
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single && !in_double && depth == 0 => {
                let at_end = i + 1 == bytes.len();
                if at_end || bytes[i + 1] == b' ' {
                    let raw_key = text[..i].trim();
                    if raw_key.is_empty() {
                        return Err(ParseError::new(no, "empty mapping key"));
                    }
                    let key = unquote(raw_key, no)?;
                    let key_span = Span::new(no, base_col);
                    let rest = if at_end { "" } else { &text[i + 2..] };
                    let lead = rest.len() - rest.trim_start().len();
                    let rest = rest.trim();
                    let inline = if rest.is_empty() {
                        None
                    } else {
                        Some(Inline {
                            text: rest,
                            col: base_col + i + 2 + lead,
                        })
                    };
                    return Ok((key, key_span, inline));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err(ParseError::new(
        no,
        format!("expected `key: value`, found {text:?}"),
    ))
}

/// Parses an inline value: flow sequence, flow mapping, quoted or plain scalar.
/// `col` is the 1-based column of `text`'s first byte in the source line.
fn parse_scalar_or_flow(text: &str, no: usize, col: usize) -> Result<SpannedValue> {
    let lead = text.len() - text.trim_start().len();
    let col = col + lead;
    let text = text.trim();
    let span = Span::new(no, col);
    if text.starts_with('[') {
        let inner = flow_body(text, '[', ']', no)?;
        let mut items = Vec::new();
        for (offset, part) in split_flow(inner) {
            if part.trim().is_empty() {
                continue;
            }
            // inner starts one byte after the `[`
            items.push(parse_scalar_or_flow(part, no, col + 1 + offset)?);
        }
        return Ok(SpannedValue {
            span,
            node: SpannedNode::Seq(items),
        });
    }
    if text.starts_with('{') {
        let inner = flow_body(text, '{', '}', no)?;
        let mut map = SpannedMap::new();
        for (offset, part) in split_flow(inner) {
            let lead = part.len() - part.trim_start().len();
            let part_col = col + 1 + offset + lead;
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, key_span, inline) =
                split_key(part, no, part_col).or_else(|_| flow_entry_key(part, no, part_col))?;
            if map.contains_key(&key) {
                return Err(ParseError::new(
                    no,
                    format!("duplicate mapping key {key:?} in flow mapping"),
                ));
            }
            let value = match inline {
                Some(inline) => parse_scalar_or_flow(inline.text, no, inline.col)?,
                None => SpannedValue {
                    span: key_span,
                    node: SpannedNode::Null,
                },
            };
            map.insert(key, key_span, value);
        }
        return Ok(SpannedValue {
            span,
            node: SpannedNode::Map(map),
        });
    }
    scalar(text, no, col)
}

/// `key:value` (no space) is allowed inside flow mappings. `base_col` is the
/// 1-based column of `part`'s first byte.
fn flow_entry_key<'a>(
    part: &'a str,
    no: usize,
    base_col: usize,
) -> Result<(String, Span, Option<Inline<'a>>)> {
    if let Some(idx) = part.find(':') {
        let key = unquote(part[..idx].trim(), no)?;
        let rest = &part[idx + 1..];
        let lead = rest.len() - rest.trim_start().len();
        let rest = rest.trim();
        let inline = if rest.is_empty() {
            None
        } else {
            Some(Inline {
                text: rest,
                col: base_col + idx + 1 + lead,
            })
        };
        Ok((key, Span::new(no, base_col), inline))
    } else {
        Err(ParseError::new(
            no,
            format!("expected `key: value` in flow mapping, found {part:?}"),
        ))
    }
}

/// Validates matching flow delimiters and returns the interior text.
fn flow_body(text: &str, open: char, close: char, no: usize) -> Result<&str> {
    if !text.ends_with(close) {
        return Err(ParseError::new(
            no,
            format!(
                "flow collection starting with `{open}` must close with `{close}` on the same line"
            ),
        ));
    }
    Ok(&text[open.len_utf8()..text.len() - close.len_utf8()])
}

/// Splits flow-collection contents on top-level commas, returning each part
/// with its byte offset within `inner`.
fn split_flow(inner: &str) -> Vec<(usize, &str)> {
    let bytes = inner.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_single = false;
    let mut in_double = false;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b',' if depth == 0 && !in_single && !in_double => {
                parts.push((start, &inner[start..i]));
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push((start, &inner[start..]));
    parts
}

/// Parses a scalar, inferring null/bool/int/float for plain (unquoted) text.
fn scalar(text: &str, no: usize, col: usize) -> Result<SpannedValue> {
    let node = if text.starts_with('\'') || text.starts_with('"') {
        SpannedNode::Str(unquote(text, no)?)
    } else {
        match infer_plain(text) {
            Value::Null => SpannedNode::Null,
            Value::Bool(b) => SpannedNode::Bool(b),
            Value::Int(i) => SpannedNode::Int(i),
            Value::Float(f) => SpannedNode::Float(f),
            Value::Str(s) => SpannedNode::Str(s),
            Value::Seq(_) | Value::Map(_) => unreachable!("plain scalars are never collections"),
        }
    };
    Ok(SpannedValue {
        span: Span::new(no, col),
        node,
    })
}

/// Plain-scalar tag inference.
pub(crate) fn infer_plain(text: &str) -> Value {
    match text {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if looks_like_int(text) {
        if let Ok(i) = text.parse::<i64>() {
            return Value::Int(i);
        }
    }
    if looks_like_float(text) {
        if let Ok(f) = text.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Str(text.to_string())
}

fn looks_like_int(text: &str) -> bool {
    let t = text.strip_prefix(['+', '-']).unwrap_or(text);
    !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
}

fn looks_like_float(text: &str) -> bool {
    let t = text.strip_prefix(['+', '-']).unwrap_or(text);
    // Require a digit and one of . / e / E; rules out versions like `2.3.7`
    // (which fail f64 parsing) and words like `e`.
    t.bytes().any(|b| b.is_ascii_digit())
        && t.bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
}

/// Removes surrounding quotes and processes escapes. Unquoted text is returned
/// verbatim.
fn unquote(text: &str, no: usize) -> Result<String> {
    if let Some(body) = text.strip_prefix('\'') {
        let body = body
            .strip_suffix('\'')
            .ok_or_else(|| ParseError::new(no, "unterminated single-quoted scalar"))?;
        return Ok(body.replace("''", "'"));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| ParseError::new(no, "unterminated double-quoted scalar"))?;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('0') => out.push('\0'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some(other) => {
                        return Err(ParseError::new(no, format!("unknown escape `\\{other}`")))
                    }
                    None => return Err(ParseError::new(no, "trailing backslash in scalar")),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(out);
    }
    Ok(text.to_string())
}
