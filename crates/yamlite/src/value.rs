//! The in-memory document model.

use std::fmt;

/// An order-preserving mapping from string keys to values.
///
/// YAML mappings in configuration files are semantically ordered (e.g. config
/// scope precedence, experiment declaration order), so we keep insertion order
/// rather than using a hash map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key, returning the first matching value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts or replaces `key`, preserving the position of an existing key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.get_mut(&key) {
            *slot = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Deep-merges `other` into `self`: nested maps merge recursively, any
    /// other kind of value in `other` replaces the existing value. This is the
    /// semantic Spack uses when layering configuration scopes.
    pub fn merge_from(&mut self, other: &Map) {
        for (k, v) in other.iter() {
            match (self.get_mut(k), v) {
                (Some(Value::Map(dst)), Value::Map(src)) => dst.merge_from(src),
                (Some(slot), _) => *slot = v.clone(),
                (None, _) => self.entries.push((k.clone(), v.clone())),
            }
        }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, `~`, or an empty value position.
    Null,
    /// `true` / `false` plain scalars.
    Bool(bool),
    /// Plain scalars that parse as integers.
    Int(i64),
    /// Plain scalars that parse as floats (but not integers).
    Float(f64),
    /// Everything else, including all quoted scalars.
    Str(String),
    /// Block or flow sequences.
    Seq(Vec<Value>),
    /// Block or flow mappings.
    Map(Map),
}

impl Value {
    /// Returns the string content for string scalars.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders any scalar as a string (`null` becomes an empty string).
    /// Sequences and mappings return `None`.
    pub fn scalar_string(&self) -> Option<String> {
        match self {
            Value::Null => Some(String::new()),
            Value::Bool(b) => Some(b.to_string()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(format_float(*f)),
            Value::Str(s) => Some(s.clone()),
            Value::Seq(_) | Value::Map(_) => None,
        }
    }

    /// Returns the boolean for bool scalars.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer for int scalars.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float for float *or* int scalars.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the element list for sequences.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map for mappings.
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable map access.
    pub fn as_map_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Map lookup shorthand; `None` for non-maps.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.get(key)
    }

    /// Walks a chain of mapping keys: `doc.get_path(&["ramble", "variables"])`.
    pub fn get_path(&self, path: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Treats the value as a list of strings: a sequence of scalars yields its
    /// scalar renderings, a single scalar yields a one-element list.
    /// Mapping elements yield `None`.
    pub fn string_list(&self) -> Option<Vec<String>> {
        match self {
            Value::Seq(items) => items.iter().map(|v| v.scalar_string()).collect(),
            other => Some(vec![other.scalar_string()?]),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::emit(self))
    }
}

/// Formats a float so that it round-trips through the scalar parser as a float
/// (always keeps a decimal point or exponent).
pub(crate) fn format_float(f: f64) -> String {
    if f.is_finite() && f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}
