//! Unit, golden, and property tests for the YAML subset.

use crate::{emit, parse, Map, Value};

fn s(v: &str) -> Value {
    Value::str(v)
}

#[test]
fn empty_document_is_null() {
    assert_eq!(parse("").unwrap(), Value::Null);
    assert_eq!(parse("\n\n# only comments\n").unwrap(), Value::Null);
}

#[test]
fn scalar_inference() {
    let doc = parse("a: 3\nb: 3.5\nc: true\nd: null\ne: hello\nf: '3'\ng: 2.3.7\n").unwrap();
    assert_eq!(doc.get("a").unwrap().as_int(), Some(3));
    assert_eq!(doc.get("b").unwrap().as_float(), Some(3.5));
    assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
    assert!(doc.get("d").unwrap().is_null());
    assert_eq!(doc.get("e").unwrap().as_str(), Some("hello"));
    // quoted numbers stay strings; versions with two dots stay strings
    assert_eq!(doc.get("f").unwrap().as_str(), Some("3"));
    assert_eq!(doc.get("g").unwrap().as_str(), Some("2.3.7"));
}

#[test]
fn negative_and_signed_numbers() {
    let doc = parse("a: -7\nb: +4\nc: -0.5\n").unwrap();
    assert_eq!(doc.get("a").unwrap().as_int(), Some(-7));
    assert_eq!(doc.get("b").unwrap().as_int(), Some(4));
    assert_eq!(doc.get("c").unwrap().as_float(), Some(-0.5));
}

#[test]
fn nested_mappings() {
    let doc = parse("a:\n  b:\n    c: 1\n  d: 2\n").unwrap();
    assert_eq!(doc.get_path(&["a", "b", "c"]).unwrap().as_int(), Some(1));
    assert_eq!(doc.get_path(&["a", "d"]).unwrap().as_int(), Some(2));
}

#[test]
fn block_sequences() {
    let doc = parse("list:\n  - one\n  - two\n").unwrap();
    let seq = doc.get("list").unwrap().as_seq().unwrap();
    assert_eq!(seq, &[s("one"), s("two")]);
}

#[test]
fn sequence_at_key_indent() {
    // YAML permits sequence items at the same indentation as the parent key.
    let doc = parse("list:\n- one\n- two\nafter: 3\n").unwrap();
    let seq = doc.get("list").unwrap().as_seq().unwrap();
    assert_eq!(seq.len(), 2);
    assert_eq!(doc.get("after").unwrap().as_int(), Some(3));
}

#[test]
fn flow_sequences() {
    let doc = parse("a: ['8', '4']\nb: [1, 2, 3]\nc: []\n").unwrap();
    assert_eq!(doc.get("a").unwrap().as_seq().unwrap(), &[s("8"), s("4")]);
    assert_eq!(
        doc.get("b").unwrap().as_seq().unwrap(),
        &[Value::Int(1), Value::Int(2), Value::Int(3)]
    );
    assert!(doc.get("c").unwrap().as_seq().unwrap().is_empty());
}

#[test]
fn nested_flow() {
    let doc = parse("a: [[1, 2], ['x', 'y']]\n").unwrap();
    let outer = doc.get("a").unwrap().as_seq().unwrap();
    assert_eq!(outer[0].as_seq().unwrap()[1].as_int(), Some(2));
    assert_eq!(outer[1].as_seq().unwrap()[0].as_str(), Some("x"));
}

#[test]
fn flow_mapping() {
    let doc = parse("m: {a: 1, b: 'two'}\n").unwrap();
    assert_eq!(doc.get_path(&["m", "a"]).unwrap().as_int(), Some(1));
    assert_eq!(doc.get_path(&["m", "b"]).unwrap().as_str(), Some("two"));
}

#[test]
fn seq_of_maps_inline_first_key() {
    let doc = parse(
        "externals:\n- spec: mkl@2022.1.0\n  prefix: /opt/mkl\n- spec: mvapich2@2.3.7\n  prefix: /opt/mvapich2\n",
    )
    .unwrap();
    let seq = doc.get("externals").unwrap().as_seq().unwrap();
    assert_eq!(seq.len(), 2);
    assert_eq!(seq[0].get("spec").unwrap().as_str(), Some("mkl@2022.1.0"));
    assert_eq!(
        seq[1].get("prefix").unwrap().as_str(),
        Some("/opt/mvapich2")
    );
}

#[test]
fn seq_item_with_nested_seq_value() {
    // The `matrices` construct from Figure 10.
    let text = "matrices:\n- size_threads:\n  - n\n  - n_threads\n";
    let doc = parse(text).unwrap();
    let matrices = doc.get("matrices").unwrap().as_seq().unwrap();
    let m0 = matrices[0].as_map().unwrap();
    let vars = m0.get("size_threads").unwrap().as_seq().unwrap();
    assert_eq!(vars, &[s("n"), s("n_threads")]);
}

#[test]
fn comments_are_stripped() {
    let doc = parse("a: 1 # trailing\n# full line\nb: 'with # inside'\n").unwrap();
    assert_eq!(doc.get("a").unwrap().as_int(), Some(1));
    assert_eq!(doc.get("b").unwrap().as_str(), Some("with # inside"));
}

#[test]
fn quoting_and_escapes() {
    let doc = parse("a: 'it''s'\nb: \"tab\\there\"\n").unwrap();
    assert_eq!(doc.get("a").unwrap().as_str(), Some("it's"));
    assert_eq!(doc.get("b").unwrap().as_str(), Some("tab\there"));
}

#[test]
fn keys_with_braces() {
    // Ramble experiment-name templates use `{var}` inside mapping keys.
    let doc =
        parse("saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n  variables:\n    n: 1\n").unwrap();
    let map = doc.as_map().unwrap();
    assert_eq!(
        map.keys().next().unwrap(),
        "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}"
    );
}

#[test]
fn null_values_for_bare_keys() {
    let doc = parse("a:\nb: 1\n").unwrap();
    assert!(doc.get("a").unwrap().is_null());
    assert_eq!(doc.get("b").unwrap().as_int(), Some(1));
}

#[test]
fn duplicate_keys_rejected() {
    let err = parse("a: 1\na: 2\n").unwrap_err();
    assert!(err.message.contains("duplicate"));
    assert_eq!(err.line, 2);
}

#[test]
fn tabs_rejected() {
    assert!(parse("a:\n\tb: 1\n").is_err());
}

#[test]
fn unterminated_quote_rejected() {
    assert!(parse("a: 'oops\n").is_err());
}

#[test]
fn unclosed_flow_rejected() {
    assert!(parse("a: [1, 2\n").is_err());
}

#[test]
fn bad_indent_rejected() {
    assert!(parse("a: 1\n   b: 2\n").is_err());
}

#[test]
fn map_merge_semantics() {
    let mut base =
        parse("packages:\n  mpi:\n    buildable: true\n  blas:\n    version: 1\n").unwrap();
    let over =
        parse("packages:\n  mpi:\n    buildable: false\n  lapack:\n    version: 2\n").unwrap();
    base.as_map_mut()
        .unwrap()
        .merge_from(over.as_map().unwrap());
    assert_eq!(
        base.get_path(&["packages", "mpi", "buildable"])
            .unwrap()
            .as_bool(),
        Some(false)
    );
    assert_eq!(
        base.get_path(&["packages", "blas", "version"])
            .unwrap()
            .as_int(),
        Some(1)
    );
    assert_eq!(
        base.get_path(&["packages", "lapack", "version"])
            .unwrap()
            .as_int(),
        Some(2)
    );
}

#[test]
fn string_list_helper() {
    let doc = parse("a: [x, y]\nb: single\n").unwrap();
    assert_eq!(
        doc.get("a").unwrap().string_list().unwrap(),
        vec!["x".to_string(), "y".to_string()]
    );
    assert_eq!(
        doc.get("b").unwrap().string_list().unwrap(),
        vec!["single".to_string()]
    );
}

// ---------------------------------------------------------------------------
// Golden tests: the exact configuration texts from the paper's figures.
// ---------------------------------------------------------------------------

/// Figure 3: a simple Spack environment manifest.
#[test]
fn golden_fig3_spack_manifest() {
    let text =
        "spack:\n  specs: [amg2023+caliper]\n  concretizer:\n    unify: true\n  view: true\n";
    let doc = parse(text).unwrap();
    assert_eq!(
        doc.get_path(&["spack", "specs"]).unwrap().as_seq().unwrap()[0].as_str(),
        Some("amg2023+caliper")
    );
    assert_eq!(
        doc.get_path(&["spack", "concretizer", "unify"])
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        doc.get_path(&["spack", "view"]).unwrap().as_bool(),
        Some(true)
    );
}

/// Figure 4: system packages.yaml with externals.
#[test]
fn golden_fig4_packages_externals() {
    let text = r#"packages:
  blas:
    externals:
    - spec: intel-oneapi-mkl@2022.1.0
      prefix: /path/to/intel-oneapi-mkl
    buildable: false
  mpi:
    externals:
    - spec: mvapich2@2.3.7-gcc12.1.1-magic
      prefix: /path/to/mvapich2
    buildable: false
"#;
    let doc = parse(text).unwrap();
    let blas = doc.get_path(&["packages", "blas"]).unwrap();
    assert_eq!(blas.get("buildable").unwrap().as_bool(), Some(false));
    let ext = blas.get("externals").unwrap().as_seq().unwrap();
    assert_eq!(
        ext[0].get("spec").unwrap().as_str(),
        Some("intel-oneapi-mkl@2022.1.0")
    );
    let mpi_ext = doc
        .get_path(&["packages", "mpi", "externals"])
        .unwrap()
        .as_seq()
        .unwrap();
    assert_eq!(
        mpi_ext[0].get("spec").unwrap().as_str(),
        Some("mvapich2@2.3.7-gcc12.1.1-magic")
    );
}

/// Figure 9: Ramble spack section (compiler / package definitions).
#[test]
fn golden_fig9_ramble_spack_section() {
    let text = r#"spack:
  packages:
    default-compiler:
      spack_spec: gcc@12.1.1
    default-mpi:
      spack_spec: mvapich2@2.3.7-gcc12.1.1
    gcc1211:
      spack_spec: gcc@12.1.1
    lapack:
      spack_spec: intel-oneapi-mkl@2022.1.0
    mpi-compilers:
      spack_spec: mvapich2@2.3.7-compilers
"#;
    let doc = parse(text).unwrap();
    let pkgs = doc
        .get_path(&["spack", "packages"])
        .unwrap()
        .as_map()
        .unwrap();
    assert_eq!(pkgs.len(), 5);
    assert_eq!(
        pkgs.get("default-mpi")
            .unwrap()
            .get("spack_spec")
            .unwrap()
            .as_str(),
        Some("mvapich2@2.3.7-gcc12.1.1")
    );
}

/// Figure 10: the full ramble.yaml (experiments + matrices).
#[test]
fn golden_fig10_ramble_yaml() {
    let text = r#"ramble:
  include:
  - ./configs/spack.yaml
  - ./configs/variables.yaml
  config:
    deprecated: true
    spack_flags:
      install: '--add --keep-stage'
      concretize: '-U -f'
  applications:
    saxpy:
      workloads:
        problem:
          env_vars:
            set:
              OMP_NUM_THREADS: '{n_threads}'
          variables:
            n_ranks: '8'
            batch_time: '120'
          experiments:
            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:
              variables:
                processes_per_node: ['8', '4']
                n_nodes: ['1', '2']
                n_threads: ['2', '4']
                n: ['512', '1024']
              matrices:
              - size_threads:
                - n
                - n_threads
  spack:
    packages:
      saxpy:
        spack_spec: saxpy@1.0.0 +openmp ^cmake@3.23.1
        compiler: default-compiler
    environments:
      saxpy:
        packages:
        - default-mpi
        - saxpy
"#;
    let doc = parse(text).unwrap();
    let workload = doc
        .get_path(&["ramble", "applications", "saxpy", "workloads", "problem"])
        .unwrap();
    assert_eq!(
        workload
            .get_path(&["env_vars", "set", "OMP_NUM_THREADS"])
            .unwrap()
            .as_str(),
        Some("{n_threads}")
    );
    let exp = workload
        .get_path(&["experiments", "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}"])
        .unwrap();
    assert_eq!(
        exp.get_path(&["variables", "n"])
            .unwrap()
            .string_list()
            .unwrap(),
        vec!["512", "1024"]
    );
    let matrices = exp.get("matrices").unwrap().as_seq().unwrap();
    let m0 = matrices[0]
        .get("size_threads")
        .unwrap()
        .string_list()
        .unwrap();
    assert_eq!(m0, vec!["n", "n_threads"]);
    assert_eq!(
        doc.get_path(&["ramble", "spack", "packages", "saxpy", "spack_spec"])
            .unwrap()
            .as_str(),
        Some("saxpy@1.0.0 +openmp ^cmake@3.23.1")
    );
    let env_pkgs = doc
        .get_path(&["ramble", "spack", "environments", "saxpy", "packages"])
        .unwrap()
        .string_list()
        .unwrap();
    assert_eq!(env_pkgs, vec!["default-mpi", "saxpy"]);
}

/// Figure 12: variables.yaml with scheduler and launcher commands.
#[test]
fn golden_fig12_variables_yaml() {
    let text = r#"variables:
  mpi_command: 'srun -N {n_nodes} -n {n_ranks}'
  batch_submit: 'sbatch {execute_experiment}'
  batch_nodes: '#SBATCH -N {n_nodes}'
  batch_ranks: '#SBATCH -n {n_ranks}'
  batch_timeout: '#SBATCH -t {batch_time}:00'
  compilers: [gcc1211, intel202160classic]
"#;
    let doc = parse(text).unwrap();
    let vars = doc.get("variables").unwrap();
    assert_eq!(
        vars.get("mpi_command").unwrap().as_str(),
        Some("srun -N {n_nodes} -n {n_ranks}")
    );
    // `#SBATCH` lines are quoted so they are not comments.
    assert_eq!(
        vars.get("batch_nodes").unwrap().as_str(),
        Some("#SBATCH -N {n_nodes}")
    );
    assert_eq!(
        vars.get("compilers").unwrap().string_list().unwrap(),
        vec!["gcc1211", "intel202160classic"]
    );
}

// ---------------------------------------------------------------------------
// Span tests: parse_spanned records 1-based line/col for nodes and keys.
// ---------------------------------------------------------------------------

#[test]
fn spans_for_nested_mappings() {
    let text = "a:\n  b:\n    c: 1\n  d: two\n";
    let doc = crate::parse_spanned(text).unwrap();
    let root = doc.as_map().unwrap();
    let a = root.entry("a").unwrap();
    assert_eq!(a.key_span, crate::Span::new(1, 1));
    let b = a.value.as_map().unwrap().entry("b").unwrap();
    assert_eq!(b.key_span, crate::Span::new(2, 3));
    let c = b.value.as_map().unwrap().entry("c").unwrap();
    assert_eq!(c.key_span, crate::Span::new(3, 5));
    // inline scalar value: column of the value text, not the key
    assert_eq!(c.value.span, crate::Span::new(3, 8));
    assert_eq!(c.value.as_int(), Some(1));
    let d = a.value.as_map().unwrap().entry("d").unwrap();
    assert_eq!(d.key_span, crate::Span::new(4, 3));
    assert_eq!(d.value.span, crate::Span::new(4, 6));
}

#[test]
fn spans_for_block_sequences() {
    let text = "list:\n  - one\n  - two\n";
    let doc = crate::parse_spanned(text).unwrap();
    let list = doc.get("list").unwrap();
    // the sequence starts at its first `- ` line
    assert_eq!(list.span, crate::Span::new(2, 3));
    let items = list.as_seq().unwrap();
    assert_eq!(items[0].span, crate::Span::new(2, 5));
    assert_eq!(items[1].span, crate::Span::new(3, 5));
}

#[test]
fn spans_for_seq_of_maps() {
    let text = "externals:\n- spec: mkl@2022.1.0\n  prefix: /opt/mkl\n";
    let doc = crate::parse_spanned(text).unwrap();
    let items = doc.get("externals").unwrap().as_seq().unwrap();
    let first = items[0].as_map().unwrap();
    let spec = first.entry("spec").unwrap();
    assert_eq!(spec.key_span, crate::Span::new(2, 3));
    assert_eq!(spec.value.span, crate::Span::new(2, 9));
    let prefix = first.entry("prefix").unwrap();
    assert_eq!(prefix.key_span, crate::Span::new(3, 3));
    assert_eq!(prefix.value.span, crate::Span::new(3, 11));
}

#[test]
fn spans_for_flow_collections() {
    let text = "a: ['8', '44']\nm: {x: 1, yy: 2}\n";
    let doc = crate::parse_spanned(text).unwrap();
    let a = doc.get("a").unwrap();
    assert_eq!(a.span, crate::Span::new(1, 4));
    let items = a.as_seq().unwrap();
    assert_eq!(items[0].span, crate::Span::new(1, 5));
    assert_eq!(items[1].span, crate::Span::new(1, 10));
    let m = doc.as_map().unwrap().entry("m").unwrap();
    assert_eq!(m.key_span, crate::Span::new(2, 1));
    let inner = m.value.as_map().unwrap();
    assert_eq!(inner.entry("x").unwrap().key_span, crate::Span::new(2, 5));
    assert_eq!(inner.entry("x").unwrap().value.span, crate::Span::new(2, 8));
    assert_eq!(inner.entry("yy").unwrap().key_span, crate::Span::new(2, 11));
    assert_eq!(
        inner.entry("yy").unwrap().value.span,
        crate::Span::new(2, 15)
    );
}

#[test]
fn spans_survive_string_list() {
    let text = "needs:\n  - build\n  - test\n";
    let doc = crate::parse_spanned(text).unwrap();
    let pairs = doc.get("needs").unwrap().string_list().unwrap();
    assert_eq!(pairs[0], ("build".to_string(), crate::Span::new(2, 5)));
    assert_eq!(pairs[1], ("test".to_string(), crate::Span::new(3, 5)));
}

#[test]
fn spanned_parse_matches_plain_parse() {
    let text = "a:\n  b: [1, {c: 2}]\n  d:\n  - x\n  - y: 3\n";
    let spanned = crate::parse_spanned(text).unwrap();
    assert_eq!(spanned.into_value(), parse(text).unwrap());
}

#[test]
fn duplicate_flow_mapping_keys_rejected() {
    let err = parse("m: {a: 1, a: 2}\n").unwrap_err();
    assert!(err.message.contains("duplicate"), "{}", err.message);
    assert_eq!(err.line, 1);
}

// ---------------------------------------------------------------------------
// Round-trip tests.
// ---------------------------------------------------------------------------

#[test]
fn emit_parse_roundtrip_manual() {
    let mut inner = Map::new();
    inner.insert("unify", Value::Bool(true));
    let mut spack = Map::new();
    spack.insert("specs", Value::Seq(vec![s("amg2023+caliper")]));
    spack.insert("concretizer", Value::Map(inner));
    spack.insert("view", Value::Bool(true));
    let mut root = Map::new();
    root.insert("spack", Value::Map(spack));
    let doc = Value::Map(root);

    let text = emit(&doc);
    let reparsed = parse(&text).unwrap();
    assert_eq!(reparsed, doc);
}

#[test]
fn emit_quotes_ambiguous_strings() {
    let mut root = Map::new();
    root.insert("a", s("true"));
    root.insert("b", s("123"));
    root.insert("c", s("#not-a-comment"));
    root.insert("d", s(""));
    let doc = Value::Map(root);
    let reparsed = parse(&emit(&doc)).unwrap();
    assert_eq!(reparsed, doc);
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy for scalar values that survive a round trip.
    fn scalar_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1.0e12..1.0e12f64).prop_map(Value::Float),
            "[ -~]{0,24}".prop_map(|s| Value::Str(s.trim().to_string())),
        ]
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        scalar_strategy().prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Seq),
                prop::collection::vec(("[a-z][a-z0-9_]{0,8}", inner), 0..5).prop_map(|pairs| {
                    let mut map = Map::new();
                    for (k, v) in pairs {
                        map.insert(k, v);
                    }
                    Value::Map(map)
                }),
            ]
        })
    }

    proptest! {
        /// emit → parse is the identity on generated documents.
        #[test]
        fn roundtrip(v in value_strategy()) {
            let text = emit(&v);
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
            prop_assert_eq!(reparsed, v);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_total(input in "[ -~\n]{0,200}") {
            let _ = parse(&input);
        }

        /// JSON emit → parse is the identity, and re-emitting the reparsed
        /// value is byte-identical (the ledger determinism contract).
        #[test]
        fn json_roundtrip(v in value_strategy()) {
            let text = crate::emit_json(&v);
            let reparsed = crate::parse_json(&text)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
            prop_assert_eq!(&reparsed, &v);
            prop_assert_eq!(crate::emit_json(&reparsed), text);
        }

        /// The JSON parser never panics on arbitrary input.
        #[test]
        fn json_parser_total(input in "[ -~\n]{0,200}") {
            let _ = crate::parse_json(&input);
        }
    }
}

mod json_tests {
    use crate::{emit_json, parse_json, Map, Value};

    fn obj(pairs: &[(&str, Value)]) -> Value {
        let mut map = Map::new();
        for (k, v) in pairs {
            map.insert(*k, v.clone());
        }
        Value::Map(map)
    }

    #[test]
    fn emits_compact_deterministic_json() {
        let v = obj(&[
            ("schema", Value::Int(1)),
            ("name", Value::str("amg2023")),
            ("ok", Value::Bool(true)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Seq(vec![Value::str("a"), Value::Null])),
        ]);
        assert_eq!(
            emit_json(&v),
            r#"{"schema":1,"name":"amg2023","ok":true,"ratio":0.5,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::str("a\"b\\c\nd\te");
        assert_eq!(emit_json(&v), r#""a\"b\\c\nd\te""#);
        assert_eq!(parse_json(&emit_json(&v)).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(emit_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(emit_json(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn parses_nested_document() {
        let v = parse_json(r#" {"a": [1, 2.5, {"b": null}], "c": "x", "d": false} "#).unwrap();
        assert_eq!(v.get_path(&["a"]).unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(v.get_path(&["c"]).unwrap().as_str(), Some("x"));
        assert_eq!(v.get_path(&["d"]).unwrap().as_bool(), Some(false));
        let inner = &v.get_path(&["a"]).unwrap().as_seq().unwrap()[2];
        assert!(inner.get("b").unwrap().is_null());
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse_json("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse_json("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_json("0.25").unwrap(), Value::Float(0.25));
        // beyond i64 range falls back to float
        assert!(matches!(
            parse_json("99999999999999999999").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(parse_json(r#""😀""#).unwrap(), Value::str("\u{1F600}"));
        assert!(parse_json(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_corrupt_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a: 1}",
            "tru",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "[1 2]",
        ] {
            assert!(parse_json(bad).is_err(), "accepted corrupt input: {bad:?}");
        }
    }

    #[test]
    fn roundtrips_emitted_documents() {
        let v = obj(&[
            ("nested", obj(&[("deep", Value::Seq(vec![Value::Int(1)]))])),
            ("f", Value::Float(1.0)),
            ("neg", Value::Int(i64::MIN)),
        ]);
        let text = emit_json(&v);
        assert_eq!(parse_json(&text).unwrap(), v);
        assert_eq!(emit_json(&parse_json(&text).unwrap()), text);
    }
}
