//! Deterministic YAML emitter whose output re-parses to the same value.

use crate::value::{format_float, Map, Value};

/// Serializes a value as a YAML document (trailing newline included for
/// non-empty documents).
pub fn emit(value: &Value) -> String {
    let mut out = String::new();
    match value {
        Value::Map(m) => emit_map(m, 0, &mut out),
        Value::Seq(s) => emit_seq(s, 0, &mut out),
        scalar => {
            out.push_str(&scalar_repr(scalar));
            out.push('\n');
        }
    }
    out
}

fn indent_str(indent: usize) -> String {
    " ".repeat(indent)
}

fn emit_map(map: &Map, indent: usize, out: &mut String) {
    if map.is_empty() {
        out.push_str(&indent_str(indent));
        out.push_str("{}\n");
        return;
    }
    for (key, value) in map.iter() {
        out.push_str(&indent_str(indent));
        out.push_str(&key_repr(key));
        out.push(':');
        match value {
            Value::Map(m) if !m.is_empty() => {
                out.push('\n');
                emit_map(m, indent + 2, out);
            }
            Value::Seq(s) if !s.is_empty() => {
                out.push('\n');
                emit_seq(s, indent, out);
            }
            Value::Map(_) => out.push_str(" {}\n"),
            Value::Seq(_) => out.push_str(" []\n"),
            scalar => {
                out.push(' ');
                out.push_str(&scalar_repr(scalar));
                out.push('\n');
            }
        }
    }
}

fn emit_seq(seq: &[Value], indent: usize, out: &mut String) {
    if seq.is_empty() {
        out.push_str(&indent_str(indent));
        out.push_str("[]\n");
        return;
    }
    for item in seq {
        match item {
            Value::Map(m) if !m.is_empty() => {
                // `- key: value` inline first entry, remaining entries aligned.
                let mut first = true;
                for (key, value) in m.iter() {
                    if first {
                        out.push_str(&indent_str(indent));
                        out.push_str("- ");
                        first = false;
                    } else {
                        out.push_str(&indent_str(indent + 2));
                    }
                    out.push_str(&key_repr(key));
                    out.push(':');
                    match value {
                        Value::Map(inner) if !inner.is_empty() => {
                            out.push('\n');
                            emit_map(inner, indent + 4, out);
                        }
                        Value::Seq(inner) if !inner.is_empty() => {
                            out.push('\n');
                            emit_seq(inner, indent + 2, out);
                        }
                        Value::Map(_) => out.push_str(" {}\n"),
                        Value::Seq(_) => out.push_str(" []\n"),
                        scalar => {
                            out.push(' ');
                            out.push_str(&scalar_repr(scalar));
                            out.push('\n');
                        }
                    }
                }
            }
            Value::Seq(inner) => {
                // Nested sequences are rare in our configs; emit in flow form.
                out.push_str(&indent_str(indent));
                out.push_str("- ");
                out.push_str(&flow_repr(&Value::Seq(inner.clone())));
                out.push('\n');
            }
            Value::Map(_) => {
                out.push_str(&indent_str(indent));
                out.push_str("- {}\n");
            }
            scalar => {
                out.push_str(&indent_str(indent));
                out.push_str("- ");
                out.push_str(&scalar_repr(scalar));
                out.push('\n');
            }
        }
    }
}

fn flow_repr(value: &Value) -> String {
    match value {
        Value::Seq(items) => {
            let parts: Vec<String> = items.iter().map(flow_repr).collect();
            format!("[{}]", parts.join(", "))
        }
        Value::Map(map) => {
            let parts: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}: {}", key_repr(k), flow_repr(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        scalar => scalar_repr(scalar),
    }
}

fn key_repr(key: &str) -> String {
    if needs_quoting(key) {
        quote(key)
    } else {
        key.to_string()
    }
}

fn scalar_repr(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_float(*f),
        Value::Str(s) => {
            // Quote anything a plain scalar would re-parse differently.
            let reparsed = crate::parser::infer_plain(s);
            let plain_safe = matches!(reparsed, Value::Str(_)) && !needs_quoting(s);
            if plain_safe {
                s.clone()
            } else {
                quote(s)
            }
        }
        Value::Seq(_) | Value::Map(_) => flow_repr(value),
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s.starts_with(char::is_whitespace) || s.ends_with(char::is_whitespace) {
        return true;
    }
    if s.starts_with(['[', '{', '\'', '"', '-', '&', '*', '!', '|', '>', '%', '@']) {
        return true;
    }
    s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        || s.starts_with('#')
        || s.contains('\n')
        || s.contains('\t')
        // Characters that are structural in flow context; quoting them
        // everywhere keeps the emitter simple and the output unambiguous.
        || s.contains([',', '[', ']', '{', '}', '"', '\'', ':'])
}

fn quote(s: &str) -> String {
    if s.contains('\n') || s.contains('\t') {
        let escaped = s
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t")
            .replace('\r', "\\r");
        format!("\"{escaped}\"")
    } else {
        format!("'{}'", s.replace('\'', "''"))
    }
}
