//! JSON emission and parsing over the same [`Value`] document model the
//! YAML side uses.
//!
//! The observability layer (trace exports, the durable run ledger) speaks
//! JSON because that is what Perfetto, `jq`, and collaborators' tooling
//! open — and the build environment has no serde, so this is the same
//! hand-rolled, dependency-free style as the YAML parser next door.
//!
//! Emission is *deterministic*: [`Map`] preserves insertion order, floats
//! render through one canonical formatter, and no whitespace depends on
//! content. Two structurally equal values always emit byte-identical text —
//! the property the run ledger and the `--jobs 1` vs `--jobs 8` export
//! identity checks rely on.

use crate::value::{Map, Value};
use std::fmt::Write as _;

/// Emits `value` as a single-line (compact) JSON document.
///
/// * `Null` → `null`, `Bool` → `true`/`false`, `Int` → decimal.
/// * `Float` → shortest round-trip decimal; non-finite floats become `null`
///   (JSON has no NaN/Infinity).
/// * `Str` → quoted with `"`, `\`, control characters escaped.
/// * `Seq` → `[a,b,…]`, `Map` → `{"k":v,…}` in insertion order.
pub fn emit_json(value: &Value) -> String {
    let mut out = String::new();
    emit_into(value, &mut out);
    out
}

fn emit_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => out.push_str(&json_number(*f)),
        Value::Str(s) => json_string_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_into(item, out);
            }
            out.push(']');
        }
        Value::Map(map) => {
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string_into(key, out);
                out.push(':');
                emit_into(val, out);
            }
            out.push('}');
        }
    }
}

/// Canonical JSON rendering of a float: shortest text that round-trips *as a
/// float* (integral values keep a `.0` so they reparse as `Float`, not
/// `Int`), `null` for non-finite values.
pub fn json_number(f: f64) -> String {
    if f.is_finite() {
        crate::value::format_float(f)
    } else {
        "null".to_string()
    }
}

/// Escapes `s` as a JSON string literal (including the surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json_string_into(s, &mut out);
    out
}

/// Escapes `s` directly into `out`, copying maximal escape-free runs in one
/// `push_str` each instead of pushing char by char. The scan is bytewise:
/// every byte needing an escape is ASCII, and UTF-8 continuation bytes are
/// ≥ 0x80, so a multi-byte scalar can never be split by the run boundary.
fn json_string_into(s: &str, out: &mut String) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut run = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[run..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    let _ = write!(out, "\\u{b:04x}");
                }
            }
            i += 1;
            run = i;
        } else {
            i += 1;
        }
    }
    out.push_str(&s[run..]);
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
///
/// A strict recursive-descent parser over the JSON grammar: objects become
/// [`Value::Map`] (insertion order preserved), arrays [`Value::Seq`],
/// numbers [`Value::Int`] when integral and in `i64` range else
/// [`Value::Float`]. Trailing garbage after the document is an error, as are
/// trailing commas, unquoted keys, and bare control characters — corrupt
/// ledger lines must *fail* here so the loader can count and skip them.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(text, bytes, pos),
        Some(b'[') => parse_array(text, bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid token at byte {pos}", pos = *pos))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    if *pos == digits_from {
        return Err(format!("invalid number at byte {start}"));
    }
    let lexeme = &text[start..*pos];
    if !is_float {
        if let Ok(i) = lexeme.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    lexeme
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("invalid number `{lexeme}` at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let start = *pos;
    // Fast path: a bytewise scan to the closing quote. Every byte that can
    // end the scan (`"`, `\`, controls) is ASCII, and UTF-8 continuation
    // bytes are ≥ 0x80, so the scan never needs to decode scalars. Most
    // ledger/trace strings carry no escapes, so this copies the whole
    // string in one exactly-sized allocation.
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                let plain = &text[start..*pos];
                *pos += 1;
                return Ok(plain.to_string());
            }
            b'\\' => return parse_string_escaped(text, bytes, pos, start),
            _ if b < 0x20 => return Err("bare control character in string".to_string()),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

/// Slow path of [`parse_string`]: `*pos` sits on the first backslash, the
/// escape-free prefix spans `start..*pos`. Decodes escapes one by one but
/// still copies each plain run between them with a single `push_str`.
fn parse_string_escaped(
    text: &str,
    bytes: &[u8],
    pos: &mut usize,
    start: usize,
) -> Result<String, String> {
    let mut out = String::with_capacity((*pos - start) + 16);
    out.push_str(&text[start..*pos]);
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs: JSON escapes astral characters as
                        // two \uXXXX units; lone surrogates are rejected.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if text.get(*pos..*pos + 2) != Some("\\u") {
                                return Err("lone high surrogate".to_string());
                            }
                            *pos += 2;
                            let hex2 = text
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let low = u32::from_str_radix(hex2, 16)
                                .map_err(|_| format!("bad \\u escape `{hex2}`"))?;
                            *pos += 4;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point".to_string())?);
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ if b < 0x20 => return Err("bare control character in string".to_string()),
            _ => {
                // copy the whole escape-free run in one push_str
                let run = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                out.push_str(&text[run..*pos]);
            }
        }
    }
}

fn parse_object(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = Map::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(text, bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Seq(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}
