//! Variant values: boolean, single-valued, and multi-valued.

use std::collections::BTreeSet;
use std::fmt;

/// The value of a variant in a spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VariantValue {
    /// `+name` (true) or `~name` / `-name` (false).
    Bool(bool),
    /// `name=value`.
    Single(String),
    /// `name=a,b,c` — an unordered set of values.
    Multi(BTreeSet<String>),
}

impl VariantValue {
    /// Parses the right-hand side of `name=value`.
    pub fn from_value_text(text: &str) -> VariantValue {
        if text.contains(',') {
            VariantValue::Multi(text.split(',').map(|s| s.trim().to_string()).collect())
        } else {
            match text {
                "true" | "True" => VariantValue::Bool(true),
                "false" | "False" => VariantValue::Bool(false),
                other => VariantValue::Single(other.to_string()),
            }
        }
    }

    /// True if a spec carrying `self` satisfies a constraint of `other`.
    ///
    /// Multi-valued constraints are satisfied by supersets: a package built
    /// with `cuda_arch=70,80` satisfies a request for `cuda_arch=70`.
    pub fn satisfies(&self, other: &VariantValue) -> bool {
        match (self, other) {
            (VariantValue::Multi(mine), VariantValue::Multi(theirs)) => theirs.is_subset(mine),
            (VariantValue::Multi(mine), VariantValue::Single(theirs)) => mine.contains(theirs),
            (VariantValue::Single(mine), VariantValue::Multi(theirs)) => {
                theirs.len() == 1 && theirs.contains(mine)
            }
            (a, b) => a == b,
        }
    }

    /// True if the two values could be reconciled.
    pub fn intersects(&self, other: &VariantValue) -> bool {
        self.satisfies(other) || other.satisfies(self) || self.mergeable(other)
    }

    fn mergeable(&self, other: &VariantValue) -> bool {
        matches!(
            (self, other),
            (VariantValue::Multi(_), VariantValue::Multi(_))
                | (VariantValue::Multi(_), VariantValue::Single(_))
                | (VariantValue::Single(_), VariantValue::Multi(_))
        )
    }

    /// Combines two compatible values (set union for multi-valued variants).
    pub fn merge(&self, other: &VariantValue) -> Option<VariantValue> {
        match (self, other) {
            (a, b) if a == b => Some(a.clone()),
            (VariantValue::Multi(a), VariantValue::Multi(b)) => {
                Some(VariantValue::Multi(a.union(b).cloned().collect()))
            }
            (VariantValue::Multi(a), VariantValue::Single(b))
            | (VariantValue::Single(b), VariantValue::Multi(a)) => {
                let mut set = a.clone();
                set.insert(b.clone());
                Some(VariantValue::Multi(set))
            }
            _ => None,
        }
    }

    /// Renders the variant with its name in canonical spec syntax.
    pub fn render(&self, name: &str) -> String {
        match self {
            VariantValue::Bool(true) => format!("+{name}"),
            VariantValue::Bool(false) => format!("~{name}"),
            VariantValue::Single(v) => format!("{name}={v}"),
            VariantValue::Multi(vs) => {
                let list: Vec<&str> = vs.iter().map(|s| s.as_str()).collect();
                format!("{name}={}", list.join(","))
            }
        }
    }
}

impl fmt::Display for VariantValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantValue::Bool(b) => write!(f, "{b}"),
            VariantValue::Single(s) => f.write_str(s),
            VariantValue::Multi(vs) => {
                let list: Vec<&str> = vs.iter().map(|s| s.as_str()).collect();
                f.write_str(&list.join(","))
            }
        }
    }
}
