//! `benchpark-spec` — package spec syntax and constraint algebra.
//!
//! Spack's first primary component (paper §3.1) is *"the Spec syntax, to
//! specify the user constraints on a build, called abstract specs"*. This
//! crate implements that syntax and the algebra the concretizer needs:
//!
//! * **Parsing** of spec expressions such as
//!   `saxpy@1.0.0 +openmp ^cmake@3.23.1`, `amg2023+caliper`,
//!   `mvapich2@2.3.7-gcc12.1.1-magic`, `hypre %gcc@12.1.1 target=zen3`.
//! * **Versions** with Spack semantics: `@1.2` denotes the `1.2` prefix
//!   series (`1.2.3` satisfies it), `@1.2:1.4` is an inclusive range with
//!   prefix-inclusive upper bound, `@=1.2` is exact, `@1.2:,2.0:2.2` unions.
//! * **Variants**: boolean `+openmp` / `~openmp`, key-value `build_type=Release`,
//!   multi-valued `cuda_arch=70,80`.
//! * **Compiler constraints** `%gcc@12.1.1` and **targets** `target=zen3`
//!   (target satisfaction consults the archspec taxonomy: `target=zen3`
//!   satisfies a request for `target=x86_64_v3`).
//! * **Dependency constraints** `^cmake@3.23.1` (attached to the root).
//! * The three relations that drive concretization:
//!   [`Spec::satisfies`], [`Spec::intersects`], and [`Spec::constrain`].
//!
//! # Example
//!
//! ```
//! use benchpark_spec::Spec;
//!
//! let abstract_spec: Spec = "saxpy@1.0.0 +openmp ^cmake@3.23.1".parse().unwrap();
//! let concrete: Spec = "saxpy@=1.0.0 +openmp ~cuda %gcc@12.1.1 target=skylake_avx512 ^cmake@=3.23.1"
//!     .parse()
//!     .unwrap();
//! assert!(concrete.satisfies(&abstract_spec));
//! assert!(!abstract_spec.satisfies(&concrete));
//! ```

mod error;
mod parse;
mod spec;
mod variant;
mod version;

pub use error::SpecError;
pub use spec::{CompilerSpec, Spec};
pub use variant::VariantValue;
pub use version::{Version, VersionConstraint, VersionRange};

#[cfg(test)]
mod tests;
