//! Spec parsing and constraint errors.

use std::fmt;

/// An error from parsing or combining specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec text could not be parsed.
    Parse {
        /// Byte position of the offending token.
        position: usize,
        message: String,
    },
    /// Two constraints cannot hold simultaneously.
    Conflict { message: String },
}

impl SpecError {
    pub(crate) fn parse(position: usize, message: impl Into<String>) -> Self {
        SpecError::Parse {
            position,
            message: message.into(),
        }
    }

    pub(crate) fn conflict(message: impl Into<String>) -> Self {
        SpecError::Conflict {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { position, message } => {
                write!(f, "spec parse error at position {position}: {message}")
            }
            SpecError::Conflict { message } => write!(f, "conflicting constraints: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}
