//! The [`Spec`] type and its constraint relations.

use crate::error::SpecError;
use crate::variant::VariantValue;
use crate::version::VersionConstraint;
use benchpark_archspec::taxonomy;
use std::collections::BTreeMap;
use std::fmt;

/// A compiler constraint: `%gcc@12.1.1`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompilerSpec {
    pub name: String,
    pub versions: VersionConstraint,
}

impl CompilerSpec {
    /// Parses `gcc@12.1.1` / `gcc`.
    pub fn new(name: &str, versions: VersionConstraint) -> CompilerSpec {
        CompilerSpec {
            name: name.to_string(),
            versions,
        }
    }

    /// `self` (more concrete) satisfies constraint `other`.
    pub fn satisfies(&self, other: &CompilerSpec) -> bool {
        self.name == other.name && self.versions.satisfies(&other.versions)
    }

    /// Compatible at all?
    pub fn intersects(&self, other: &CompilerSpec) -> bool {
        self.name == other.name && self.versions.intersects(&other.versions)
    }
}

impl fmt::Display for CompilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.versions.is_any() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}@{}", self.name, self.versions)
        }
    }
}

/// A package spec: possibly-abstract constraints on one package and its
/// dependencies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Package name; `None` for anonymous constraint specs (`+debug %gcc`).
    pub name: Option<String>,
    /// Version constraint (`@…`).
    pub versions: VersionConstraint,
    /// Variants in canonical (sorted) order.
    pub variants: BTreeMap<String, VariantValue>,
    /// Compiler constraint (`%…`).
    pub compiler: Option<CompilerSpec>,
    /// Target microarchitecture (`target=…`).
    pub target: Option<String>,
    /// Dependency constraints (`^…`), keyed by dependency name.
    pub dependencies: BTreeMap<String, Spec>,
    /// Compiler flags (`cflags="-O3 -g"`), keyed by flag kind
    /// (`cflags`, `cxxflags`, `fflags`, `ldflags`, `cppflags`, `ldlibs`).
    pub compiler_flags: BTreeMap<String, Vec<String>>,
}

/// The flag kinds Spack recognizes on a spec.
pub const FLAG_KEYS: &[&str] = &[
    "cflags", "cxxflags", "fflags", "ldflags", "cppflags", "ldlibs",
];

impl Spec {
    /// An anonymous, fully-unconstrained spec.
    pub fn anonymous() -> Spec {
        Spec::default()
    }

    /// A spec constraining only the package name.
    pub fn named(name: &str) -> Spec {
        Spec {
            name: Some(name.to_string()),
            ..Spec::default()
        }
    }

    /// The package name, or `""` for anonymous specs.
    pub fn name_str(&self) -> &str {
        self.name.as_deref().unwrap_or("")
    }

    /// True if this spec pins name, an exact version, a compiler with an
    /// exact version, a target, and all its dependencies recursively — i.e.
    /// the concretizer is done with it.
    pub fn is_concrete(&self) -> bool {
        self.name.is_some()
            && self.versions.concrete().is_some()
            && self
                .compiler
                .as_ref()
                .is_some_and(|c| c.versions.concrete().is_some())
            && self.target.is_some()
            && self.dependencies.values().all(Spec::is_concrete)
    }

    /// True if a target `mine` can satisfy a request for `wanted`, using the
    /// archspec partial order: a binary for `wanted` runs on `mine` when
    /// `mine` descends from `wanted` (or they are equal).
    fn target_satisfies(mine: &str, wanted: &str) -> bool {
        if mine == wanted {
            return true;
        }
        match taxonomy().get(mine) {
            Some(node) => node.is_descendant_of(wanted),
            None => false,
        }
    }

    /// `self` (the more concrete spec) satisfies the constraint `other`.
    ///
    /// Spack's "strict" satisfaction: every constraint present in `other`
    /// must be provably met by `self`; constraints absent from `self` count
    /// as failures (an abstract spec does not satisfy `+openmp` just because
    /// it *could* be built that way).
    pub fn satisfies(&self, other: &Spec) -> bool {
        if let Some(other_name) = &other.name {
            if self.name.as_ref() != Some(other_name) {
                return false;
            }
        }
        if !self.versions.satisfies(&other.versions) {
            return false;
        }
        for (k, want) in &other.variants {
            match self.variants.get(k) {
                Some(have) if have.satisfies(want) => {}
                _ => return false,
            }
        }
        if let Some(want) = &other.compiler {
            match &self.compiler {
                Some(have) if have.satisfies(want) => {}
                _ => return false,
            }
        }
        if let Some(want) = &other.target {
            match &self.target {
                Some(have) if Spec::target_satisfies(have, want) => {}
                _ => return false,
            }
        }
        for (dep_name, want) in &other.dependencies {
            match self.dependencies.get(dep_name) {
                Some(have) if have.satisfies(want) => {}
                _ => return false,
            }
        }
        for (kind, want) in &other.compiler_flags {
            let Some(have) = self.compiler_flags.get(kind) else {
                return false;
            };
            if !want.iter().all(|f| have.contains(f)) {
                return false;
            }
        }
        true
    }

    /// True if some concrete spec could satisfy both `self` and `other`.
    pub fn intersects(&self, other: &Spec) -> bool {
        if let (Some(a), Some(b)) = (&self.name, &other.name) {
            if a != b {
                return false;
            }
        }
        if !self.versions.intersects(&other.versions) {
            return false;
        }
        for (k, mine) in &self.variants {
            if let Some(theirs) = other.variants.get(k) {
                if !mine.intersects(theirs) {
                    return false;
                }
            }
        }
        if let (Some(a), Some(b)) = (&self.compiler, &other.compiler) {
            if !a.intersects(b) {
                return false;
            }
        }
        if let (Some(a), Some(b)) = (&self.target, &other.target) {
            if !(Spec::target_satisfies(a, b) || Spec::target_satisfies(b, a)) {
                return false;
            }
        }
        for (dep_name, mine) in &self.dependencies {
            if let Some(theirs) = other.dependencies.get(dep_name) {
                if !mine.intersects(theirs) {
                    return false;
                }
            }
        }
        true
    }

    /// Merges the constraints of `other` into `self`, failing on conflict.
    pub fn constrain(&mut self, other: &Spec) -> Result<(), SpecError> {
        match (&self.name, &other.name) {
            (Some(a), Some(b)) if a != b => {
                return Err(SpecError::conflict(format!(
                    "cannot constrain `{a}` with `{b}`: different package names"
                )));
            }
            (None, Some(b)) => self.name = Some(b.clone()),
            _ => {}
        }
        self.versions.constrain(&other.versions)?;
        for (k, theirs) in &other.variants {
            match self.variants.get(k) {
                None => {
                    self.variants.insert(k.clone(), theirs.clone());
                }
                Some(mine) => match mine.merge(theirs) {
                    Some(merged) => {
                        self.variants.insert(k.clone(), merged);
                    }
                    None => {
                        return Err(SpecError::conflict(format!(
                            "variant `{k}`: `{mine}` conflicts with `{theirs}`"
                        )));
                    }
                },
            }
        }
        match (&mut self.compiler, &other.compiler) {
            (_, None) => {}
            (None, Some(c)) => self.compiler = Some(c.clone()),
            (Some(mine), Some(theirs)) => {
                if mine.name != theirs.name {
                    return Err(SpecError::conflict(format!(
                        "compiler `{}` conflicts with `{}`",
                        mine.name, theirs.name
                    )));
                }
                mine.versions.constrain(&theirs.versions)?;
            }
        }
        match (&self.target, &other.target) {
            (_, None) => {}
            (None, Some(t)) => self.target = Some(t.clone()),
            (Some(mine), Some(theirs)) => {
                if Spec::target_satisfies(mine, theirs) {
                    // ours is at least as specific — keep it
                } else if Spec::target_satisfies(theirs, mine) {
                    self.target = Some(theirs.clone());
                } else {
                    return Err(SpecError::conflict(format!(
                        "target `{mine}` conflicts with `{theirs}`"
                    )));
                }
            }
        }
        for (dep_name, theirs) in &other.dependencies {
            match self.dependencies.get_mut(dep_name) {
                None => {
                    self.dependencies.insert(dep_name.clone(), theirs.clone());
                }
                Some(mine) => mine.constrain(theirs)?,
            }
        }
        for (kind, theirs) in &other.compiler_flags {
            let mine = self.compiler_flags.entry(kind.clone()).or_default();
            for flag in theirs {
                if !mine.contains(flag) {
                    mine.push(flag.clone());
                }
            }
        }
        Ok(())
    }

    /// Iterates over this spec and all transitive dependency constraints.
    pub fn traverse(&self) -> Vec<&Spec> {
        let mut out = vec![self];
        for dep in self.dependencies.values() {
            out.extend(dep.traverse());
        }
        out
    }

    /// A short display without dependencies (`name@version+variants`).
    pub fn short(&self) -> String {
        let mut s = String::new();
        self.fmt_without_deps(&mut s);
        s
    }

    fn fmt_without_deps(&self, out: &mut String) {
        use std::fmt::Write;
        if let Some(name) = &self.name {
            out.push_str(name);
        }
        if !self.versions.is_any() {
            let _ = write!(out, "@{}", self.versions);
        }
        if let Some(c) = &self.compiler {
            let _ = write!(out, "%{c}");
        }
        // canonical variant order: +bools, ~bools, then key=value
        for (k, v) in &self.variants {
            if v == &VariantValue::Bool(true) {
                let _ = write!(out, "+{k}");
            }
        }
        for (k, v) in &self.variants {
            if v == &VariantValue::Bool(false) {
                let _ = write!(out, "~{k}");
            }
        }
        for (k, v) in &self.variants {
            if !matches!(v, VariantValue::Bool(_)) {
                let _ = write!(out, " {}", v.render(k));
            }
        }
        for (kind, flags) in &self.compiler_flags {
            if !flags.is_empty() {
                let _ = write!(out, " {}=\"{}\"", kind, flags.join(" "));
            }
        }
        if let Some(t) = &self.target {
            let _ = write!(out, " target={t}");
        }
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.fmt_without_deps(&mut out);
        for dep in self.dependencies.values() {
            let mut dep_str = String::new();
            dep.fmt_without_deps(&mut dep_str);
            out.push_str(" ^");
            out.push_str(&dep_str);
            // nested dependencies of dependencies flatten onto the root line
            for sub in dep.dependencies.values() {
                let mut sub_str = String::new();
                sub.fmt_without_deps(&mut sub_str);
                out.push_str(" ^");
                out.push_str(&sub_str);
            }
        }
        f.write_str(&out)
    }
}

impl std::str::FromStr for Spec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_spec(s)
    }
}
