//! Tests for spec parsing, display, and constraint algebra.

use crate::{Spec, SpecError, VariantValue, Version, VersionConstraint};

fn spec(s: &str) -> Spec {
    s.parse().unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
}

fn v(s: &str) -> Version {
    Version::new(s)
}

// ---------------------------------------------------------------------------
// Versions
// ---------------------------------------------------------------------------

#[test]
fn version_ordering() {
    assert!(v("1.2") < v("1.10")); // numeric, not lexicographic
    assert!(v("1.2") < v("1.2.1"));
    assert!(v("1.2") < v("1.2.0"));
    assert!(v("2.3.7") < v("2.3.10"));
    assert!(v("9") < v("10"));
    assert_eq!(v("1.2.3"), v("1.2.3"));
}

#[test]
fn version_with_suffix() {
    // `2.3.7-gcc12.1.1-magic` (Figure 4) parses and compares sanely.
    let a = v("2.3.7-gcc12.1.1-magic");
    let b = v("2.3.7");
    assert!(b.is_prefix_of(&a));
    assert!(a > b);
    assert_eq!(a.as_str(), "2.3.7-gcc12.1.1-magic");
}

#[test]
fn version_prefix_semantics() {
    assert!(v("1.2").is_prefix_of(&v("1.2.3")));
    assert!(!v("1.2.3").is_prefix_of(&v("1.2")));
    assert!(!v("1.2").is_prefix_of(&v("1.20")));
    assert!(v("1.2").is_prefix_of(&v("1.2")));
}

#[test]
fn version_constraint_series() {
    let c: Spec = spec("pkg@1.2");
    assert!(c.versions.contains(&v("1.2")));
    assert!(c.versions.contains(&v("1.2.3"))); // series semantics
    assert!(!c.versions.contains(&v("1.3")));
    assert!(!c.versions.contains(&v("1.20")));
}

#[test]
fn version_constraint_exact() {
    let c = spec("pkg@=1.2");
    assert!(c.versions.contains(&v("1.2")));
    assert!(!c.versions.contains(&v("1.2.3")));
    assert_eq!(c.versions.concrete(), Some(&v("1.2")));
}

#[test]
fn version_constraint_ranges() {
    let c = spec("pkg@1.2:1.4");
    assert!(c.versions.contains(&v("1.2")));
    assert!(c.versions.contains(&v("1.3")));
    assert!(c.versions.contains(&v("1.4")));
    assert!(c.versions.contains(&v("1.4.5"))); // prefix-inclusive upper bound
    assert!(!c.versions.contains(&v("1.5")));
    assert!(!c.versions.contains(&v("1.1.9")));

    let open = spec("pkg@1.2:");
    assert!(open.versions.contains(&v("99")));
    assert!(!open.versions.contains(&v("1.1")));

    let upto = spec("pkg@:1.4");
    assert!(upto.versions.contains(&v("0.1")));
    assert!(!upto.versions.contains(&v("2.0")));
}

#[test]
fn version_constraint_union() {
    let c = spec("pkg@1.2:1.4,2.0:2.2");
    assert!(c.versions.contains(&v("1.3")));
    assert!(c.versions.contains(&v("2.1")));
    assert!(!c.versions.contains(&v("1.7")));
}

#[test]
fn version_satisfies() {
    let narrow = spec("pkg@1.3").versions;
    let wide = spec("pkg@1.2:1.4").versions;
    assert!(narrow.satisfies(&wide));
    assert!(!wide.satisfies(&narrow));
    let exact = spec("pkg@=1.3").versions;
    assert!(exact.satisfies(&wide));
    assert!(exact.satisfies(&narrow));
    assert!(VersionConstraint::any().satisfies(&VersionConstraint::any()));
    assert!(!wide.satisfies(&exact));
}

#[test]
fn version_constrain_narrows() {
    let mut c = spec("pkg@1.2:").versions;
    c.constrain(&spec("pkg@:1.4").versions).unwrap();
    assert!(c.contains(&v("1.3")));
    assert!(!c.contains(&v("1.5")));
    assert!(!c.contains(&v("1.1")));
}

#[test]
fn version_constrain_disjoint_fails() {
    let mut c = spec("pkg@1.2:1.3").versions;
    let err = c.constrain(&spec("pkg@2.0:").versions).unwrap_err();
    assert!(matches!(err, SpecError::Conflict { .. }));
}

// ---------------------------------------------------------------------------
// Parsing & display
// ---------------------------------------------------------------------------

#[test]
fn parse_paper_specs() {
    // Figure 10: `saxpy@1.0.0 +openmp ^cmake@3.23.1`
    let s = spec("saxpy@1.0.0 +openmp ^cmake@3.23.1");
    assert_eq!(s.name.as_deref(), Some("saxpy"));
    assert!(s.versions.contains(&v("1.0.0")));
    assert_eq!(s.variants.get("openmp"), Some(&VariantValue::Bool(true)));
    let cmake = s.dependencies.get("cmake").unwrap();
    assert!(cmake.versions.contains(&v("3.23.1")));

    // Figure 2/3: `amg2023+caliper`
    let s = spec("amg2023+caliper");
    assert_eq!(s.name.as_deref(), Some("amg2023"));
    assert_eq!(s.variants.get("caliper"), Some(&VariantValue::Bool(true)));

    // Figure 4 externals
    let s = spec("intel-oneapi-mkl@2022.1.0");
    assert_eq!(s.name.as_deref(), Some("intel-oneapi-mkl"));
    let s = spec("mvapich2@2.3.7-gcc12.1.1-magic");
    assert!(s.versions.contains(&v("2.3.7-gcc12.1.1-magic")));
}

#[test]
fn parse_compiler_and_target() {
    let s = spec("hypre@2.28 %gcc@12.1.1 target=zen3");
    let c = s.compiler.as_ref().unwrap();
    assert_eq!(c.name, "gcc");
    assert!(c.versions.contains(&v("12.1.1")));
    assert_eq!(s.target.as_deref(), Some("zen3"));
}

#[test]
fn parse_variants() {
    let s = spec("pkg+a~b build_type=Release cuda_arch=70,80");
    assert_eq!(s.variants.get("a"), Some(&VariantValue::Bool(true)));
    assert_eq!(s.variants.get("b"), Some(&VariantValue::Bool(false)));
    assert_eq!(
        s.variants.get("build_type"),
        Some(&VariantValue::Single("Release".into()))
    );
    match s.variants.get("cuda_arch").unwrap() {
        VariantValue::Multi(set) => {
            assert!(set.contains("70") && set.contains("80"));
        }
        other => panic!("expected multi value, got {other:?}"),
    }
}

#[test]
fn parse_compiler_flags() {
    // quoted, multi-flag
    let s = spec(r#"hypre cflags="-O3 -march=native" ldflags="-lm""#);
    assert_eq!(
        s.compiler_flags.get("cflags").unwrap(),
        &vec!["-O3".to_string(), "-march=native".to_string()]
    );
    assert_eq!(
        s.compiler_flags.get("ldflags").unwrap(),
        &vec!["-lm".to_string()]
    );
    // unquoted single flag
    let s = spec("hypre cflags=-O2");
    assert_eq!(
        s.compiler_flags.get("cflags").unwrap(),
        &vec!["-O2".to_string()]
    );
    // flags on a dependency
    let s = spec(r#"app ^hypre cflags="-O3""#);
    assert_eq!(
        s.dependencies["hypre"]
            .compiler_flags
            .get("cflags")
            .unwrap(),
        &vec!["-O3".to_string()]
    );
    // unterminated quote errors
    assert!(r#"hypre cflags="-O3"#.parse::<Spec>().is_err());
}

#[test]
fn compiler_flags_satisfies_and_constrain() {
    let have = spec(r#"pkg cflags="-O3 -g -march=native""#);
    let want = spec(r#"pkg cflags="-O3""#);
    assert!(have.satisfies(&want));
    assert!(!want.satisfies(&have));
    assert!(!spec("pkg").satisfies(&want));

    let mut s = spec(r#"pkg cflags="-O3""#);
    s.constrain(&spec(r#"pkg cflags="-g -O3" ldflags="-lm""#))
        .unwrap();
    assert_eq!(
        s.compiler_flags.get("cflags").unwrap(),
        &vec!["-O3".to_string(), "-g".to_string()] // union, order-preserving, deduped
    );
    assert!(s.compiler_flags.contains_key("ldflags"));
}

#[test]
fn compiler_flags_display_roundtrip() {
    let s = spec(r#"pkg@=1.0 cflags="-O3 -g" target=zen3"#);
    let printed = s.to_string();
    assert!(printed.contains(r#"cflags="-O3 -g""#), "{printed}");
    let reparsed = spec(&printed);
    assert_eq!(s, reparsed);
}

#[test]
fn parse_anonymous() {
    let s = spec("+debug %gcc");
    assert!(s.name.is_none());
    assert_eq!(s.variants.get("debug"), Some(&VariantValue::Bool(true)));
    assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");
}

#[test]
fn parse_dependency_context() {
    // Clauses after ^dep apply to the dependency until the next ^.
    let s = spec("app ^mpi+cuda@4: ^cmake@3.20:");
    let mpi = s.dependencies.get("mpi").unwrap();
    assert_eq!(mpi.variants.get("cuda"), Some(&VariantValue::Bool(true)));
    assert!(mpi.versions.contains(&v("4.1")));
    let cmake = s.dependencies.get("cmake").unwrap();
    assert!(cmake.versions.contains(&v("3.23.1")));
    // root untouched by dep clauses
    assert!(s.variants.is_empty());
    assert!(s.versions.is_any());
}

#[test]
fn parse_errors() {
    assert!("pkg other".parse::<Spec>().is_err()); // two names
    assert!("pkg@".parse::<Spec>().is_err());
    assert!("pkg %gcc %clang".parse::<Spec>().is_err());
    assert!("pkg +".parse::<Spec>().is_err());
    assert!("pkg target=a target=b".parse::<Spec>().is_err());
    assert!("pkg !".parse::<Spec>().is_err());
    assert!("pkg+a~a".parse::<Spec>().is_err()); // contradictory variant
}

#[test]
fn display_roundtrip() {
    for text in [
        "saxpy@1.0.0+openmp ^cmake@3.23.1",
        "amg2023+caliper",
        "hypre@2.28%gcc@12.1.1 target=zen3",
        "pkg@1.2:1.4,2.0:",
        "pkg@=1.2",
        "mvapich2@2.3.7-gcc12.1.1-magic",
        "pkg+a~b build_type=Release",
    ] {
        let parsed = spec(text);
        let printed = parsed.to_string();
        let reparsed = spec(&printed);
        assert_eq!(
            parsed, reparsed,
            "round trip failed for {text:?} → {printed:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// satisfies / intersects / constrain
// ---------------------------------------------------------------------------

#[test]
fn satisfies_name_and_version() {
    assert!(spec("saxpy@=1.0.0").satisfies(&spec("saxpy")));
    assert!(spec("saxpy@=1.0.0").satisfies(&spec("saxpy@1.0.0")));
    assert!(spec("saxpy@=1.0.0").satisfies(&spec("saxpy@1.0")));
    assert!(!spec("saxpy@=1.0.0").satisfies(&spec("other")));
    assert!(!spec("saxpy").satisfies(&spec("saxpy@1.0")));
    // anonymous constraints are satisfied by anything matching the clauses
    assert!(spec("saxpy+openmp").satisfies(&spec("+openmp")));
}

#[test]
fn satisfies_variants_strict() {
    assert!(spec("pkg+mp").satisfies(&spec("pkg+mp")));
    assert!(!spec("pkg").satisfies(&spec("pkg+mp"))); // absence ≠ satisfaction
    assert!(!spec("pkg~mp").satisfies(&spec("pkg+mp")));
    assert!(spec("pkg cuda_arch=70,80").satisfies(&spec("pkg cuda_arch=70")));
    assert!(!spec("pkg cuda_arch=70").satisfies(&spec("pkg cuda_arch=70,80")));
}

#[test]
fn satisfies_compiler() {
    assert!(spec("pkg%gcc@=12.1.1").satisfies(&spec("pkg%gcc")));
    assert!(spec("pkg%gcc@=12.1.1").satisfies(&spec("pkg%gcc@12.1.1")));
    assert!(spec("pkg%gcc@=12.1.1").satisfies(&spec("pkg%gcc@12:")));
    assert!(!spec("pkg%clang@=14").satisfies(&spec("pkg%gcc")));
    assert!(!spec("pkg").satisfies(&spec("pkg%gcc")));
}

#[test]
fn satisfies_target_uses_archspec() {
    // zen3 satisfies requests for its generic ancestors.
    assert!(spec("pkg target=zen3").satisfies(&spec("pkg target=x86_64_v3")));
    assert!(spec("pkg target=zen3").satisfies(&spec("pkg target=x86_64")));
    assert!(!spec("pkg target=x86_64_v3").satisfies(&spec("pkg target=zen3")));
    assert!(!spec("pkg target=zen3").satisfies(&spec("pkg target=skylake")));
    assert!(spec("pkg target=zen3").satisfies(&spec("pkg target=zen3")));
}

#[test]
fn satisfies_dependencies() {
    let concrete = spec("saxpy@=1.0.0+openmp ^cmake@=3.23.1");
    assert!(concrete.satisfies(&spec("saxpy ^cmake@3.20:")));
    assert!(!concrete.satisfies(&spec("saxpy ^cmake@3.24:")));
    assert!(!concrete.satisfies(&spec("saxpy ^ninja")));
}

#[test]
fn intersects_basic() {
    assert!(spec("pkg@1.2:").intersects(&spec("pkg@:1.4")));
    assert!(!spec("pkg@2:").intersects(&spec("pkg@:1.4")));
    assert!(!spec("a").intersects(&spec("b")));
    assert!(spec("pkg+mp").intersects(&spec("pkg")));
    assert!(!spec("pkg+mp").intersects(&spec("pkg~mp")));
    assert!(spec("pkg target=zen3").intersects(&spec("pkg target=x86_64_v3")));
    assert!(!spec("pkg target=zen3").intersects(&spec("pkg target=power9le")));
    // anonymous intersects anything compatible
    assert!(spec("+mp").intersects(&spec("pkg+mp")));
}

#[test]
fn constrain_merges() {
    let mut s = spec("amg2023+caliper");
    s.constrain(&spec("amg2023@1.1: %gcc@12.1.1 target=skylake_avx512"))
        .unwrap();
    assert!(s.versions.contains(&v("1.2")));
    assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");
    assert_eq!(s.target.as_deref(), Some("skylake_avx512"));
    assert_eq!(s.variants.get("caliper"), Some(&VariantValue::Bool(true)));
}

#[test]
fn constrain_keeps_more_specific_target() {
    let mut s = spec("pkg target=zen3");
    s.constrain(&spec("pkg target=x86_64_v3")).unwrap();
    assert_eq!(s.target.as_deref(), Some("zen3"));

    let mut s = spec("pkg target=x86_64_v3");
    s.constrain(&spec("pkg target=zen3")).unwrap();
    assert_eq!(s.target.as_deref(), Some("zen3"));
}

#[test]
fn constrain_conflicts() {
    assert!(spec("a").constrain(&spec("b")).is_err());
    assert!(spec("pkg+mp").constrain(&spec("pkg~mp")).is_err());
    assert!(spec("pkg%gcc").constrain(&spec("pkg%clang")).is_err());
    assert!(spec("pkg@1.2").constrain(&spec("pkg@2.0")).is_err());
    assert!(spec("pkg target=zen3")
        .constrain(&spec("pkg target=skylake"))
        .is_err());
}

#[test]
fn constrain_dependency_merge() {
    let mut s = spec("app ^mpi@4:");
    s.constrain(&spec("app ^mpi+cuda ^cmake")).unwrap();
    let mpi = s.dependencies.get("mpi").unwrap();
    assert!(mpi.versions.contains(&v("4.1")));
    assert_eq!(mpi.variants.get("cuda"), Some(&VariantValue::Bool(true)));
    assert!(s.dependencies.contains_key("cmake"));
}

#[test]
fn anonymous_constrain_adopts_name() {
    let mut s = spec("+debug");
    s.constrain(&spec("hypre")).unwrap();
    assert_eq!(s.name.as_deref(), Some("hypre"));
}

#[test]
fn is_concrete() {
    assert!(!spec("saxpy@1.0.0+openmp").is_concrete());
    let c = spec("saxpy@=1.0.0+openmp%gcc@=12.1.1 target=skylake_avx512");
    assert!(c.is_concrete());
    let with_abstract_dep = spec("saxpy@=1.0.0%gcc@=12.1.1 target=zen3 ^cmake@3:");
    assert!(!with_abstract_dep.is_concrete());
}

#[test]
fn traverse_counts_nodes() {
    let s = spec("app ^mpi ^cmake");
    assert_eq!(s.traverse().len(), 3);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_version() -> impl Strategy<Value = String> {
        prop::collection::vec(0u32..30, 1..4).prop_map(|parts| {
            parts
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(".")
        })
    }

    fn arb_spec_text() -> impl Strategy<Value = String> {
        (
            "[a-z][a-z0-9-]{0,8}",
            prop::option::of(arb_version()),
            prop::collection::vec(("[a-z]{1,6}", any::<bool>()), 0..3),
            prop::option::of("[a-z]{1,5}"),
        )
            .prop_map(|(name, version, variants, compiler)| {
                let mut s = name;
                if let Some(v) = version {
                    s.push('@');
                    s.push_str(&v);
                }
                for (var, on) in variants {
                    s.push(if on { '+' } else { '~' });
                    s.push_str(&var);
                }
                if let Some(c) = compiler {
                    s.push('%');
                    s.push_str(&c);
                }
                s
            })
    }

    proptest! {
        /// display → parse is the identity.
        #[test]
        fn display_parse_roundtrip(text in arb_spec_text()) {
            prop_assume!(text.parse::<Spec>().is_ok());
            let parsed: Spec = text.parse().unwrap();
            let reparsed: Spec = parsed.to_string().parse().unwrap();
            prop_assert_eq!(parsed, reparsed);
        }

        /// satisfies is reflexive.
        #[test]
        fn satisfies_reflexive(text in arb_spec_text()) {
            prop_assume!(text.parse::<Spec>().is_ok());
            let s: Spec = text.parse().unwrap();
            prop_assert!(s.satisfies(&s));
        }

        /// a.constrain(b) succeeds ⇒ result satisfies b's variant/name
        /// constraints and intersects both inputs.
        #[test]
        fn constrain_produces_common_refinement(a in arb_spec_text(), b in arb_spec_text()) {
            let (Ok(sa), Ok(sb)) = (a.parse::<Spec>(), b.parse::<Spec>()) else { return Ok(()); };
            let mut merged = sa.clone();
            if merged.constrain(&sb).is_ok() {
                prop_assert!(merged.intersects(&sa), "merged {merged} !~ {sa}");
                prop_assert!(merged.intersects(&sb), "merged {merged} !~ {sb}");
            }
        }

        /// intersects is symmetric.
        #[test]
        fn intersects_symmetric(a in arb_spec_text(), b in arb_spec_text()) {
            let (Ok(sa), Ok(sb)) = (a.parse::<Spec>(), b.parse::<Spec>()) else { return Ok(()); };
            prop_assert_eq!(sa.intersects(&sb), sb.intersects(&sa));
        }

        /// Version ordering is total and consistent with equality.
        #[test]
        fn version_order_total(a in arb_version(), b in arb_version()) {
            let (va, vb) = (Version::new(&a), Version::new(&b));
            let ord = va.cmp(&vb);
            prop_assert_eq!(ord.reverse(), vb.cmp(&va));
            if ord == std::cmp::Ordering::Equal {
                prop_assert!(va.is_prefix_of(&vb) && vb.is_prefix_of(&va));
            }
        }

        /// Range intersection is sound: versions in the intersection are in
        /// both inputs.
        #[test]
        fn range_intersection_sound(
            lo1 in arb_version(), hi1 in arb_version(),
            lo2 in arb_version(), hi2 in arb_version(),
            probe in arb_version(),
        ) {
            use crate::VersionRange;
            let mk = |lo: &str, hi: &str| {
                let (l, h) = (Version::new(lo), Version::new(hi));
                let (l, h) = if l <= h { (l, h) } else { (h, l) };
                VersionRange { lo: Some(l), hi: Some(h), exact: false }
            };
            let r1 = mk(&lo1, &hi1);
            let r2 = mk(&lo2, &hi2);
            if let Some(inter) = r1.intersect(&r2) {
                let p = Version::new(&probe);
                if inter.contains(&p) {
                    prop_assert!(r1.contains(&p), "{p} in {inter} but not in {r1}");
                    prop_assert!(r2.contains(&p), "{p} in {inter} but not in {r2}");
                }
            }
        }
    }
}
