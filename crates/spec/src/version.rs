//! Version numbers, ranges, and constraint unions with Spack semantics.

use crate::error::SpecError;
use std::cmp::Ordering;
use std::fmt;

/// One component of a version: numeric components compare numerically,
/// alphabetic ones lexically; numbers sort after letters of the same position
/// (so `1.2rc1 < 1.2`... see `Ord` impl note).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Component {
    Num(u64),
    Alpha(String),
}

impl Ord for Component {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Component::Num(a), Component::Num(b)) => a.cmp(b),
            (Component::Alpha(a), Component::Alpha(b)) => a.cmp(b),
            // Alphabetic components (pre-release tags, `develop`) sort before
            // numeric ones at the same position.
            (Component::Alpha(_), Component::Num(_)) => Ordering::Less,
            (Component::Num(_), Component::Alpha(_)) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Component {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A concrete version like `1.2.3`, `2.3.7-gcc12.1.1-magic`, or `develop`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Version {
    /// Original text (kept for display: `2.3.7-gcc12.1.1-magic`).
    text: String,
    /// Parsed components for comparison.
    components: Vec<Component>,
}

impl Version {
    /// Parses a version. Any non-empty string is a valid version.
    pub fn new(text: &str) -> Version {
        let mut components = Vec::new();
        let mut cur = String::new();
        let mut cur_is_num: Option<bool> = None;
        let flush = |cur: &mut String, is_num: Option<bool>, out: &mut Vec<Component>| {
            if cur.is_empty() {
                return;
            }
            if is_num == Some(true) {
                out.push(Component::Num(cur.parse().unwrap_or(u64::MAX)));
            } else {
                out.push(Component::Alpha(std::mem::take(cur).to_lowercase()));
                return;
            }
            cur.clear();
        };
        for c in text.chars() {
            if c == '.' || c == '-' || c == '_' {
                flush(&mut cur, cur_is_num, &mut components);
                cur.clear();
                cur_is_num = None;
            } else {
                let is_num = c.is_ascii_digit();
                if cur_is_num.is_some() && cur_is_num != Some(is_num) {
                    // boundary between digits and letters: `12a` → `12`, `a`
                    flush(&mut cur, cur_is_num, &mut components);
                    cur.clear();
                }
                cur_is_num = Some(is_num);
                cur.push(c);
            }
        }
        flush(&mut cur, cur_is_num, &mut components);
        Version {
            text: text.to_string(),
            components,
        }
    }

    /// The original text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// True if `self` is a component-wise prefix of `other` (`1.2` is a
    /// prefix of `1.2.3`); used for Spack's series semantics where `@1.2`
    /// admits `1.2.3`.
    pub fn is_prefix_of(&self, other: &Version) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a == b)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the empty version.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.components.iter().zip(&other.components) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.components.len().cmp(&other.components.len())
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl std::str::FromStr for Version {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(SpecError::parse(0, "empty version"));
        }
        Ok(Version::new(s))
    }
}

/// A single version range.
///
/// * `@1.2` → `lo = hi = 1.2`, prefix-inclusive (admits the `1.2` series).
/// * `@=1.2` → exact: admits only `1.2` itself.
/// * `@1.2:1.4` → inclusive range; the upper bound is prefix-inclusive
///   (`1.4.5` is admitted).
/// * `@1.2:` / `@:1.4` → half-open.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionRange {
    pub lo: Option<Version>,
    pub hi: Option<Version>,
    /// True for `@=x.y`: only the exact version is admitted.
    pub exact: bool,
}

impl VersionRange {
    /// The unconstrained range `:`.
    pub fn any() -> VersionRange {
        VersionRange {
            lo: None,
            hi: None,
            exact: false,
        }
    }

    /// The prefix-series range for a single version (`@1.2`).
    pub fn series(v: Version) -> VersionRange {
        VersionRange {
            lo: Some(v.clone()),
            hi: Some(v),
            exact: false,
        }
    }

    /// The exact single version (`@=1.2`).
    pub fn exact(v: Version) -> VersionRange {
        VersionRange {
            lo: Some(v.clone()),
            hi: Some(v),
            exact: true,
        }
    }

    /// True if this range admits `v`.
    pub fn contains(&self, v: &Version) -> bool {
        if self.exact {
            return self.lo.as_ref() == Some(v);
        }
        if let Some(lo) = &self.lo {
            // `v` must be >= lo, where any member of the lo series counts
            // (lo is a prefix of v ⇒ in range even though e.g. 1.2.0 > 1.2
            // holds anyway; the symmetric case matters for hi).
            if v < lo && !lo.is_prefix_of(v) {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if v > hi && !hi.is_prefix_of(v) {
                return false;
            }
        }
        true
    }

    /// True if every version admitted by `self` is admitted by `other`.
    pub fn subset_of(&self, other: &VersionRange) -> bool {
        if other.exact {
            // only an identical exact range, or a series that equals the
            // exact version with no longer members… conservatively require
            // exact-equality.
            return self.exact && self.lo == other.lo;
        }
        // lower bound: other.lo must not exclude anything self admits
        let lo_ok = match (&self.lo, &other.lo) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a >= b || b.is_prefix_of(a),
        };
        // upper bound, prefix-inclusive
        let hi_ok = match (&self.hi, &other.hi) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b || b.is_prefix_of(a),
        };
        lo_ok && hi_ok
    }

    /// Intersection of two ranges, or `None` if empty.
    pub fn intersect(&self, other: &VersionRange) -> Option<VersionRange> {
        if self.exact {
            return other
                .contains(self.lo.as_ref().unwrap())
                .then(|| self.clone());
        }
        if other.exact {
            return self
                .contains(other.lo.as_ref().unwrap())
                .then(|| other.clone());
        }
        // max of lows
        let lo = match (&self.lo, &other.lo) {
            (None, x) => x.clone(),
            (x, None) => x.clone(),
            (Some(a), Some(b)) => Some(if a >= b { a.clone() } else { b.clone() }),
        };
        // min of highs — prefer the *narrower* (prefix-aware) bound
        let hi = match (&self.hi, &other.hi) {
            (None, x) => x.clone(),
            (x, None) => x.clone(),
            (Some(a), Some(b)) => {
                if a.is_prefix_of(b) {
                    Some(b.clone()) // b is deeper inside a's series → narrower
                } else if b.is_prefix_of(a) {
                    Some(a.clone())
                } else {
                    Some(if a <= b { a.clone() } else { b.clone() })
                }
            }
        };
        // emptiness check: lo must not exceed hi
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l > h && !h.is_prefix_of(l) {
                return None;
            }
        }
        Some(VersionRange {
            lo,
            hi,
            exact: false,
        })
    }
}

impl fmt::Display for VersionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exact {
            return write!(f, "={}", self.lo.as_ref().unwrap());
        }
        match (&self.lo, &self.hi) {
            (None, None) => write!(f, ":"),
            (Some(lo), Some(hi)) if lo == hi => write!(f, "{lo}"),
            (Some(lo), None) => write!(f, "{lo}:"),
            (None, Some(hi)) => write!(f, ":{hi}"),
            (Some(lo), Some(hi)) => write!(f, "{lo}:{hi}"),
        }
    }
}

/// A union of version ranges: the constraint after `@`.
///
/// An empty list means "unconstrained".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VersionConstraint {
    pub ranges: Vec<VersionRange>,
}

impl VersionConstraint {
    /// The unconstrained version set.
    pub fn any() -> VersionConstraint {
        VersionConstraint { ranges: Vec::new() }
    }

    /// A constraint admitting exactly `v`.
    pub fn exactly(v: Version) -> VersionConstraint {
        VersionConstraint {
            ranges: vec![VersionRange::exact(v)],
        }
    }

    /// A constraint for the version series of `v` (`@1.2`).
    pub fn series(v: Version) -> VersionConstraint {
        VersionConstraint {
            ranges: vec![VersionRange::series(v)],
        }
    }

    /// True if no constraint was given.
    pub fn is_any(&self) -> bool {
        self.ranges.is_empty() || self.ranges.iter().any(|r| r.lo.is_none() && r.hi.is_none())
    }

    /// True if `v` is admitted.
    pub fn contains(&self, v: &Version) -> bool {
        self.is_any() || self.ranges.iter().any(|r| r.contains(v))
    }

    /// True if every version admitted by `self` is admitted by `other`.
    /// (Conservative: each of our ranges must fit inside one of theirs.)
    pub fn satisfies(&self, other: &VersionConstraint) -> bool {
        if other.is_any() {
            return true;
        }
        if self.is_any() {
            return false;
        }
        self.ranges
            .iter()
            .all(|a| other.ranges.iter().any(|b| a.subset_of(b)))
    }

    /// True if some version could satisfy both constraints.
    pub fn intersects(&self, other: &VersionConstraint) -> bool {
        if self.is_any() || other.is_any() {
            return true;
        }
        self.ranges
            .iter()
            .any(|a| other.ranges.iter().any(|b| a.intersect(b).is_some()))
    }

    /// Narrows `self` to the intersection with `other`.
    pub fn constrain(&mut self, other: &VersionConstraint) -> Result<(), SpecError> {
        if other.is_any() {
            return Ok(());
        }
        if self.is_any() {
            self.ranges = other.ranges.clone();
            return Ok(());
        }
        let mut result = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                if let Some(r) = a.intersect(b) {
                    if !result.contains(&r) {
                        result.push(r);
                    }
                }
            }
        }
        if result.is_empty() {
            return Err(SpecError::conflict(format!(
                "version constraints @{self} and @{other} are disjoint"
            )));
        }
        self.ranges = result;
        Ok(())
    }

    /// If the constraint pins a single concrete version (`@=v` or a
    /// degenerate series), returns it.
    pub fn concrete(&self) -> Option<&Version> {
        match self.ranges.as_slice() {
            [range] if range.exact => range.lo.as_ref(),
            _ => None,
        }
    }

    /// The highest version bound mentioned, used for preference ordering.
    pub fn highest_mentioned(&self) -> Option<&Version> {
        self.ranges
            .iter()
            .filter_map(|r| r.hi.as_ref().or(r.lo.as_ref()))
            .max()
    }
}

impl fmt::Display for VersionConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.ranges.iter().map(|r| r.to_string()).collect();
        f.write_str(&parts.join(","))
    }
}
