//! Parser for the spec syntax.
//!
//! Grammar (whitespace between clauses optional where unambiguous):
//!
//! ```text
//! spec      := clause*
//! clause    := name | '@' versions | '+' variant | '~' variant
//!            | key '=' value | '%' compiler | '^' spec-for-dependency
//! versions  := range (',' range)*
//! range     := '=' version | version | version ':' version? | ':' version
//! ```
//!
//! `^` always attaches a dependency to the *root* spec (as in Spack), and
//! subsequent clauses apply to that dependency until the next `^`.
//! Boolean negation uses `~` (the `-variant` form is ambiguous with names
//! containing dashes and is not supported).

use crate::error::SpecError;
use crate::spec::{CompilerSpec, Spec};
use crate::variant::VariantValue;
use crate::version::{Version, VersionConstraint, VersionRange};

/// Parses a complete spec expression.
pub fn parse_spec(input: &str) -> Result<Spec, SpecError> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
    };
    let mut root = Spec::anonymous();
    // Which spec subsequent clauses apply to: None = root, Some(name) = dep.
    let mut context: Option<String> = None;

    p.skip_ws();
    while p.pos < p.chars.len() {
        let at = p.pos;
        match p.chars[p.pos] {
            '@' => {
                p.pos += 1;
                let vc = p.parse_versions()?;
                target_spec(&mut root, &context).versions.constrain(&vc)?;
            }
            '+' => {
                p.pos += 1;
                let name = p.parse_word("variant name")?;
                set_variant(
                    target_spec(&mut root, &context),
                    &name,
                    VariantValue::Bool(true),
                )?;
            }
            '~' => {
                p.pos += 1;
                let name = p.parse_word("variant name")?;
                set_variant(
                    target_spec(&mut root, &context),
                    &name,
                    VariantValue::Bool(false),
                )?;
            }
            '%' => {
                p.pos += 1;
                let name = p.parse_word("compiler name")?;
                let versions = if p.peek() == Some('@') {
                    p.pos += 1;
                    p.parse_versions()?
                } else {
                    VersionConstraint::any()
                };
                let spec = target_spec(&mut root, &context);
                if spec.compiler.is_some() {
                    return Err(SpecError::parse(at, "multiple compiler constraints"));
                }
                spec.compiler = Some(CompilerSpec::new(&name, versions));
            }
            '^' => {
                p.pos += 1;
                p.skip_ws();
                let name = p.parse_word("dependency name")?;
                root.dependencies
                    .entry(name.clone())
                    .or_insert_with(|| Spec::named(&name));
                context = Some(name);
            }
            c if is_word_char(c) => {
                let word = p.parse_word("name")?;
                if p.peek() == Some('=') {
                    p.pos += 1;
                    if crate::spec::FLAG_KEYS.contains(&word.as_str()) {
                        let value = p.parse_maybe_quoted_value()?;
                        let spec = target_spec(&mut root, &context);
                        let entry = spec.compiler_flags.entry(word).or_default();
                        for flag in value.split_whitespace() {
                            if !entry.iter().any(|f| f == flag) {
                                entry.push(flag.to_string());
                            }
                        }
                        p.skip_ws();
                        continue;
                    }
                    let value = p.parse_value()?;
                    let spec = target_spec(&mut root, &context);
                    if word == "target" {
                        if spec.target.is_some() {
                            return Err(SpecError::parse(at, "multiple target constraints"));
                        }
                        spec.target = Some(value);
                    } else {
                        set_variant(spec, &word, VariantValue::from_value_text(&value))?;
                    }
                } else {
                    let spec = target_spec(&mut root, &context);
                    if spec.name.is_some() {
                        return Err(SpecError::parse(
                            at,
                            format!("unexpected second package name `{word}`"),
                        ));
                    }
                    spec.name = Some(word);
                }
            }
            other => {
                return Err(SpecError::parse(
                    at,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
        p.skip_ws();
    }
    Ok(root)
}

fn target_spec<'a>(root: &'a mut Spec, context: &Option<String>) -> &'a mut Spec {
    match context {
        None => root,
        Some(name) => root
            .dependencies
            .get_mut(name)
            .expect("dependency context always exists"),
    }
}

fn set_variant(spec: &mut Spec, name: &str, value: VariantValue) -> Result<(), SpecError> {
    if let Some(existing) = spec.variants.get(name) {
        match existing.merge(&value) {
            Some(merged) => {
                spec.variants.insert(name.to_string(), merged);
                return Ok(());
            }
            None => {
                return Err(SpecError::conflict(format!(
                    "variant `{name}` given twice with conflicting values"
                )));
            }
        }
    }
    spec.variants.insert(name.to_string(), value);
    Ok(())
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

fn is_version_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// A package/variant/compiler name: `[A-Za-z0-9_.-]+`.
    fn parse_word(&mut self, what: &str) -> Result<String, SpecError> {
        let start = self.pos;
        while self.peek().is_some_and(is_word_char) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SpecError::parse(start, format!("expected {what}")));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    /// A variant value: `[A-Za-z0-9_.,+/-]+` (commas separate multi-values).
    fn parse_value(&mut self) -> Result<String, SpecError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| is_word_char(c) || c == ',' || c == '/' || c == '+')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SpecError::parse(start, "expected value after `=`"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    /// A possibly double-quoted value (used for compiler flags, whose values
    /// contain spaces and dashes: `cflags="-O3 -g"`).
    fn parse_maybe_quoted_value(&mut self) -> Result<String, SpecError> {
        if self.peek() == Some('"') {
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some_and(|c| c != '"') {
                self.pos += 1;
            }
            if self.peek() != Some('"') {
                return Err(SpecError::parse(start, "unterminated quoted value"));
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.pos += 1;
            return Ok(text);
        }
        // unquoted: allow flag-ish characters
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| is_word_char(c) || matches!(c, ',' | '/' | '+' | '='))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SpecError::parse(start, "expected value after `=`"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    /// The constraint after `@`: comma-separated ranges.
    fn parse_versions(&mut self) -> Result<VersionConstraint, SpecError> {
        let mut ranges = Vec::new();
        loop {
            ranges.push(self.parse_range()?);
            if self.peek() == Some(',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(VersionConstraint { ranges })
    }

    fn parse_range(&mut self) -> Result<VersionRange, SpecError> {
        let at = self.pos;
        if self.peek() == Some('=') {
            self.pos += 1;
            let v = self.parse_version_text()?;
            return Ok(VersionRange::exact(v));
        }
        let lo = if self.peek().is_some_and(is_version_char) {
            Some(self.parse_version_text()?)
        } else {
            None
        };
        if self.peek() == Some(':') {
            self.pos += 1;
            let hi = if self.peek().is_some_and(is_version_char) {
                Some(self.parse_version_text()?)
            } else {
                None
            };
            Ok(VersionRange {
                lo,
                hi,
                exact: false,
            })
        } else {
            match lo {
                Some(v) => Ok(VersionRange::series(v)),
                None => Err(SpecError::parse(at, "expected version after `@`")),
            }
        }
    }

    fn parse_version_text(&mut self) -> Result<Version, SpecError> {
        let start = self.pos;
        while self.peek().is_some_and(is_version_char) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SpecError::parse(start, "expected version"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        Ok(Version::new(&text))
    }
}
