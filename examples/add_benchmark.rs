//! Adding a benchmark to Benchpark (paper §4): *"To add a benchmark to
//! Benchpark, a full specification of the benchmark, its build, and its run
//! instructions for at least one platform is required."*
//!
//! A contributor adds a brand-new `pingpong` latency micro-benchmark:
//!
//! 1. the **`package.py`** half: a Spack recipe (versions, variants,
//!    dependencies),
//! 2. the **`application.py`** half: executables, workloads, FOM regexes,
//!    success criteria,
//! 3. the **experiment template** (`ramble.yaml`),
//! 4. and a performance model so the simulated cluster can run it.
//!
//! Then the standard nine-step workflow runs it on `cts1`, unchanged.
//!
//! ```text
//! cargo run --example add_benchmark
//! ```

use benchpark::cluster::{AppOutput, CollectiveModel, RunContext};
use benchpark::core::Benchpark;
use benchpark::pkg::{ApplicationDef, DepType, PackageDef, SuccessMode};

/// The contributed benchmark's performance model: MPI ping-pong latency
/// between two ranks across message sizes.
fn pingpong_model(ctx: &RunContext<'_>, args: &[String]) -> AppOutput {
    let max_size: u64 = args
        .iter()
        .position(|a| a == "-m")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let coll = CollectiveModel::new(&ctx.machine.network);
    let mut stdout = String::from("# PingPong latency test\n# Size  Latency(us)\n");
    let mut total = 0.0;
    let mut size = 1u64;
    while size <= max_size {
        let rtt = 2.0 * coll.bcast(benchpark::cluster::BcastAlgorithm::Linear, 2, size);
        stdout.push_str(&format!("{size} {:.3}\n", rtt * 1e6 / 2.0));
        total += rtt * 1000.0;
        size *= 4;
    }
    stdout.push_str("PingPong complete\n");
    AppOutput {
        stdout,
        duration_seconds: total + 0.01,
        exit_code: 0,
        profile: vec![("MPI_Send".to_string(), total / 2.0)],
    }
}

const PINGPONG_TEMPLATE: &str = r#"ramble:
  applications:
    pingpong:
      workloads:
        latency:
          variables:
            batch_time: '10'
            n_nodes: '2'
            n_ranks: '2'
          experiments:
            pingpong_{max_size}:
              variables:
                max_size: ['1024', '65536']
  spack:
    packages:
      pingpong:
        spack_spec: pingpong@1.1 ^cmake@3.23.1
        compiler: default-compiler
    environments:
      pingpong:
        packages:
        - default-mpi
        - pingpong
"#;

fn main() {
    let mut benchpark = Benchpark::new();

    // 1. package.py — the build specification
    benchpark.add_package(
        PackageDef::new("pingpong", "Two-rank MPI latency micro-benchmark")
            .version("1.1")
            .version("1.0")
            .depends_on("cmake@3.20:", DepType::Build)
            .depends_on("mpi", DepType::Link)
            .build_cost(8.0),
    );

    // 2. application.py — run instructions + evaluation
    benchpark.add_application(
        ApplicationDef::new("pingpong", "MPI ping-pong latency")
            .executable("p", "pingpong -m {max_size}", true)
            .workload("latency", &["p"])
            .workload_variable("max_size", "1024", "largest message size", &["latency"])
            .figure_of_merit("latency", r"^(?P<size>\d+) (?P<lat>[0-9.]+)$", "lat", "us")
            .success_criteria(
                "finished",
                SuccessMode::StringMatch,
                r"PingPong complete",
                "{experiment_run_dir}/{experiment_name}.out",
            ),
    );

    // 3 + 4. experiment template + performance model → standard workflow
    let dir = std::env::temp_dir().join("benchpark-add-benchmark");
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = benchpark
        .setup_workspace_from_template(
            "pingpong",
            "latency",
            PINGPONG_TEMPLATE,
            "cts1",
            &dir,
            None,
            &[("pingpong", pingpong_model)],
        )
        .expect("setup succeeds");

    println!(
        "contributed benchmark generated {} experiments:",
        ws.setup_report.experiments.len()
    );
    for exp in &ws.setup_report.experiments {
        println!("  {}", exp.name);
    }
    println!(
        "\nrendered script for pingpong_1024:\n{}",
        ws.workspace.script("pingpong_1024").unwrap()
    );

    ws.run().expect("runs succeed");
    let analysis = ws.analyze(&benchpark).expect("analysis succeeds");
    print!("{}", analysis.render());
    let result = analysis.get("pingpong_65536").unwrap();
    println!(
        "\nper-size context captured by the FOM regex: {:?}",
        result
            .foms
            .iter()
            .map(|f| (
                f.context.get("size").cloned().unwrap_or_default(),
                f.value.clone()
            ))
            .collect::<Vec<_>>()
    );
    println!("\nThe new benchmark needed zero changes to Benchpark itself —");
    println!("exactly the §4 claim: specify package, application, and experiment; the");
    println!("system-specific and automation layers are reused unchanged.");
}
