//! Continuous benchmarking through a system's service life (paper §1):
//! *"once the system has been accepted and is in service, benchmarking is a
//! useful tool for tracking system performance over time and diagnosing
//! hardware failures."*
//!
//! Six scheduled benchmarking epochs run on `cts1`. After epoch 4, a memory
//! DIMM degrades (bandwidth halved on the machine). The regression detector
//! flags the drop immediately, and the §5-style dashboard plot makes it
//! visible. Finally the results are exported in the collaboration format and
//! re-imported at "another center".
//!
//! ```text
//! cargo run --example continuous_tracking
//! ```

use benchpark::cluster::FaultSpec;
use benchpark::core::{ascii_plot, detect_regression, Benchpark, MetricsDatabase, SystemProfile};

fn run_epoch(db: &MetricsDatabase, epoch: usize, degrade: Option<f64>) {
    let benchpark = Benchpark::new();
    let mut machine = SystemProfile::cts1().machine();
    if let Some(factor) = degrade {
        machine = FaultSpec::DegradeMemoryBandwidth(factor).apply(machine);
    }
    let dir = std::env::temp_dir().join(format!("benchpark-tracking-{epoch}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = benchpark
        .setup_workspace_on("stream", "openmp", "cts1", dir, Some(machine))
        .expect("setup");
    ws.run().expect("run");
    let analysis = ws.analyze(&benchpark).expect("analyze");
    db.record(
        "cts1",
        "stream",
        "openmp",
        &ws.manifest(),
        &analysis.results,
    );
}

fn main() {
    let db = MetricsDatabase::new();

    println!("running 6 scheduled benchmarking epochs on cts1…");
    for epoch in 1..=6 {
        // the DIMM fails before epoch 5
        let degrade = (epoch >= 5).then_some(0.5);
        run_epoch(&db, epoch, degrade);
        let verdict = detect_regression(&db, "stream", "cts1", "triad_bw", true, 0.10);
        match verdict {
            Some(report) => println!("epoch {epoch}: {}", report.render()),
            None => println!("epoch {epoch}: gathering baseline…"),
        }
    }

    // dashboard view: triad bandwidth at max threads, per epoch
    let points: Vec<(f64, f64)> = db
        .query(Some("stream"), Some("cts1"))
        .into_iter()
        .filter(|r| r.result.variables.get("n_threads").map(String::as_str) == Some("36"))
        .filter_map(|r| {
            let y = r
                .result
                .foms
                .iter()
                .find(|f| f.name == "triad_bw")
                .and_then(|f| f.as_f64())?;
            Some((r.sequence as f64, y))
        })
        .collect();
    println!(
        "\n{}",
        ascii_plot(
            "STREAM triad MB/s (36 threads) across benchmarking epochs",
            &points,
            None,
            48,
            10
        )
    );

    println!(
        "benchmark usage (most exercised first): {:?}",
        db.usage_counts()
    );

    // share the history with a collaborator (§5)
    let exported = db.export_text();
    let other_center = MetricsDatabase::new();
    let imported = other_center.import_text(&exported).expect("import");
    println!(
        "\nexported {} results; the collaborating center imported {imported} and sees:",
        db.len()
    );
    print!("{}", other_center.render_dashboard());
}
