//! A procurement study — the paper's §1 motivating use case:
//! *"benchmarking … helps evaluate which of the proposed HPC systems will
//! result in the best performance for a particular HPC center workload."*
//!
//! The center's workload mix (multigrid solves, memory bandwidth, hydro,
//! collective latency) runs on three candidate systems through the full
//! Benchpark pipeline; candidates are scored on performance and
//! performance-per-watt.
//!
//! ```text
//! cargo run --example procurement
//! ```

use benchpark::core::{MetricsDatabase, ProcurementStudy, SystemProfile, WorkloadSpec};

fn main() {
    println!("=== Candidate systems ===");
    for name in ["cts1", "ats2", "ats4"] {
        let machine = SystemProfile::by_name(name).unwrap().machine();
        println!(
            "{:<6} {:<52} {:>5} nodes, {:.1} kW/node",
            name, machine.description, machine.nodes, machine.node_power_kw
        );
    }

    // The center's workload mix: weights reflect how much of the center's
    // cycles each class of application consumes.
    let workloads = vec![
        WorkloadSpec::uniform("amg2023", "openmp", "solve_fom", true, 4.0)
            .with_variant("ats2", "cuda")
            .with_variant("ats4", "rocm"),
        WorkloadSpec::uniform("lulesh", "openmp", "fom", true, 3.0),
        WorkloadSpec::uniform("stream", "openmp", "triad_bw", true, 2.0),
    ];
    println!("\n=== Workload mix ===");
    for w in &workloads {
        println!(
            "  {:<10} fom={:<10} weight={}",
            w.benchmark, w.fom, w.weight
        );
    }

    let study = ProcurementStudy::new(workloads, &["cts1", "ats2", "ats4"]);
    let db = MetricsDatabase::new();
    let base = std::env::temp_dir().join("benchpark-procurement");
    let _ = std::fs::remove_dir_all(&base);
    let report = study.run(&base, &db).expect("study must run");

    println!("\n{}", report.render());

    println!("=== Raw measurements ===");
    for ((workload, system), m) in &report.measurements {
        println!(
            "  {workload:<10} on {system:<6}  fom={:<14.4e} energy={:.4} kWh",
            m.fom_value, m.energy_kwh
        );
    }

    println!(
        "\n({} results stored with manifests in the metrics database)",
        db.len()
    );
}
