//! Paper §7.1 reproduction: the cloud math-library bug.
//!
//! *"we moved a few simple benchmark kernels between an on-premise
//! supercomputer and cloud instances of similar architecture … the
//! microbenchmark was executing correctly on one system but crashing on the
//! other … the root cause, i.e., a bug in the underlying math library
//! related to a specific hardware feature (which was missing in the cloud),
//! was identified within days."*
//!
//! Here the same binary — built for `skylake_avx512` on `cts1` — runs
//! on-premise but dies with SIGILL on the cloud instances, whose hypervisor
//! masks AVX-512. Benchpark's functional reproducibility surfaces the root
//! cause immediately: the two systems' archspec detections differ, and
//! rebuilding for the common microarchitecture fixes the crash.
//!
//! ```text
//! cargo run --example cloud_portability
//! ```

use benchpark::archspec::taxonomy;
use benchpark::cluster::{BinaryInfo, Cluster, JobState, Machine, ProgrammingModel};

const SCRIPT: &str = "#!/bin/bash\n#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 saxpy -n 1024\n";

fn run_on(machine: Machine, binary: BinaryInfo) -> (String, JobState, i32) {
    let name = machine.name.clone();
    let mut cluster = Cluster::new(machine);
    cluster.install_binary(binary);
    let id = cluster.submit_script(SCRIPT, "jens").unwrap();
    cluster.run_until_idle();
    let job = cluster.job(id).unwrap();
    (name, job.state, job.exit_code)
}

fn main() {
    let onprem = Machine::cts1();
    let cloud = Machine::cloud_c5();
    println!(
        "on-premise system: {} → archspec target `{}`",
        onprem.name,
        onprem.target().name
    );
    println!(
        "cloud instances:   {} → archspec target `{}`",
        cloud.name,
        cloud.target().name
    );

    let skx = taxonomy().get("skylake_avx512").unwrap();
    let missing: Vec<&String> = skx
        .all_features
        .iter()
        .filter(|f| !cloud.cpu.features.contains(*f))
        .collect();
    println!("features of skylake_avx512 missing in the cloud: {missing:?}\n");

    // the binary as built on-premise (vectorized math library included)
    let optimized = BinaryInfo::for_target("saxpy", "skylake_avx512", ProgrammingModel::OpenMp);
    println!(
        "binary `saxpy` built for target=skylake_avx512 (requires {:?})",
        optimized.required_features
    );

    let (name, state, code) = run_on(Machine::cts1(), optimized.clone());
    println!("  on {name}: {state:?} (exit {code})");
    let (name, state, code) = run_on(Machine::cloud_c5(), optimized);
    println!("  on {name}: {state:?} (exit {code})  ← the §7.1 crash (SIGILL)");

    // the fix: rebuild for the least common microarchitecture
    println!("\nrebuilding for target=skylake (the common denominator archspec reports):");
    let portable = BinaryInfo::for_target("saxpy", "skylake", ProgrammingModel::OpenMp);
    let (name, state, code) = run_on(Machine::cts1(), portable.clone());
    println!("  on {name}: {state:?} (exit {code})");
    let (name, state, code) = run_on(Machine::cloud_c5(), portable);
    println!("  on {name}: {state:?} (exit {code})");

    println!(
        "\nWith Benchpark, the build manifest records the exact target and the\n\
         system configs record each machine's microarchitecture, so this class\n\
         of cross-site bug is visible *before* anyone spends days debugging."
    );
}
