//! Figure 6 reproduction: the full collaborative continuous-benchmarking
//! automation loop.
//!
//! An outside contributor forks the canonical Benchpark repository and opens
//! a pull request adding a benchmark run. Hubcast refuses to mirror the
//! untrusted PR until a site administrator approves it; Jacamar decides
//! which user the CI jobs run as; the GitLab pipeline builds the software
//! through Spack (publishing to the shared S3-style binary cache) and runs
//! the benchmark on the simulated cluster; statuses stream back to GitHub
//! and the PR merges.
//!
//! ```text
//! cargo run --example ci_pipeline
//! ```

use benchpark::ci::{
    run_pipeline, BenchparkExecutor, Hub, Hubcast, Jacamar, Lab, MirrorDecision, Repository,
    SiteAccounts,
};
use benchpark::cluster::{Cluster, Machine};
use benchpark::core::SystemProfile;
use benchpark::pkg::Repo;

const CI_CONFIG: &str = "stages:\n  - build\n  - bench\nbuild-cts1:\n  stage: build\n  script:\n    - spack install amg2023+caliper\n  tags: [cts1]\nbench-cts1:\n  stage: bench\n  script:\n    - submit cts1 ci/amg_cts1.sbatch\n  tags: [cts1]\n";

const BENCH_SCRIPT: &str = "#!/bin/bash\n#SBATCH -N 1\n#SBATCH -n 8\n#SBATCH -t 30:00\nsrun -N 1 -n 8 amg -P 2 2 2 -n 64 64 64 -problem 1\n";

fn main() {
    // --- the canonical repository on GitHub ------------------------------
    let mut canonical = Repository::init("llnl/benchpark");
    canonical
        .commit(
            "main",
            "olga",
            "initial import",
            &[(".gitlab-ci.yml", CI_CONFIG)],
        )
        .unwrap();
    let mut hub = Hub::new(canonical);
    hub.add_admin("olga");

    // --- an outside contributor forks and opens a PR ----------------------
    let fork = hub.fork("llnl/benchpark", "jens").unwrap();
    let repo = hub.repos.get_mut(&fork).unwrap();
    repo.create_branch("add-amg-run", "main").unwrap();
    repo.commit(
        "add-amg-run",
        "jens",
        "add AMG2023 benchmark run on cts1",
        &[("ci/amg_cts1.sbatch", BENCH_SCRIPT)],
    )
    .unwrap();
    let pr = hub
        .open_pr("llnl/benchpark", &fork, "add-amg-run", "main", "jens")
        .unwrap();
    println!("PR #{pr} opened by jens (not a member of the trusted org)");

    // --- Hubcast: untrusted PRs wait for approval --------------------------
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga", "alec"]));
    let mut hubcast = Hubcast::new();

    match hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr) {
        MirrorDecision::AwaitingApproval => {
            println!("hubcast: PR not mirrored — awaiting site/system administrator review")
        }
        other => panic!("unexpected: {other:?}"),
    }

    println!("olga (site admin) reviews and approves the PR");
    hub.approve(pr, "olga").unwrap();

    let MirrorDecision::Mirrored { pipeline, run_as } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("expected mirror after approval");
    };
    println!("hubcast: mirrored to GitLab; pipeline #{pipeline} created");
    println!("jacamar: jobs will run as `{run_as}` (jens has no site account)");

    // --- CI builders + benchmark runners ----------------------------------
    let pkg_repo = Repo::builtin();
    let site = SystemProfile::cts1().site_config();
    let mut executor = BenchparkExecutor::new(&pkg_repo, site);
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
    run_pipeline(&mut lab, pipeline, &run_as, &mut executor).unwrap();

    let p = lab.pipeline(pipeline).unwrap();
    println!("\n=== pipeline #{} [{:?}] ===", p.id, p.state());
    for job in &p.jobs {
        println!(
            "\n--- job {} (stage {}, ran as {}) [{:?}] ---",
            job.name,
            job.stage,
            job.ran_as.as_deref().unwrap_or("-"),
            job.state
        );
        print!("{}", job.log);
    }
    let (hits, misses, pushes) = executor.cache.stats();
    println!("\nbinary cache: {hits} hits, {misses} misses, {pushes} pushes");

    // --- status streams back, the PR merges -------------------------------
    hubcast.report_pipeline(&mut hub, &lab, pr, pipeline);
    println!("\n=== status checks on PR #{pr} ===");
    for check in &hub.pr(pr).unwrap().checks {
        println!(
            "  {:<22} {:?}  {}",
            check.context, check.state, check.description
        );
    }
    hub.merge("llnl/benchpark", pr).unwrap();
    println!("\nPR #{pr} merged — the canonical repository now carries the new benchmark");
}
