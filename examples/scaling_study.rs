//! Figure 14 reproduction: an Extra-P model of `MPI_Bcast` on the CTS
//! architecture, plus the broadcast-algorithm ablation (A4).
//!
//! The paper fits `-0.6355857931034596 + 0.04660217702356169 · p^(1)` to
//! MPI_Bcast measurements between 2 and ~3456 processes on CTS. We run the
//! same scaling study on the simulated `cts1` (whose MPI library uses a
//! linear broadcast) and recover the same functional form; switching the
//! library to a binomial tree flips the fitted model to `log₂(p)`.
//!
//! ```text
//! cargo run --example scaling_study
//! ```

use benchpark::cluster::BcastAlgorithm;
use benchpark::core::{scaling, MetricsDatabase};

fn main() {
    let db = MetricsDatabase::new();
    let base = std::env::temp_dir().join("benchpark-scaling-study");
    let _ = std::fs::remove_dir_all(&base);

    println!("=== Figure 14: MPI_Bcast on CTS (linear broadcast) ===\n");
    let linear = scaling::bcast_scaling_study("cts1", None, base.join("linear"), &db)
        .expect("scaling study must run");
    print!("{}", linear.render());
    println!(
        "\npaper's model:  -0.6355857931034596 + 0.04660217702356169 * p^(1)\nour model:      {}\n",
        linear.model
    );

    println!("=== Ablation A4: binomial-tree broadcast ===\n");
    let tree = scaling::bcast_scaling_study(
        "cts1",
        Some(BcastAlgorithm::BinomialTree),
        base.join("tree"),
        &db,
    )
    .expect("ablation must run");
    print!("{}", tree.render());

    println!("\n=== Ablation A4: scatter-allgather broadcast ===\n");
    let sag = scaling::bcast_scaling_study(
        "cts1",
        Some(BcastAlgorithm::ScatterAllgather),
        base.join("sag"),
        &db,
    )
    .expect("ablation must run");
    print!("{}", sag.render());

    println!("\n=== Crossover ===");
    for p in [36.0, 288.0, 3456.0] {
        println!(
            "p = {:>5}: linear {:>10.4}s   tree {:>10.6}s   speedup {:>7.1}x",
            p,
            linear.model.predict(p),
            tree.model.predict(p),
            linear.model.predict(p) / tree.model.predict(p).max(1e-12)
        );
    }
    println!(
        "\nmetrics database now holds {} results across all studies",
        db.len()
    );
}
