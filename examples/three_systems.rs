//! Paper §4 demonstration: saxpy and AMG2023 built and run on all three
//! systems — `cts1` (Intel Xeon, Slurm), `ats2` (Power9 + V100, LSF), and
//! `ats4` (Trento + MI250X, Flux) — each with the programming model the
//! system supports, everything recorded in one metrics database.
//!
//! ```text
//! cargo run --example three_systems
//! ```

use benchpark::core::{Benchpark, MetricsDatabase, SystemProfile};

fn main() {
    let benchpark = Benchpark::new();
    let db = MetricsDatabase::new();
    let base = std::env::temp_dir().join("benchpark-three-systems");
    let _ = std::fs::remove_dir_all(&base);

    println!("=== Systems ===");
    for profile in SystemProfile::all() {
        let machine = profile.machine();
        println!(
            "{:<9} {:<52} target={} sched={:?}",
            profile.name,
            machine.description,
            machine.target().name,
            machine.scheduler
        );
    }

    let combos = [
        ("saxpy", "openmp", "cts1"),
        ("saxpy", "cuda", "ats2"),
        ("saxpy", "rocm", "ats4"),
        ("amg2023", "openmp", "cts1"),
        ("amg2023", "cuda", "ats2"),
        ("amg2023", "rocm", "ats4"),
    ];

    for (benchmark, variant, system) in combos {
        println!("\n=== {benchmark}/{variant} on {system} ===");
        let mut ws = benchpark
            .setup_workspace(
                benchmark,
                variant,
                system,
                base.join(format!("{benchmark}-{system}")),
            )
            .unwrap_or_else(|e| panic!("{benchmark} on {system}: {e}"));
        ws.run().expect("runs succeed");
        let analysis = ws.analyze(&benchpark).expect("analysis succeeds");
        db.record(
            system,
            benchmark,
            variant,
            &ws.manifest(),
            &analysis.results,
        );
        for result in &analysis.results {
            let foms: Vec<String> = result
                .foms
                .iter()
                .filter(|f| !f.units.is_empty())
                .map(|f| format!("{}={} {}", f.name, f.value, f.units))
                .collect();
            println!(
                "  {:<40} {:?}  {}",
                result.experiment,
                result.status,
                foms.join("  ")
            );
        }
    }

    // the GPU systems should show (much) higher AMG solve FOMs
    println!("\n=== AMG2023 solve FOM by system (higher is better) ===");
    for system in ["cts1", "ats2", "ats4"] {
        let records = db.query(Some("amg2023"), Some(system));
        let best: f64 = records
            .iter()
            .flat_map(|r| r.result.foms.iter())
            .filter(|f| f.name == "solve_fom")
            .filter_map(|f| f.as_f64())
            .fold(0.0, f64::max);
        println!("  {system:<8} {best:>14.3e} DOF/s");
    }

    println!("\n=== Dashboard ===");
    print!("{}", db.render_dashboard());
}
