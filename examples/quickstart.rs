//! Quickstart: the nine-step Benchpark workflow from paper Figure 1c.
//!
//! Runs the saxpy/openmp experiment suite (Figure 10) on the simulated
//! `cts1` system, printing each workflow step, the generated experiments,
//! the extracted figures of merit, and Table 1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use benchpark::core::{render_table1, Benchpark, MetricsDatabase};

fn main() {
    // Steps 1–3: clone Benchpark, invoke the driver, instantiate substrates.
    let benchpark = Benchpark::new();
    let workspace_dir = std::env::temp_dir().join("benchpark-quickstart");
    let _ = std::fs::remove_dir_all(&workspace_dir);

    // Steps 4–7: generate the workspace, build software with Spack, render
    // batch scripts.
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", &workspace_dir)
        .expect("setup must succeed");

    println!("=== Workspace setup ===");
    println!("workspace: {}", ws.workspace.root().display());
    println!(
        "experiments generated: {}",
        ws.setup_report.experiments.len()
    );
    for exp in &ws.setup_report.experiments {
        println!("  {}", exp.name);
    }
    for (env, reports) in &ws.setup_report.install_reports {
        for report in reports {
            println!(
                "environment `{env}`: {} packages installed, {:.1} virtual build seconds",
                report.newly_installed, report.makespan_seconds
            );
        }
    }

    println!("\n=== Rendered batch script (saxpy_512_2_8_4) ===");
    println!("{}", ws.workspace.script("saxpy_512_2_8_4").unwrap());

    // Step 8: ramble on — submit everything to the simulated cluster.
    ws.run().expect("runs must submit");

    // Step 9: ramble workspace analyze.
    let analysis = ws.analyze(&benchpark).expect("analysis must succeed");
    println!("=== Analysis ===");
    print!("{}", analysis.render());

    // Store results with their manifest (paper §5).
    let db = MetricsDatabase::new();
    db.record("cts1", "saxpy", "openmp", &ws.manifest(), &analysis.results);
    println!("=== Metrics database ===");
    print!("{}", db.render_dashboard());

    println!("\n=== Workflow transcript (Figure 1c) ===");
    println!("{}", ws.log.render());

    println!("\n{}", render_table1());
}
