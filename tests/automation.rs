//! Integration: Figure 6's automation workflow — GitHub PR → Hubcast →
//! GitLab CI (Spack builders + cluster runners) → metrics → status → merge —
//! including the collaborative angle of §7.1/§7.2: two sites with different
//! machines validating the same contribution.

use benchpark::ci::{
    run_pipeline, BenchparkExecutor, Hub, Hubcast, Jacamar, Lab, MirrorDecision, PipelineState,
    PrState, Repository, SiteAccounts,
};
use benchpark::cluster::{Cluster, Machine};
use benchpark::core::SystemProfile;
use benchpark::pkg::Repo;

/// A CI config that exercises two sites (LLNL's cts1 and a cloud runner),
/// like the Hubcast@LLNL/RIKEN/AWS cell of Table 1.
const MULTI_SITE_CI: &str = "stages:\n  - build\n  - bench\nbuild-cts1:\n  stage: build\n  script:\n    - spack install saxpy+openmp\n  tags: [cts1]\nbench-cts1:\n  stage: bench\n  script:\n    - submit cts1 ci/saxpy.sbatch\n  tags: [cts1]\nbench-cloud:\n  stage: bench\n  script:\n    - submit cloud-c5 ci/saxpy.sbatch\n  tags: [cloud-c5]\n";

const SAXPY_SCRIPT: &str = "#!/bin/bash\n#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 saxpy -n 2048\n";

fn setup() -> (Hub, u64) {
    let mut canonical = Repository::init("llnl/benchpark");
    canonical
        .commit(
            "main",
            "olga",
            "import",
            &[(".gitlab-ci.yml", MULTI_SITE_CI)],
        )
        .unwrap();
    let mut hub = Hub::new(canonical);
    hub.add_admin("olga");
    let fork = hub.fork("llnl/benchpark", "heidi").unwrap();
    let repo = hub.repos.get_mut(&fork).unwrap();
    repo.create_branch("saxpy-ci", "main").unwrap();
    repo.commit(
        "saxpy-ci",
        "heidi",
        "run saxpy in CI",
        &[("ci/saxpy.sbatch", SAXPY_SCRIPT)],
    )
    .unwrap();
    let pr = hub
        .open_pr("llnl/benchpark", &fork, "saxpy-ci", "main", "heidi")
        .unwrap();
    (hub, pr)
}

#[test]
fn multi_site_pipeline_end_to_end() {
    let (mut hub, pr) = setup();
    hub.approve(pr, "olga").unwrap();

    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();
    let MirrorDecision::Mirrored { pipeline, run_as } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("expected mirror");
    };

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SystemProfile::cts1().site_config());
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
    executor.add_cluster("cloud-c5", Cluster::new(Machine::cloud_c5()));
    run_pipeline(&mut lab, pipeline, &run_as, &mut executor).unwrap();

    let p = lab.pipeline(pipeline).unwrap();
    assert_eq!(p.state(), PipelineState::Success, "{:#?}", p.jobs);
    assert_eq!(p.jobs.len(), 3);
    // both sites ran the benchmark (note: the CI-installed binary is not the
    // crash case here — the scheduler default-targets each machine natively)
    for job in &p.jobs {
        assert_eq!(job.ran_as.as_deref(), Some("olga"));
    }

    hubcast.report_pipeline(&mut hub, &lab, pr, pipeline);
    hub.merge("llnl/benchpark", pr).unwrap();
    assert_eq!(hub.pr(pr).unwrap().state, PrState::Merged);
}

#[test]
fn unapproved_untrusted_pr_never_runs() {
    let (mut hub, pr) = setup();
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();

    for _ in 0..3 {
        assert_eq!(
            hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr),
            MirrorDecision::AwaitingApproval
        );
    }
    assert!(
        lab.pipelines().is_empty(),
        "untrusted code must not reach the HPC site"
    );
    assert!(hub.merge("llnl/benchpark", pr).is_err());
}

#[test]
fn approval_by_non_admin_is_insufficient_for_mirroring() {
    let (mut hub, pr) = setup();
    hub.add_org_member("todd"); // org member, but not a site admin
    hub.approve(pr, "todd").unwrap();

    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga", "todd"]));
    let mut hubcast = Hubcast::new();
    assert_eq!(
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr),
        MirrorDecision::AwaitingApproval,
        "only site/system administrators unlock CI for untrusted PRs"
    );
}

#[test]
fn cache_makes_second_contribution_cheap() {
    // continuous benchmarking economics: once the first PR populated the
    // rolling binary cache (§7.2), subsequent PRs' builds are fetches.
    let (mut hub, pr) = setup();
    hub.approve(pr, "olga").unwrap();
    let mut lab = Lab::new();
    let jacamar = Jacamar::new(SiteAccounts::new(&["olga"]));
    let mut hubcast = Hubcast::new();
    let MirrorDecision::Mirrored { pipeline, run_as } =
        hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr)
    else {
        panic!("expected mirror");
    };

    let pkg_repo = Repo::builtin();
    let mut executor = BenchparkExecutor::new(&pkg_repo, SystemProfile::cts1().site_config());
    executor.add_cluster("cts1", Cluster::new(Machine::cts1()));
    executor.add_cluster("cloud-c5", Cluster::new(Machine::cloud_c5()));
    run_pipeline(&mut lab, pipeline, &run_as, &mut executor).unwrap();
    let (_, misses_before, pushes) = executor.cache.stats();
    assert!(pushes > 0);
    assert!(misses_before > 0);

    // second contributor, fresh builder machine (empty install DB)
    executor.db = benchpark::spack::InstallDatabase::new();
    let fork2 = hub.fork("llnl/benchpark", "doug").unwrap();
    let repo2 = hub.repos.get_mut(&fork2).unwrap();
    repo2.create_branch("tweak", "main").unwrap();
    repo2
        .commit(
            "tweak",
            "doug",
            "tweak script",
            &[("ci/saxpy.sbatch", SAXPY_SCRIPT)],
        )
        .unwrap();
    let pr2 = hub
        .open_pr("llnl/benchpark", &fork2, "tweak", "main", "doug")
        .unwrap();
    hub.approve(pr2, "olga").unwrap();
    let MirrorDecision::Mirrored {
        pipeline: p2,
        run_as,
    } = hubcast.process_pr(&mut hub, &mut lab, &jacamar, pr2)
    else {
        panic!("expected mirror");
    };
    run_pipeline(&mut lab, p2, &run_as, &mut executor).unwrap();
    let build_log = &lab.pipeline(p2).unwrap().jobs[0].log;
    assert!(build_log.contains("FetchFromCache"), "{build_log}");
    let (hits_after, _, _) = executor.cache.stats();
    assert!(hits_after > 0);
}
