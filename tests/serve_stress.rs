//! Integration: the `benchpark serve` stress harness — ≥1000 replayed
//! requests across 4 tenants and 2 systems through the daemon CLI, with the
//! throughput report, typed over-quota rejections, spool round-trips, and
//! the determinism contract: per-tenant FOM transcripts byte-identical to
//! the same requests run serially through the one-shot driver path, and the
//! whole output tree byte-identical at `--jobs 1` and `--jobs 8`.

use benchpark::core::{Benchpark, RunSpec};
use benchpark::serve::fom_transcript;
use benchpark::yamlite::parse_json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];
const SYSTEMS: [&str; 2] = ["cts1", "ats2"];
const EXPERIMENTS: [(&str, &str); 2] = [("saxpy", "openmp"), ("stream", "openmp")];

fn temp_base(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("benchpark-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the CLI, returning (exit_ok, stdout, stderr).
fn benchpark(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_benchpark"))
        .args(args)
        .output()
        .expect("benchpark binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// The stress workload: `n` valid request lines cycling tenants, systems,
/// and experiments deterministically, so every tenant submits to both
/// systems and most submissions repeat an earlier spec (the fingerprint
/// fastpath's bread and butter).
fn stress_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let tenant = TENANTS[i % TENANTS.len()];
            let (benchmark, variant) = EXPERIMENTS[(i / TENANTS.len()) % EXPERIMENTS.len()];
            let system = SYSTEMS[(i / (TENANTS.len() * EXPERIMENTS.len())) % SYSTEMS.len()];
            format!("{tenant} {benchmark}/{variant} {system}")
        })
        .collect()
}

/// Reads every file under `dir` (recursively) into sorted
/// (relative-path, bytes) pairs, for whole-tree byte comparison.
fn tree_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                walk(root, &entry, out);
            } else {
                let rel = entry.strip_prefix(root).unwrap().display().to_string();
                out.push((rel, std::fs::read(&entry).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out
}

/// ≥1000 requests across 4 tenants and 2 systems: the daemon completes all
/// of them with zero rejections, reports nonzero throughput and a high
/// fingerprint hit rate, shards the ledger per tenant/system, and its
/// per-tenant FOM transcripts are byte-identical to the same requests run
/// serially through the one-shot `run_request` path.
#[test]
fn stress_1000_requests_matches_serial_driver_byte_for_byte() {
    let base = temp_base("stress");
    let lines = stress_lines(1000);
    let replay = base.join("replay.txt");
    std::fs::write(&replay, lines.join("\n") + "\n").unwrap();

    let root = base.join("root");
    let report_path = base.join("report.json");
    let (ok, stdout, stderr) = benchpark(&[
        "serve",
        "--root",
        root.to_str().unwrap(),
        "--replay",
        replay.to_str().unwrap(),
        "--jobs",
        "8",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert!(ok, "serve succeeds\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("1000 admitted, 0 rejected"), "{stdout}");

    // the machine-readable throughput report
    let report = parse_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.get("admitted").and_then(|v| v.as_int()), Some(1000));
    assert_eq!(report.get("rejected").and_then(|v| v.as_int()), Some(0));
    assert_eq!(report.get("completed").and_then(|v| v.as_int()), Some(1000));
    assert_eq!(report.get("failed").and_then(|v| v.as_int()), Some(0));
    let throughput = report
        .get("throughput_rps")
        .and_then(|v| v.as_float())
        .unwrap();
    assert!(throughput > 0.0, "throughput {throughput} must be nonzero");
    let hit_rate = report
        .get("fingerprint_hit_rate")
        .and_then(|v| v.as_float())
        .unwrap();
    assert!(
        hit_rate > 0.5,
        "most of 1000 repeats of 4 specs must hit the cache (got {hit_rate})"
    );

    // the ledger is sharded per tenant/system, and every shard is readable
    for tenant in TENANTS {
        for system in SYSTEMS {
            let shard = root
                .join("ledger")
                .join(tenant)
                .join(format!("{system}.jsonl"));
            assert!(shard.exists(), "missing shard {}", shard.display());
        }
    }
    let (ok, history, _) = benchpark(&["history", root.to_str().unwrap()]);
    assert!(ok, "history over the shard root succeeds");
    assert!(
        !history.contains("skipped"),
        "no torn or corrupt shard lines:\n{history}"
    );

    // serial reference: run each distinct spec once through the one-shot
    // driver (the pre-daemon path), then expand per request. Repeats are
    // valid because cache splices are byte-identical to fresh runs.
    let mut reference: BTreeMap<String, String> = BTreeMap::new();
    for (benchmark, variant) in EXPERIMENTS {
        for system in SYSTEMS {
            let workdir = base.join(format!("serial-{benchmark}-{system}"));
            let spec = RunSpec::new(benchmark, variant, system, &workdir);
            let collected = Benchpark::new()
                .run_request(&spec, None, false)
                .expect("serial run succeeds");
            reference.insert(
                format!("{benchmark}/{variant}@{system}"),
                fom_transcript(&collected.results),
            );
        }
    }
    let mut expected: BTreeMap<&str, String> = BTreeMap::new();
    let mut tenant_seq: BTreeMap<&str, u64> = BTreeMap::new();
    for (i, _) in lines.iter().enumerate() {
        let tenant = TENANTS[i % TENANTS.len()];
        let (benchmark, variant) = EXPERIMENTS[(i / TENANTS.len()) % EXPERIMENTS.len()];
        let system = SYSTEMS[(i / (TENANTS.len() * EXPERIMENTS.len())) % SYSTEMS.len()];
        let seq = tenant_seq.entry(tenant).or_default();
        *seq += 1;
        let transcript = expected.entry(tenant).or_default();
        transcript.push_str(&format!(
            "=== {tenant}#{seq} {benchmark}/{variant} @ {system}\n"
        ));
        transcript.push_str(&reference[&format!("{benchmark}/{variant}@{system}")]);
        transcript.push('\n');
    }
    for tenant in TENANTS {
        let got = std::fs::read_to_string(root.join("foms").join(format!("{tenant}.txt")))
            .expect("per-tenant transcript exists");
        assert_eq!(
            got, expected[tenant],
            "daemon transcript for {tenant} must match the serial driver byte-for-byte"
        );
    }
}

/// The same replay at `--jobs 1` and `--jobs 8` leaves byte-identical
/// `foms/` and `ledger/` trees — and, since every service-observability
/// quantity lives on the queue's virtual clock, byte-identical
/// `status.json` (stage latencies, windows, SLO verdicts) and
/// `metrics.prom` (including the latency histograms): batch composition is
/// a pure function of queue state and commits are serialized in pick
/// order, so parallelism only changes wall-clock.
#[test]
fn jobs_1_and_jobs_8_trees_are_byte_identical() {
    let base = temp_base("jobs");
    let lines = stress_lines(200);
    let replay = base.join("replay.txt");
    std::fs::write(&replay, lines.join("\n") + "\n").unwrap();
    let slo = base.join("slo.txt");
    std::fs::write(
        &slo,
        "p99_queue_wait <= 2048 ticks\nreject_rate <= 0.01\nhit_rate >= 0.5\n",
    )
    .unwrap();

    let mut trees = Vec::new();
    for jobs in ["1", "8"] {
        // each run gets its own cwd with the same *relative* root, so the
        // workspace paths recorded inside ledger lines are identical and
        // the trees can be compared byte-for-byte
        let cwd = base.join(format!("j{jobs}"));
        std::fs::create_dir_all(&cwd).unwrap();
        let output = Command::new(env!("CARGO_BIN_EXE_benchpark"))
            .current_dir(&cwd)
            .args([
                "serve",
                "--root",
                "root",
                "--replay",
                replay.to_str().unwrap(),
                "--jobs",
                jobs,
                "--slo",
                slo.to_str().unwrap(),
                "--status-out",
                "live-status.json",
            ])
            .output()
            .expect("benchpark binary runs");
        assert!(
            output.status.success(),
            "serve --jobs {jobs} succeeds\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        let root = cwd.join("root");
        assert!(
            cwd.join("live-status.json").exists(),
            "--status-out writes the live snapshot"
        );
        trees.push((
            tree_bytes(&root.join("foms")),
            tree_bytes(&root.join("ledger")),
            std::fs::read(root.join("status.json")).expect("status.json written"),
            std::fs::read(root.join("metrics.prom")).expect("metrics.prom written"),
        ));
    }
    assert_eq!(trees[0].0, trees[1].0, "foms/ trees differ across --jobs");
    assert_eq!(trees[0].1, trees[1].1, "ledger/ trees differ across --jobs");
    assert_eq!(trees[0].2, trees[1].2, "status.json differs across --jobs");
    assert_eq!(trees[0].3, trees[1].3, "metrics.prom differs across --jobs");

    // the snapshot carries the observability surface end to end
    let status = String::from_utf8(trees[0].2.clone()).unwrap();
    assert!(status.contains("\"queue_wait\""), "{status}");
    assert!(status.contains("\"verdict\":\"PASS\""), "{status}");
    let prom = String::from_utf8(trees[0].3.clone()).unwrap();
    assert!(
        prom.contains("benchpark_serve_stage_execute_bucket"),
        "{prom}"
    );
    assert!(prom.contains("le=\"+Inf\""), "{prom}");

    // `benchpark status` renders the table and the SLO verdicts
    let (ok, stdout, stderr) =
        benchpark(&["status", base.join("j1").join("root").to_str().unwrap()]);
    assert!(ok, "status renders\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("stage latencies (virtual ticks):"),
        "{stdout}"
    );
    assert!(stdout.contains("PASS p99_queue_wait <= 2048"), "{stdout}");
    for tenant in TENANTS {
        assert!(
            stdout.contains(tenant),
            "tenant {tenant} row missing:\n{stdout}"
        );
    }
    // --format json re-emits the snapshot verbatim
    let (ok, json_out, _) = benchpark(&[
        "status",
        base.join("j1").join("root").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert!(ok);
    assert_eq!(json_out.trim_end().as_bytes(), &trees[0].2[..]);
}

/// A seeded fault plan inflates virtual execute latency deterministically;
/// an SLO tight enough to pass the clean run fails the faulted one, and
/// `benchpark status --check` turns that into a non-zero exit.
#[test]
fn seeded_faults_breach_the_execute_slo_and_fail_check() {
    let base = temp_base("slo");
    let slo = base.join("slo.txt");
    // clean saxpy/cts1 executes in ~338 virtual ticks; the seeded
    // node-failure plan stretches it past 600 — 512 splits the two
    std::fs::write(&slo, "p95_execute <= 512 ticks\n").unwrap();

    let mut verdicts = Vec::new();
    for (tag, faults) in [("clean", ""), ("faulted", " faults")] {
        let replay = base.join(format!("replay-{tag}.txt"));
        let lines: Vec<String> = TENANTS
            .iter()
            .map(|t| format!("{t} saxpy/openmp cts1{faults}"))
            .collect();
        std::fs::write(&replay, lines.join("\n") + "\n").unwrap();
        let root = base.join(format!("root-{tag}"));
        let (ok, stdout, stderr) = benchpark(&[
            "serve",
            "--root",
            root.to_str().unwrap(),
            "--replay",
            replay.to_str().unwrap(),
            "--slo",
            slo.to_str().unwrap(),
        ]);
        assert!(ok, "serve ({tag}) succeeds\n{stdout}\n{stderr}");
        let (check_ok, stdout, stderr) = benchpark(&["status", root.to_str().unwrap(), "--check"]);
        verdicts.push((check_ok, stdout, stderr));
    }

    let (clean_ok, clean_out, _) = &verdicts[0];
    assert!(clean_ok, "clean run passes --check:\n{clean_out}");
    assert!(clean_out.contains("PASS p95_execute <= 512"), "{clean_out}");

    let (faulted_ok, faulted_out, faulted_err) = &verdicts[1];
    assert!(!faulted_ok, "faulted run must fail --check:\n{faulted_out}");
    assert!(
        faulted_out.contains("FAIL p95_execute <= 512"),
        "{faulted_out}"
    );
    assert!(faulted_err.contains("SLO check failed"), "{faulted_err}");

    // without --check the exit stays zero even on a breach (status is a
    // viewer; the gate is opt-in)
    let (ok, _, _) = benchpark(&["status", base.join("root-faulted").to_str().unwrap()]);
    assert!(ok, "plain status never gates");
}

/// Schema-3 ledger shards carry the request trace; `history` over the
/// shard root replays them cleanly.
#[test]
fn serve_ledger_records_carry_request_traces() {
    let base = temp_base("trace");
    let replay = base.join("replay.txt");
    std::fs::write(&replay, "alice saxpy/openmp cts1\nbob saxpy/openmp cts1\n").unwrap();
    let root = base.join("root");
    let (ok, _, stderr) = benchpark(&[
        "serve",
        "--root",
        root.to_str().unwrap(),
        "--replay",
        replay.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let shard = root.join("ledger").join("alice").join("cts1.jsonl");
    let line = std::fs::read_to_string(&shard).unwrap();
    assert!(line.starts_with("{\"schema\":3,"), "{line}");
    assert!(line.contains("\"request\":{\"tenant\":\"alice\""), "{line}");
    assert!(line.contains("\"queue_wait_ticks\":"), "{line}");
    let (ok, history, _) = benchpark(&["history", root.to_str().unwrap()]);
    assert!(ok, "history replays schema-3 shards");
    assert!(!history.contains("skipped"), "{history}");
}

/// Saturating one tenant's queue yields typed `tenant-queue-full`
/// rejections with the configured limit in the detail, and the surviving
/// requests still complete.
#[test]
fn over_quota_submissions_are_rejected_with_typed_reasons() {
    let base = temp_base("quota");
    let lines: Vec<String> = (0..50)
        .map(|_| "alice saxpy/openmp cts1".to_string())
        .collect();
    let replay = base.join("replay.txt");
    std::fs::write(&replay, lines.join("\n") + "\n").unwrap();

    let root = base.join("root");
    let report_path = base.join("report.json");
    let (ok, stdout, stderr) = benchpark(&[
        "serve",
        "--root",
        root.to_str().unwrap(),
        "--replay",
        replay.to_str().unwrap(),
        "--max-queued",
        "8",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert!(ok, "serve succeeds despite rejections\n{stdout}\n{stderr}");
    assert!(stdout.contains("8 admitted, 42 rejected"), "{stdout}");
    assert!(stdout.contains("tenant-queue-full"), "{stdout}");

    let report = parse_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.get("admitted").and_then(|v| v.as_int()), Some(8));
    assert_eq!(report.get("rejected").and_then(|v| v.as_int()), Some(42));
    assert_eq!(report.get("completed").and_then(|v| v.as_int()), Some(8));
    let rejections = report.get("rejections").and_then(|v| v.as_seq()).unwrap();
    assert_eq!(rejections.len(), 42);
    for rejection in rejections {
        assert_eq!(
            rejection.get("code").and_then(|v| v.as_str()),
            Some("tenant-queue-full")
        );
        assert_eq!(
            rejection.get("tenant").and_then(|v| v.as_str()),
            Some("alice")
        );
    }
}

/// `submit` validates and spools; `drain` consumes the spool, completes the
/// requests, and removes it.
#[test]
fn submit_then_drain_round_trips_the_spool() {
    let base = temp_base("spool");
    let root = base.join("root");
    let root_str = root.to_str().unwrap().to_string();

    for line in [
        ["alice", "saxpy/openmp", "cts1"],
        ["bob", "stream/openmp", "ats2"],
    ] {
        let (ok, stdout, stderr) =
            benchpark(&["submit", "--root", &root_str, line[0], line[1], line[2]]);
        assert!(ok, "submit succeeds\n{stdout}\n{stderr}");
        assert!(stdout.contains("spooled"), "{stdout}");
    }
    assert!(root.join("queue").exists(), "spool holds the submissions");

    // invalid submissions are rejected before ever touching the spool
    let (ok, _, stderr) = benchpark(&["submit", "--root", &root_str, "alice", "nope", "cts1"]);
    assert!(!ok, "malformed submission fails");
    assert!(stderr.contains("must be <benchmark>/<variant>"), "{stderr}");

    let (ok, stdout, stderr) = benchpark(&["drain", "--root", &root_str]);
    assert!(ok, "drain succeeds\n{stdout}\n{stderr}");
    assert!(stdout.contains("2 admitted, 0 rejected"), "{stdout}");
    assert!(
        !root.join("queue").exists(),
        "the spool is consumed after drain"
    );
    assert!(root.join("foms").join("alice.txt").exists());
    assert!(root.join("foms").join("bob.txt").exists());

    // a second drain over the empty spool is a clean no-op
    let (ok, stdout, _) = benchpark(&["drain", "--root", &root_str]);
    assert!(ok);
    assert!(stdout.contains("0 admitted"), "{stdout}");
}
