//! Integration: the Figure 1a repository layout — the written skeleton's
//! files are the same ones the driver consumes, so the on-disk repo is
//! functionally complete.

use benchpark::core::{available_experiments, render_tree, write_skeleton, SystemProfile};
use benchpark::ramble::RambleConfig;
use benchpark::spack::ConfigScopes;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-tree-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn rendered_tree_covers_figure_1a_sections() {
    let tree = render_tree();
    // the four top-level sections of Figure 1a
    for section in ["bin", "configs", "experiments", "repo"] {
        assert!(tree.contains(section), "tree missing `{section}`:\n{tree}");
    }
    // system-specific files
    for file in [
        "compilers.yaml",
        "packages.yaml",
        "spack.yaml",
        "variables.yaml",
    ] {
        assert!(tree.contains(file), "tree missing `{file}`");
    }
    // benchmark entries with per-variant ramble.yaml + template
    assert!(tree.contains("amg2023"));
    assert!(tree.contains("execute_experiment.tpl"));
    assert!(tree.contains("application.py"));
    assert!(tree.contains("package.py"));
}

#[test]
fn skeleton_round_trips_through_the_parsers() {
    let dir = temp_dir("roundtrip");
    write_skeleton(&dir).unwrap();

    // every system's on-disk configs parse and lower to a site config
    for profile in SystemProfile::all() {
        let sys = dir.join("configs").join(&profile.name);
        let compilers = std::fs::read_to_string(sys.join("compilers.yaml")).unwrap();
        let packages = std::fs::read_to_string(sys.join("packages.yaml")).unwrap();
        let mut scopes = ConfigScopes::new();
        scopes
            .push_scope(
                &profile.name,
                &[("compilers.yaml", &compilers), ("packages.yaml", &packages)],
            )
            .unwrap();
        let site = scopes.site_config();
        assert!(!site.compilers.is_empty(), "{}", profile.name);

        // spack.yaml provides default-compiler / default-mpi
        let spack = std::fs::read_to_string(sys.join("spack.yaml")).unwrap();
        let mut config = RambleConfig::from_yaml("ramble:\n  applications: {}\n").unwrap();
        config.merge_spack_yaml(&spack).unwrap();
        assert!(config.spack_packages.contains_key("default-compiler"));
        assert!(config.spack_packages.contains_key("default-mpi"));

        // variables.yaml provides launcher + batch directives
        let variables = std::fs::read_to_string(sys.join("variables.yaml")).unwrap();
        let mut config = RambleConfig::from_yaml("ramble:\n  applications: {}\n").unwrap();
        config.merge_variables_yaml(&variables).unwrap();
        for key in ["mpi_command", "batch_submit", "batch_nodes", "batch_ranks"] {
            assert!(
                config.variables.contains_key(key),
                "{}: missing {key}",
                profile.name
            );
        }
    }

    // every experiment's on-disk ramble.yaml parses
    for (benchmark, variant) in available_experiments() {
        let path = dir
            .join("experiments")
            .join(benchmark)
            .join(variant)
            .join("ramble.yaml");
        let text = std::fs::read_to_string(&path).unwrap();
        let config =
            RambleConfig::from_yaml(&text).unwrap_or_else(|e| panic!("{benchmark}/{variant}: {e}"));
        assert!(config.applications.contains_key(benchmark) || benchmark == "osu-bcast");
    }
}
