//! Integration: incremental re-benchmarking end-to-end — content-addressed
//! experiment fingerprints letting `benchpark trace` splice cached results
//! from the run ledger instead of re-executing, across process lifetimes
//! and workspace directories, with any input change forcing a re-run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-inc-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the CLI, returning (exit_ok, stdout, stderr).
fn benchpark(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_benchpark"))
        .args(args)
        .output()
        .expect("benchpark binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// One `trace --export` run; the workspace dir is NOT removed first — every
/// call here uses a fresh one, proving fingerprints are workspace-path
/// independent.
fn trace(ws: &Path, export: &Path, extra: &[&str]) -> (bool, String, String) {
    let mut args = vec![
        "trace",
        "saxpy/openmp",
        "cts1",
        ws.to_str().unwrap(),
        "--export",
        export.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    benchpark(&args)
}

/// The FOM lines of a trace's stdout (`    name = value units`).
fn fom_lines(stdout: &str) -> Vec<&str> {
    stdout.lines().filter(|l| l.contains(" = ")).collect()
}

fn ledger_lines(ledger: &Path) -> usize {
    std::fs::read_to_string(ledger)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

#[test]
fn second_run_splices_from_ledger_and_is_byte_identical() {
    let base = temp_base("splice");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    let (ok, first, err) = trace(&base.join("ws1"), &export, &[]);
    assert!(ok, "{err}");
    assert!(err.contains("appended run #1"), "{err}");
    assert!(
        !first.contains("[cached]"),
        "first run has nothing to splice:\n{first}"
    );
    assert_eq!(ledger_lines(&ledger), 1);

    // second run, different workspace directory, same inputs: every
    // experiment is served from the ledger, nothing is appended, and the
    // FOM output is byte-identical to the measured run's
    let (ok, second, err) = trace(&base.join("ws2"), &export, &[]);
    assert!(ok, "{err}");
    assert!(
        second.contains("fingerprints: 8 hit(s), 0 miss(es), 0 forced"),
        "{second}"
    );
    assert_eq!(second.matches("[cached]").count(), 8, "{second}");
    assert!(err.contains("every experiment was cached"), "{err}");
    assert_eq!(ledger_lines(&ledger), 1, "cached splice must not append");
    assert_eq!(fom_lines(&first), fom_lines(&second));

    // the prom exposition carries the hit counter
    let prom = std::fs::read_to_string(export.join("metrics.prom")).unwrap();
    assert!(prom.contains("benchpark_fp_hits_total 8"), "{prom}");

    // results.json marks every result as spliced and keyed by fingerprint
    use benchpark::yamlite::{parse_json, Value};
    let doc = parse_json(&std::fs::read_to_string(export.join("results.json")).unwrap()).unwrap();
    let entries = doc.get("results").and_then(Value::as_seq).unwrap();
    assert_eq!(entries.len(), 8);
    for entry in entries {
        assert_eq!(entry.get("cached").and_then(Value::as_bool), Some(true));
        let fp = entry.get("fingerprint").and_then(Value::as_str).unwrap();
        assert_eq!(fp.len(), 16, "fingerprint must be 16 hex digits: {fp}");
    }
}

#[test]
fn force_reexecutes_and_appends() {
    let base = temp_base("force");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    let (ok, _, _) = trace(&base.join("ws1"), &export, &[]);
    assert!(ok);
    let (ok, stdout, err) = trace(&base.join("ws2"), &export, &["--force"]);
    assert!(ok, "{err}");
    assert!(
        stdout.contains("fingerprints: 0 hit(s), 0 miss(es), 8 forced"),
        "{stdout}"
    );
    assert!(!stdout.contains("[cached]"), "{stdout}");
    assert!(err.contains("appended run #2"), "{err}");
    assert_eq!(ledger_lines(&ledger), 2);

    // the forced re-measurement superseded the original record; a third
    // plain run still hits (latest record wins)
    let (ok, stdout, _) = trace(&base.join("ws3"), &export, &[]);
    assert!(ok);
    assert!(
        stdout.contains("fingerprints: 8 hit(s), 0 miss(es), 0 forced"),
        "{stdout}"
    );
    assert_eq!(ledger_lines(&ledger), 2);
}

#[test]
fn template_edit_invalidates_every_affected_fingerprint() {
    let base = temp_base("invalidate");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    // dump the built-in template and run with it: identical bytes, so the
    // fingerprints match the builtin-template run exactly
    let (ok, template, _) = benchpark(&["template", "saxpy/openmp"]);
    assert!(ok);
    let tpl = base.join("ramble.yaml");
    std::fs::write(&tpl, &template).unwrap();

    let (ok, _, _) = trace(&base.join("ws1"), &export, &[]);
    assert!(ok);
    let (ok, stdout, _) = trace(
        &base.join("ws2"),
        &export,
        &["--template", tpl.to_str().unwrap()],
    );
    assert!(ok);
    assert!(stdout.contains("8 hit(s)"), "{stdout}");

    // any byte changed in the template — even trailing whitespace — misses
    std::fs::write(&tpl, format!("{template}\n# tuned\n")).unwrap();
    let (ok, stdout, err) = trace(
        &base.join("ws3"),
        &export,
        &["--template", tpl.to_str().unwrap()],
    );
    assert!(ok, "{err}");
    assert!(
        stdout.contains("fingerprints: 0 hit(s), 8 miss(es), 0 forced"),
        "{stdout}"
    );
    assert!(err.contains("appended run #2"), "{err}");
    assert_eq!(ledger_lines(&ledger), 2);
}

#[test]
fn failed_records_never_satisfy_a_lookup() {
    use benchpark::core::RunRecord;
    use benchpark::ramble::ExperimentStatus;

    let base = temp_base("failed");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    let (ok, _, _) = trace(&base.join("ws1"), &export, &[]);
    assert!(ok);

    // rewrite the ledger so every persisted result is a failure: the
    // fingerprints are still present, but a crash is not a cacheable result
    let text = std::fs::read_to_string(&ledger).unwrap();
    let mut record = RunRecord::parse_line(text.trim()).unwrap();
    for result in &mut record.results {
        result.status = ExperimentStatus::Failed;
    }
    std::fs::write(&ledger, format!("{}\n", record.to_json_line())).unwrap();

    let (ok, stdout, _) = trace(&base.join("ws2"), &export, &["--allow-failed"]);
    assert!(ok);
    assert!(
        stdout.contains("fingerprints: 0 hit(s), 8 miss(es), 0 forced"),
        "{stdout}"
    );

    // ... and the fingerprints listing agrees there is nothing reusable in
    // the failure-only prefix (the rerun just appended 8 fresh records)
    let (ok, listing, _) = benchpark(&["fingerprints", ledger.to_str().unwrap()]);
    assert!(ok);
    assert!(
        listing.contains("8 reusable experiment record(s)"),
        "{listing}"
    );
}

#[test]
fn explicit_ledger_flag_works_without_export() {
    let base = temp_base("ledgerflag");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    let (ok, _, _) = trace(&base.join("ws1"), &export, &[]);
    assert!(ok);

    // no --export on the reader side: the ledger alone drives the splice
    let (ok, stdout, _) = benchpark(&[
        "trace",
        "saxpy/openmp",
        "cts1",
        base.join("ws2").to_str().unwrap(),
        "--ledger",
        ledger.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(
        stdout.contains("fingerprints: 8 hit(s), 0 miss(es), 0 forced"),
        "{stdout}"
    );
}

#[test]
fn fingerprints_are_identical_across_jobs_counts() {
    let base = temp_base("jobs");
    let export = base.join("export");

    let (ok, _, _) = trace(&base.join("ws1"), &export, &["--jobs", "1"]);
    assert!(ok);
    // a different worker count must not perturb a single fingerprint
    let (ok, stdout, _) = trace(&base.join("ws2"), &export, &["--jobs", "8"]);
    assert!(ok);
    assert!(
        stdout.contains("fingerprints: 8 hit(s), 0 miss(es), 0 forced"),
        "{stdout}"
    );
}
