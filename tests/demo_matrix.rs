//! Integration: the §4 demonstration matrix, widened — every shipped
//! experiment template on every system that supports it.

use benchpark::core::{available_experiments, Benchpark, MetricsDatabase, SystemProfile};
use benchpark::ramble::ExperimentStatus;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-dm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Which systems each experiment runs on (matching the programming model
/// and machine size — the bcast scaling study needs up to 96 nodes, more
/// than the 64-node cloud pool has).
fn systems_for(benchmark: &str, variant: &str) -> Vec<&'static str> {
    match (benchmark, variant) {
        ("osu-bcast", _) => vec!["cts1"],
        (_, "cuda") => vec!["ats2"],
        (_, "rocm") => vec!["ats4"],
        _ => vec!["cts1", "cloud-c5"],
    }
}

#[test]
fn every_experiment_runs_on_every_supporting_system() {
    let benchpark = Benchpark::new();
    let db = MetricsDatabase::new();
    let mut total = 0usize;
    for (benchmark, variant) in available_experiments() {
        for system in systems_for(benchmark, variant) {
            let tag = format!("{benchmark}-{variant}-{system}");
            let mut ws = benchpark
                .setup_workspace(benchmark, variant, system, temp_dir(&tag))
                .unwrap_or_else(|e| panic!("{tag}: setup failed: {e}"));
            ws.run()
                .unwrap_or_else(|e| panic!("{tag}: run failed: {e}"));
            let analysis = ws
                .analyze(&benchpark)
                .unwrap_or_else(|e| panic!("{tag}: analyze failed: {e}"));
            for result in &analysis.results {
                assert_eq!(
                    result.status,
                    ExperimentStatus::Success,
                    "{tag}: {} failed",
                    result.experiment
                );
                assert!(
                    !result.foms.is_empty(),
                    "{tag}: {} has no FOMs",
                    result.experiment
                );
            }
            db.record(
                system,
                benchmark,
                variant,
                &ws.manifest(),
                &analysis.results,
            );
            total += analysis.results.len();
        }
    }
    assert!(
        total >= 45,
        "the matrix should produce many results, got {total}"
    );
    assert_eq!(db.len(), total);

    // the dashboard covers every benchmark
    let dashboard = db.render_dashboard();
    for (benchmark, _) in available_experiments() {
        assert!(
            dashboard.contains(benchmark),
            "dashboard missing {benchmark}:\n{dashboard}"
        );
    }
}

#[test]
fn per_system_target_flows_into_manifests() {
    // the same benchmark on different systems uses different compilers and
    // MPIs — visible in the stored manifests (the Table 1 orthogonalization)
    let benchpark = Benchpark::new();
    let mut manifests = Vec::new();
    for system in ["cts1", "ats2", "ats4"] {
        let variant = match system {
            "ats2" => "cuda",
            "ats4" => "rocm",
            _ => "openmp",
        };
        let ws = benchpark
            .setup_workspace(
                "saxpy",
                variant,
                system,
                temp_dir(&format!("manifest-{system}")),
            )
            .unwrap();
        manifests.push(ws.manifest());
    }
    assert!(manifests[0].contains("mvapich2"));
    assert!(manifests[1].contains("spectrum-mpi"));
    assert!(manifests[2].contains("cray-mpich"));
    assert!(manifests[1].contains("+cuda"));
    assert!(manifests[2].contains("+rocm"));
}

#[test]
fn system_profiles_and_machines_are_consistent() {
    for profile in SystemProfile::all() {
        let machine = profile.machine();
        let site = profile.site_config();
        // every compiler named in spack.yaml's default-compiler must exist
        // in compilers.yaml
        let config = benchpark::ramble::RambleConfig::from_yaml("ramble:\n  applications: {}\n")
            .and_then(|mut c| {
                c.merge_spack_yaml(&profile.spack_yaml)?;
                Ok(c)
            })
            .unwrap();
        let compiler_spec = &config.spack_packages["default-compiler"].spack_spec;
        let parsed: benchpark::spec::Spec = compiler_spec.parse().unwrap();
        let found = site.compilers.iter().any(|c| {
            Some(c.name.as_str()) == parsed.name.as_deref() && parsed.versions.contains(&c.version)
        });
        assert!(
            found,
            "{}: default-compiler {compiler_spec} not in compilers.yaml",
            profile.name
        );
        // scheduler launcher matches the machine's batch system
        let launcher = machine
            .scheduler
            .mpi_command()
            .split_whitespace()
            .next()
            .unwrap();
        assert!(
            profile.variables_yaml.contains(launcher),
            "{}: variables.yaml should use `{launcher}`",
            profile.name
        );
    }
}
