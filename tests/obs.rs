//! Integration: the observability pipeline end-to-end — `benchpark trace
//! --export` accumulating a durable run ledger across process lifetimes,
//! `benchpark history` / `benchpark regress` replaying it, and the
//! byte-identity of canonical exports across `--jobs` counts.

use benchpark::core::RunRecord;
use benchpark::yamlite::{parse_json, Value};
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the CLI, returning (exit_ok, stdout, stderr).
fn benchpark(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_benchpark"))
        .args(args)
        .output()
        .expect("benchpark binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// One `trace --export` invocation into `export`, with a fresh workspace at
/// `ws` (removed first so reruns see identical paths and content).
fn trace_run(ws: &Path, export: &Path, extra: &[&str]) {
    let _ = std::fs::remove_dir_all(ws);
    let mut args = vec![
        "trace",
        "saxpy/openmp",
        "cts1",
        ws.to_str().unwrap(),
        "--export",
        export.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let (ok, stdout, stderr) = benchpark(&args);
    assert!(ok, "trace failed:\n{stdout}\n{stderr}");
}

#[test]
fn ledger_accumulates_runs_and_regress_flags_seeded_slowdown() {
    let base = temp_base("ledger");
    let ws = base.join("ws");
    let export = base.join("export");
    let ledger = export.join("ledger.jsonl");

    // one faulted run (the resilience layer recovers it) and two clean
    // reruns, all appending to the same ledger across process lifetimes.
    // The second clean rerun would be satisfied from the fingerprint cache
    // (identical inputs), so `--force` makes it re-execute and append.
    trace_run(&ws, &export, &["--faults"]);
    trace_run(&ws, &export, &[]);
    trace_run(&ws, &export, &["--force"]);

    let ledger_path = ledger.to_str().unwrap();
    let (ok, stdout, _) = benchpark(&["history", ledger_path]);
    assert!(ok);
    assert_eq!(stdout.matches("saxpy/openmp on cts1").count(), 3);
    assert!(stdout.contains("#1 "));
    assert!(stdout.contains("8/8 experiments ok"));
    // the faulted run carries its resilience counters into the ledger
    assert!(stdout.contains("retry.attempts="), "{stdout}");

    // identical reruns: quiet
    let (ok, stdout, stderr) = benchpark(&["regress", ledger_path]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");

    // seed a slowdown: append a fourth run whose lower-is-better FOMs
    // doubled, as a hardware fault would
    let text = std::fs::read_to_string(&ledger).unwrap();
    let last = text.lines().rfind(|l| !l.trim().is_empty()).unwrap();
    let mut degraded = RunRecord::parse_line(last).expect("ledger line parses");
    for result in &mut degraded.results {
        for fom in &mut result.foms {
            if fom.name == "kernel_time" {
                let value: f64 = fom.value.parse().unwrap();
                fom.value = (value * 2.0).to_string();
            }
        }
    }
    benchpark::core::append_run(&ledger, &mut degraded).unwrap();
    assert_eq!(degraded.sequence, 4);

    let (ok, stdout, stderr) = benchpark(&["regress", ledger_path]);
    assert!(!ok, "seeded slowdown must fail the scan:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stderr.contains("regressed"), "{stderr}");
}

#[test]
fn canonical_exports_are_byte_identical_across_jobs() {
    let base = temp_base("jobs");
    let ws = base.join("ws");
    let out1 = base.join("jobs1");
    let out8 = base.join("jobs8");
    trace_run(&ws, &out1, &["--jobs", "1"]);
    trace_run(&ws, &out8, &["--jobs", "8"]);

    for name in ["trace.json", "flame.folded", "metrics.prom", "ledger.jsonl"] {
        let a = std::fs::read(out1.join(name)).unwrap();
        let b = std::fs::read(out8.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 8");
    }

    // the canonical trace is valid Perfetto-loadable JSON with span and
    // counter events, including the per-package install spans
    let trace = std::fs::read_to_string(out1.join("trace.json")).unwrap();
    let doc = parse_json(&trace).expect("trace.json parses");
    let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
    assert!(!events.is_empty());
    let phase = |e: &Value| e.get("ph").and_then(Value::as_str).map(String::from);
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("B")));
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("C")));
    assert!(
        events.iter().any(|e| e
            .get("name")
            .and_then(Value::as_str)
            .is_some_and(|n| n.starts_with("install.pkg."))),
        "install DAG spans missing from canonical trace"
    );

    // the flamegraph covers the pipeline phases, the exposition the counters
    let flame = std::fs::read_to_string(out1.join("flame.folded")).unwrap();
    assert!(flame.lines().any(|l| l.starts_with("pipeline.setup")));
    let prom = std::fs::read_to_string(out1.join("metrics.prom")).unwrap();
    assert!(prom.contains("# TYPE benchpark_engine_tasks_success_total counter"));
    assert!(!prom.contains("makespan"), "volatile metric leaked: {prom}");
}

#[test]
fn trace_format_json_emits_one_parseable_document() {
    let base = temp_base("json");
    let ws = base.join("ws");
    let (ok, stdout, stderr) = benchpark(&[
        "trace",
        "saxpy/openmp",
        "cts1",
        ws.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert!(ok, "{stderr}");
    let doc = parse_json(stdout.trim()).expect("stdout is one JSON document");
    assert_eq!(doc.get("schema").and_then(Value::as_int), Some(1));
    assert!(doc
        .get("spans")
        .and_then(Value::as_seq)
        .is_some_and(|s| !s.is_empty()));
    assert!(doc.get("counters").is_some());
    assert!(doc
        .get("journal_events")
        .and_then(Value::as_int)
        .is_some_and(|n| n > 0));
}

#[test]
fn regress_reports_missing_and_empty_ledgers() {
    let base = temp_base("empty");
    let missing = base.join("nope.jsonl");
    let (ok, _, stderr) = benchpark(&["regress", missing.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("cannot read ledger"), "{stderr}");

    // a ledger of only corrupt lines: loadable, but no runs to judge
    let garbled = base.join("garbled.jsonl");
    std::fs::write(&garbled, "not json at all\n{\"schema\":42}\n").unwrap();
    let (ok, _, stderr) = benchpark(&["regress", garbled.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("no readable runs"), "{stderr}");
    assert!(stderr.contains("skipped 2"), "{stderr}");
}
