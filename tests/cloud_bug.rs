//! Integration: the §7.1 cross-site debugging story, driven through the
//! full Benchpark stack — including the "fix" a collaborator would ship.

use benchpark::archspec::{detect, taxonomy};
use benchpark::cluster::{BinaryInfo, Cluster, JobState, Machine, ProgrammingModel};
use benchpark::concretizer::Concretizer;
use benchpark::core::SystemProfile;
use benchpark::pkg::Repo;

const SCRIPT: &str = "#!/bin/bash\n#SBATCH -N 1\n#SBATCH -n 4\nsrun -n 4 saxpy -n 4096\n";

#[test]
fn same_binary_works_on_prem_crashes_in_cloud() {
    let binary = BinaryInfo::for_target("saxpy", "skylake_avx512", ProgrammingModel::OpenMp);

    let mut onprem = Cluster::new(Machine::cts1());
    onprem.install_binary(binary.clone());
    let id = onprem.submit_script(SCRIPT, "jens").unwrap();
    onprem.run_until_idle();
    assert_eq!(onprem.job(id).unwrap().state, JobState::Completed);

    let mut cloud = Cluster::new(Machine::cloud_c5());
    cloud.install_binary(binary);
    let id = cloud.submit_script(SCRIPT, "jens").unwrap();
    cloud.run_until_idle();
    let job = cloud.job(id).unwrap();
    assert_eq!(job.state, JobState::Failed);
    assert_eq!(job.exit_code, 132, "SIGILL");
    assert!(job.stdout.contains("illegal instruction"));
}

#[test]
fn archspec_diagnoses_the_root_cause() {
    // the diagnosis that took "days" in the paper: compare what each machine
    // detects as and what the binary requires
    let onprem = Machine::cts1();
    let cloud = Machine::cloud_c5();
    let onprem_target = detect(&onprem.cpu).unwrap();
    let cloud_target = detect(&cloud.cpu).unwrap();
    assert_eq!(onprem_target.name, "skylake_avx512");
    assert_eq!(cloud_target.name, "skylake");
    // the delta is exactly the masked hardware feature set
    let skx = taxonomy().get("skylake_avx512").unwrap();
    let missing: Vec<&String> = skx
        .all_features
        .iter()
        .filter(|f| !cloud.cpu.features.contains(*f))
        .collect();
    assert!(missing.iter().any(|f| f.as_str() == "avx512f"));
}

#[test]
fn concretizing_for_the_cloud_system_produces_a_portable_build() {
    // Benchpark's fix: concretize against the *cloud's* system profile; the
    // resulting spec targets `skylake`, whose feature set the cloud has.
    let repo = Repo::builtin();
    let cloud_profile = SystemProfile::by_name("cloud-c5").unwrap();
    let site = cloud_profile.site_config();
    let dag = Concretizer::new(&repo, &site)
        .concretize(&"saxpy+openmp".parse().unwrap())
        .unwrap();
    let target = dag.root_node().spec.target.clone().unwrap();
    assert_eq!(target, "skylake");
    let machine = cloud_profile.machine();
    assert!(machine.can_run_binary_for(&target));

    // and that build runs fine in the cloud
    let binary = BinaryInfo::for_target("saxpy", &target, ProgrammingModel::OpenMp);
    let mut cloud = Cluster::new(machine);
    cloud.install_binary(binary);
    let id = cloud.submit_script(SCRIPT, "jens").unwrap();
    cloud.run_until_idle();
    assert!(cloud.job(id).unwrap().success());
}

#[test]
fn performance_delta_between_sites_is_visible() {
    // §7.2: "cloud resources can be treated like another platform" — and the
    // interconnect difference shows up immediately in collective latency.
    let script = "#SBATCH -N 2\n#SBATCH -n 64\nsrun -n 64 osu_bcast -m 8:8 -i 100\n";
    let latency = |machine: Machine| {
        let mut cluster = Cluster::new(machine);
        let id = cluster.submit_script(script, "x").unwrap();
        cluster.run_until_idle();
        let out = cluster.job(id).unwrap().stdout.clone();
        out.lines()
            .find(|l| l.starts_with("8 "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap()
    };
    let onprem = latency(Machine::cts1());
    let cloud = latency(Machine::cloud_c5());
    assert!(
        cloud > onprem,
        "cloud ethernet ({cloud} us) must be slower than Omni-Path ({onprem} us)"
    );
}
