//! Integration tests for `benchpark lint`.
//!
//! Two suites:
//!
//! 1. **Builtin compositions are clean** — every experiment template composed
//!    with every builtin system profile must produce zero diagnostics, which
//!    is what keeps the warn-only pre-`workspace setup` hook silent (and the
//!    pipeline FOMs untouched) for stock configurations.
//! 2. **Fixture corpus** — `tests/lint_fixtures/bad/<rule>/` contains one
//!    seeded violation per rule with an `EXPECT` file recording the exact
//!    `CODE artifact:line:col` findings (snapshot-style), and
//!    `tests/lint_fixtures/good/<rule>/` holds the corrected artifact that
//!    must lint fully clean.

use std::fs;
use std::path::Path;

use benchpark::core::{available_experiments, experiment_template, Benchpark, SystemProfile};
use benchpark::lint::{ArtifactSet, Linter};

#[test]
fn builtin_compositions_lint_clean() {
    let bp = Benchpark::new();
    for profile in SystemProfile::all() {
        for (benchmark, variant) in available_experiments() {
            let template = experiment_template(benchmark, variant)
                .unwrap_or_else(|| panic!("no template for {benchmark}/{variant}"));
            let report = bp.lint_composition(&template, &profile);
            assert!(
                report.is_empty(),
                "lint findings for {benchmark}/{variant} on {}:\n{}",
                profile.name,
                report.render()
            );
        }
    }
}

/// Load every YAML artifact in a fixture directory (sorted by file name,
/// skipping the `EXPECT` / `EXPECT.json` snapshots) into one [`ArtifactSet`].
fn load_fixture_set(dir: &Path) -> ArtifactSet {
    let mut names: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| !n.starts_with("EXPECT"))
        .collect();
    names.sort();
    let mut set = ArtifactSet::new();
    for name in &names {
        let text = fs::read_to_string(dir.join(name)).unwrap();
        set.add(name, &text);
    }
    set
}

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn sorted_subdirs(path: &Path) -> Vec<std::path::PathBuf> {
    let mut dirs: Vec<_> = fs::read_dir(path)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// The `bp05xx` fixtures exercise the solver rules, which only run on a
/// solve-enabled linter (`benchpark lint --solve`).
fn linter_for(dir: &Path) -> Linter {
    let solve = dir
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("bp05"));
    Linter::new().with_solve(solve)
}

#[test]
fn fixture_corpus_good_artifacts_are_clean() {
    let mut failures = String::new();
    for dir in sorted_subdirs(&fixture_root().join("good")) {
        let report = linter_for(&dir).lint(&load_fixture_set(&dir));
        if !report.is_empty() {
            failures.push_str(&format!("{}:\n{}\n", dir.display(), report.render()));
        }
    }
    assert!(
        failures.is_empty(),
        "good fixtures produced findings:\n{failures}"
    );
}

#[test]
fn docs_lint_table_matches_registry() {
    let doc = fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/LINT.md"))
        .expect("docs/LINT.md");
    let doc_rows: Vec<(String, String, String, String)> = doc
        .lines()
        .filter(|l| l.starts_with("| BP"))
        .map(|l| {
            let cells: Vec<&str> = l.trim_matches('|').split('|').map(str::trim).collect();
            assert_eq!(cells.len(), 4, "malformed row: {l}");
            (
                cells[0].to_string(),
                cells[1].to_string(),
                cells[2].to_string(),
                cells[3].to_string(),
            )
        })
        .collect();
    let registry_rows: Vec<(String, String, String, String)> = benchpark::lint::RULES
        .iter()
        .map(|r| {
            (
                r.code.to_string(),
                r.severity.label().to_string(),
                r.name.to_string(),
                r.summary.to_string(),
            )
        })
        .collect();
    assert_eq!(
        doc_rows, registry_rows,
        "docs/LINT.md rule table diverged from benchpark_lint::registry::RULES"
    );
}

#[test]
fn fixture_corpus_bad_artifacts_match_expected_findings() {
    let mut failures = String::new();
    let dirs = sorted_subdirs(&fixture_root().join("bad"));
    assert!(
        dirs.len() >= 31,
        "expected a fixture per rule, found {}",
        dirs.len()
    );
    for dir in dirs {
        let report = linter_for(&dir).lint(&load_fixture_set(&dir));
        let actual: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| match &d.span {
                Some(s) => format!("{} {}:{}:{}", d.code, d.artifact, s.line, s.col),
                None => format!("{} {}", d.code, d.artifact),
            })
            .collect();
        let expect_path = dir.join("EXPECT");
        let expected: Vec<String> = fs::read_to_string(&expect_path)
            .unwrap_or_default()
            .lines()
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if actual != expected {
            failures.push_str(&format!(
                "{}:\n  expected: {:?}\n  actual:   {:?}\n",
                dir.display(),
                expected,
                actual
            ));
        }
        // Every bad fixture must trip the rule it is named after.
        let rule_code = dir.file_name().unwrap().to_str().unwrap().to_uppercase();
        if !actual.iter().any(|l| l.starts_with(&rule_code)) {
            failures.push_str(&format!(
                "{}: no {} finding among {:?}\n",
                dir.display(),
                rule_code,
                actual
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "bad fixtures diverged from EXPECT:\n{failures}"
    );
}
