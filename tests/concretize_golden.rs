//! Golden-transcript corpus for the concretizer.
//!
//! Renders every concretization in the corpus — every builtin package on
//! every builtin system profile, plus curated variant/provider/external/reuse
//! scenarios and unify environments — to one canonical transcript and compares
//! it byte-for-byte against `tests/golden/concretize_corpus.txt`.
//!
//! The committed golden file was generated from the pre-CSP greedy solver, so
//! this test is the proof that the propagation-based re-platform produces
//! byte-identical results on the entire existing corpus. Regenerate (only
//! when a behavior change is *intended*) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test concretize_golden
//! ```

use benchpark::concretizer::{ConcretizeError, Concretizer, External, SiteConfig};
use benchpark::core::SystemProfile;
use benchpark::pkg::Repo;
use benchpark::spec::Spec;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/concretize_corpus.txt";

fn spec(s: &str) -> Spec {
    s.parse()
        .unwrap_or_else(|e| panic!("bad corpus spec `{s}`: {e}"))
}

/// A stable one-token name for each failure mode. Tokens are part of the
/// golden transcript, so they must not change across solver rewrites.
fn kind_token(err: &ConcretizeError) -> &'static str {
    use benchpark::concretizer::ConcretizeErrorKind as K;
    match &err.kind {
        K::UnknownPackage { .. } => "UnknownPackage",
        K::NoProvider { .. } => "NoProvider",
        K::NoVersion { .. } => "NoVersion",
        K::NoCompiler { .. } => "NoCompiler",
        K::Unsatisfiable { .. } => "Unsatisfiable",
        K::Conflict { .. } => "Conflict",
        K::NotBuildable { .. } => "NotBuildable",
        K::Cycle { .. } => "Cycle",
        K::UnifyConflict { .. } => "UnifyConflict",
    }
}

fn render_case(out: &mut String, site: &str, text: &str, repo: &Repo, config: &SiteConfig) {
    writeln!(out, "## {site} :: {text}").unwrap();
    match Concretizer::new(repo, config).concretize(&spec(text)) {
        Ok(result) => {
            write!(out, "{result}").unwrap();
            writeln!(out, "dag-hash: {}", result.dag_hash()).unwrap();
        }
        Err(err) => writeln!(out, "UNSAT: {}", kind_token(&err)).unwrap(),
    }
    writeln!(out).unwrap();
}

fn render_env_case(
    out: &mut String,
    site: &str,
    roots: &[&str],
    unify: bool,
    repo: &Repo,
    config: &SiteConfig,
) {
    let mode = if unify { "unify" } else { "independent" };
    writeln!(out, "## env[{mode}] {site} :: {}", roots.join(" | ")).unwrap();
    let root_specs: Vec<Spec> = roots.iter().map(|r| spec(r)).collect();
    match Concretizer::new(repo, config).concretize_env(&root_specs, unify) {
        Ok(results) => {
            for result in &results {
                write!(out, "{result}").unwrap();
                writeln!(out, "dag-hash: {}", result.dag_hash()).unwrap();
            }
        }
        Err(err) => writeln!(out, "UNSAT: {}", kind_token(&err)).unwrap(),
    }
    writeln!(out).unwrap();
}

/// Curated single-spec cases exercised on every site.
const CURATED: &[&str] = &[
    "saxpy@1.0.0 +openmp ^cmake@3.23.1",
    "saxpy~openmp+cuda",
    "saxpy+rocm~openmp",
    "saxpy+openmp",
    "amg2023+caliper",
    "amg2023 %gcc@12.1.1",
    "cmake@3.20:",
    "cmake@:3.21",
    "mpi",
    "lapack",
    "osu-micro-benchmarks ^openmpi@4.1.4",
    "lulesh+openmp",
    "cmake@99.9",
    "no-such-pkg",
    "saxpy%clang@14",
    "saxpy+cuda+rocm",
];

fn transcript() -> String {
    let repo = Repo::builtin();
    let mut out = String::new();
    out.push_str("# concretizer golden corpus (generated; see tests/concretize_golden.rs)\n\n");

    // every builtin package and every curated spec, on every site
    let mut sites: Vec<(String, SiteConfig)> =
        vec![("example_cts".to_string(), SiteConfig::example_cts())];
    for profile in SystemProfile::all() {
        sites.push((profile.name.clone(), profile.site_config()));
    }
    for (site, config) in &sites {
        for name in repo.names() {
            render_case(&mut out, site, name, &repo, config);
        }
        for text in CURATED {
            render_case(&mut out, site, text, &repo, config);
        }
    }

    // environments (Figure 3 unify semantics)
    let cts = SiteConfig::example_cts();
    render_env_case(
        &mut out,
        "example_cts",
        &["saxpy+openmp", "amg2023"],
        true,
        &repo,
        &cts,
    );
    render_env_case(
        &mut out,
        "example_cts",
        &["cmake@=3.23.1", "cmake@=3.20.2"],
        true,
        &repo,
        &cts,
    );
    render_env_case(
        &mut out,
        "example_cts",
        &["cmake@=3.23.1", "cmake@=3.20.2"],
        false,
        &repo,
        &cts,
    );
    render_env_case(
        &mut out,
        "example_cts",
        &["osu-micro-benchmarks", "amg2023+caliper", "saxpy+openmp"],
        true,
        &repo,
        &cts,
    );

    // site-policy scenarios on example_cts
    let mut prefs = SiteConfig::example_cts();
    prefs
        .provider_prefs
        .insert("mpi".into(), vec!["openmpi".into()]);
    prefs.not_buildable.clear();
    render_case(
        &mut out,
        "example_cts+openmpi-pref",
        "osu-micro-benchmarks",
        &repo,
        &prefs,
    );

    let mut vprefs = SiteConfig::example_cts();
    vprefs
        .version_prefs
        .insert("cmake".into(), spec("cmake@3.20.2").versions);
    render_case(
        &mut out,
        "example_cts+cmake-3.20-pref",
        "cmake",
        &repo,
        &vprefs,
    );
    render_case(
        &mut out,
        "example_cts+cmake-3.20-pref",
        "saxpy+openmp",
        &repo,
        &vprefs,
    );

    let mut ext = SiteConfig::example_cts();
    ext.externals.insert(
        "cmake".to_string(),
        vec![External::new("cmake@3.23.1", "/usr/tce/cmake")],
    );
    render_case(&mut out, "example_cts+cmake-external", "saxpy", &repo, &ext);

    let mut nobuild = SiteConfig::example_cts();
    nobuild.not_buildable.push("cmake".to_string());
    render_case(
        &mut out,
        "example_cts+cmake-notbuildable",
        "cmake",
        &repo,
        &nobuild,
    );

    let first = Concretizer::new(&repo, &cts)
        .concretize(&spec("cmake@=3.20.2"))
        .unwrap();
    let mut reuse = SiteConfig::example_cts();
    reuse.reuse = true;
    reuse.installed.push(first);
    render_case(&mut out, "example_cts+reuse-cmake", "saxpy", &repo, &reuse);
    render_case(
        &mut out,
        "example_cts+reuse-cmake",
        "saxpy ^cmake@=3.23.1",
        &repo,
        &reuse,
    );

    out
}

#[test]
fn concretize_corpus_matches_golden() {
    let actual = transcript();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH}: {e} (run with UPDATE_GOLDEN=1 to create)")
    });
    if expected != actual {
        // find the first differing line for a readable failure
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                let _ = write!(
                    diff,
                    "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                    i + 1
                );
                break;
            }
        }
        if diff.is_empty() {
            diff = format!(
                "line counts differ: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            );
        }
        panic!("concretizer output diverged from the pre-rewrite golden corpus\n{diff}");
    }
}
