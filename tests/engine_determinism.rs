//! Integration: the execution engine's determinism guarantee, end to end.
//! The same setup → run → analyze pipeline is driven with 1 and with 8
//! engine workers — both times under an active transient-fault plan — and
//! every observable outcome must be byte-identical: figures of merit,
//! experiment statuses, and the batch scheduler's per-job states, exit
//! codes, and stdout. The worker count may change wall-clock behaviour,
//! never results.

use benchpark::cluster::{FaultPlan, JobState, TransientFault};
use benchpark::core::{Benchpark, FleetExperiment, SystemProfile};
use benchpark::telemetry::TelemetrySink;

/// Seeded fault plan matching the resilience suite: every binary-cache
/// fetch fails and all but one compute node dies mid-drain.
fn fault_plan() -> FaultPlan {
    let victims = SystemProfile::by_name("cts1")
        .expect("cts1 profile exists")
        .machine()
        .nodes
        - 1;
    FaultPlan::new(2023)
        .with(TransientFault::FlakyCacheFetch { rate: 1.0 })
        .with(TransientFault::NodeFailureAt {
            at_s: 0.25,
            nodes: victims,
        })
        .with_budget(12)
}

/// Everything a run observably produces: FOM triples, experiment statuses,
/// and per-job scheduler outcomes.
#[derive(Debug, PartialEq)]
struct Observables {
    foms: Vec<(String, String, String)>,
    statuses: Vec<(String, String)>,
    jobs: Vec<(u64, JobState, i32, String)>,
}

/// Runs amg2023/openmp on cts1 with `jobs` engine workers under the fault
/// plan and captures the observable outcomes.
fn run_with_jobs(jobs: usize, dir: &std::path::Path) -> Observables {
    let _ = std::fs::remove_dir_all(dir);
    let sink = TelemetrySink::recording();
    let benchpark = Benchpark::new()
        .with_telemetry(sink.clone())
        .with_jobs(jobs)
        .with_fault_plan(fault_plan());
    let mut ws = benchpark
        .setup_workspace("amg2023", "openmp", "cts1", dir.to_str().unwrap())
        .expect("setup succeeds");
    ws.run().expect("run completes despite faults");
    let analysis = ws.analyze(&benchpark).expect("analyze succeeds");
    assert!(
        sink.report()
            .expect("recording sink")
            .counter("retry.attempts")
            > 0,
        "the fault plan must actually engage for this test to mean anything"
    );
    let observed = Observables {
        foms: analysis
            .results
            .iter()
            .flat_map(|r| {
                r.foms
                    .iter()
                    .map(|f| (r.experiment.clone(), f.name.clone(), f.value.clone()))
            })
            .collect(),
        statuses: analysis
            .results
            .iter()
            .map(|r| (r.experiment.clone(), format!("{:?}", r.status)))
            .collect(),
        jobs: ws
            .cluster
            .jobs()
            .map(|j| (j.id.0, j.state, j.exit_code, j.stdout.clone()))
            .collect(),
    };
    let _ = std::fs::remove_dir_all(dir);
    observed
}

#[test]
fn faulted_pipeline_outcomes_identical_for_1_and_8_workers() {
    let base = std::env::temp_dir().join("benchpark-itest-engine-determinism");
    let serial = run_with_jobs(1, &base.join("jobs1"));
    let pooled = run_with_jobs(8, &base.join("jobs8"));

    assert!(!serial.foms.is_empty(), "expected figures of merit");
    assert!(!serial.jobs.is_empty(), "expected scheduler jobs");
    assert!(
        serial.jobs.iter().all(|j| j.1 == JobState::Completed),
        "all jobs should complete despite the fault plan: {:?}",
        serial.jobs
    );
    assert_eq!(
        serial, pooled,
        "FOMs, statuses, and job outcomes must be byte-identical for any worker count"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn fleet_foms_identical_for_1_and_8_workers() {
    let base = std::env::temp_dir().join("benchpark-itest-engine-fleet");
    let fleet: Vec<FleetExperiment> = [
        ("amg2023", "openmp", "cts1"),
        ("saxpy", "openmp", "cloud-c5"),
    ]
    .iter()
    .map(|(benchmark, variant, system)| FleetExperiment {
        benchmark: benchmark.to_string(),
        variant: variant.to_string(),
        system: system.to_string(),
        workspace_dir: base.join(format!("{benchmark}-{system}")),
    })
    .collect();

    let mut runs = Vec::new();
    for jobs in [1usize, 8] {
        let _ = std::fs::remove_dir_all(&base);
        let benchpark = Benchpark::new().with_jobs(jobs);
        let outcomes = benchpark.run_fleet(&fleet).expect("fleet succeeds");
        runs.push(
            outcomes
                .iter()
                .flat_map(|o| {
                    o.analysis.results.iter().flat_map(move |r| {
                        r.foms.iter().map(move |f| {
                            (
                                format!("{}/{}@{}", o.benchmark, o.variant, o.system),
                                r.experiment.clone(),
                                f.name.clone(),
                                f.value.clone(),
                            )
                        })
                    })
                })
                .collect::<Vec<_>>(),
        );
    }
    let _ = std::fs::remove_dir_all(&base);

    assert!(!runs[0].is_empty(), "fleet runs should extract FOMs");
    assert_eq!(
        runs[0], runs[1],
        "fleet FOMs must not depend on the engine worker count"
    );
}
