//! Integration: the bench trajectory end-to-end — the tiny-scale hot-path
//! suite through the library, then the `benchpark bench` and
//! `benchpark regress --bench` CLI surface the CI perf smoke step drives
//! (`docs/perf/methodology.md`).

use benchpark::bench::{run_suite, suite_names, Scale, SuiteConfig};
use benchpark::core::BenchReport;
use std::path::PathBuf;
use std::process::Command;

fn temp_base(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("benchpark-bench-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the CLI, returning (exit_ok, stdout, stderr).
fn benchpark(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_benchpark"))
        .args(args)
        .output()
        .expect("benchpark binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// The tiny-scale suite exercises every bench the full suite has, emits a
/// valid report, and the report survives a byte-identical round trip.
#[test]
fn tiny_suite_runs_every_bench_and_round_trips() {
    let config = SuiteConfig::tiny("2026-08-08");
    let mut progressed = Vec::new();
    let report = run_suite(&config, |line| progressed.push(line.to_string()));

    let expected = suite_names(Scale::Tiny);
    let got: Vec<String> = report.results.iter().map(|r| r.name.clone()).collect();
    assert_eq!(got, expected, "every bench ran, sorted by name");
    assert_eq!(progressed.len(), expected.len(), "one progress line each");

    for r in &report.results {
        assert!(r.median_ns.is_finite() && r.median_ns > 0.0, "{}", r.name);
        assert!(r.std_ns.is_finite() && r.std_ns >= 0.0, "{}", r.name);
        assert_eq!(r.samples, config.samples);
        assert_eq!(r.units, "ns/iter");
        assert!(!r.group.is_empty());
    }

    // tiny sizes are baked into names: never comparable with full scale
    assert!(got.iter().any(|n| n == "engine.plan.lpt.2k"));
    assert!(!suite_names(Scale::Full).contains(&"engine.plan.lpt.2k".to_string()));

    let json = report.to_json();
    let parsed = BenchReport::parse(&json).expect("suite output parses");
    assert_eq!(parsed.to_json(), json, "emission is deterministic");
    assert_eq!(parsed.file_name(), "BENCH_2026-08-08.json");
}

/// The filter narrows the suite without renaming anything.
#[test]
fn suite_filter_selects_by_substring() {
    let mut config = SuiteConfig::tiny("2026-08-08");
    config.filter = Some("concretize".to_string());
    let report = run_suite(&config, |_| {});
    let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "concretize.env7.unify",
            "concretize.repo_500.cold",
            "concretize.repo_500.incr",
            "concretize.single"
        ]
    );
}

/// Incremental re-propagation on the synthetic stress repo must beat a cold
/// solve — that is the whole point of keeping the session warm. The 2×
/// floor holds with margin at this scale (~2.6× release, ~3× debug); at
/// full 10k scale the ratio tightens toward ~2× because extraction of the
/// complete concrete DAG, which both paths share, dominates.
#[test]
fn incremental_repropagation_beats_cold_solve() {
    use benchpark::bench::{deep_package_name, synth_repo};
    use benchpark::concretizer::{Concretizer, SiteConfig};
    use benchpark::spec::{Spec, VersionConstraint};
    use std::time::Instant;

    let repo = synth_repo(500, 25);
    let site = SiteConfig::example_cts();
    let root: Spec = "synth-root".parse().unwrap();
    let cz = Concretizer::new(&repo, &site);
    let mut session = cz.session(&root).unwrap();
    let target = deep_package_name(500, 25);
    let constraint = VersionConstraint::exactly("2.0.0".parse().unwrap());

    // correctness: editing a *direct* dependency of the root must match the
    // cold solve with the edit folded into the root spec (a `^dep` user
    // constraint adds a root edge, so only direct deps have an equivalent
    // cold formulation); `synth-l000-p000` is layer 0, always a root dep
    let incremental = session
        .resolve_version("synth-l000-p000", &constraint)
        .unwrap();
    let cold_edit: Spec = "synth-root ^synth-l000-p000@=2.0.0".parse().unwrap();
    let cold_spec = Concretizer::new(&repo, &site)
        .concretize(&cold_edit)
        .unwrap();
    assert_eq!(
        incremental.dag_hash(),
        cold_spec.dag_hash(),
        "incremental edit diverged from cold solve"
    );
    // warm up the deep-edit path before timing it
    session.resolve_version(&target, &constraint).unwrap();

    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let mut cold_times = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(Concretizer::new(&repo, &site).concretize(&root).unwrap());
        cold_times.push(start.elapsed().as_secs_f64());
    }
    let mut incr_times = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(session.resolve_version(&target, &constraint).unwrap());
        incr_times.push(start.elapsed().as_secs_f64());
    }
    let (cold, incr) = (median(&mut cold_times), median(&mut incr_times));
    assert!(
        incr * 2.0 < cold,
        "incremental re-propagation not measurably faster: cold {cold:.4}s vs incr {incr:.4}s"
    );
}

/// `benchpark bench --list` names the full-scale suite without measuring.
#[test]
fn cli_bench_list_names_the_suite() {
    let (ok, stdout, _) = benchpark(&["bench", "--list"]);
    assert!(ok);
    for name in suite_names(Scale::Full) {
        assert!(stdout.contains(&name), "missing {name}");
    }
}

/// `benchpark bench --out DIR` writes `BENCH_<date>.json` into the
/// directory and the file parses; stdout stays clean for redirection.
#[test]
fn cli_bench_writes_parseable_report() {
    let dir = temp_base("bench-out");
    let (ok, stdout, stderr) = benchpark(&[
        "bench",
        "--samples",
        "2",
        "--filter",
        "concretize.single",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "bench failed: {stderr}");
    assert!(stdout.is_empty(), "--out keeps stdout clean: {stdout}");
    assert!(stderr.contains("concretize.single"), "progress on stderr");

    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(files.len(), 1);
    assert!(
        files[0].starts_with("BENCH_") && files[0].ends_with(".json"),
        "conventional name, got {files:?}"
    );

    let text = std::fs::read_to_string(dir.join(&files[0])).unwrap();
    let report = BenchReport::parse(&text).expect("CLI output parses");
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.results[0].name, "concretize.single");
    assert_eq!(report.env.profile, "debug");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bad flags fail loudly instead of silently measuring the wrong thing.
#[test]
fn cli_bench_rejects_bad_flags() {
    let (ok, _, stderr) = benchpark(&["bench", "--samples", "1"]);
    assert!(!ok);
    assert!(stderr.contains("at least 2"), "got: {stderr}");
    let (ok, _, stderr) = benchpark(&["bench", "--frobnicate"]);
    assert!(!ok, "unknown flag must fail: {stderr}");
}

fn write_report(dir: &std::path::Path, name: &str, median: f64) -> String {
    let path = dir.join(name);
    let body = format!(
        r#"{{
  "schema": 1,
  "suite": "hotpath",
  "created": "2026-08-08",
  "env": {{"os":"linux","arch":"x86_64","cpus":1,"version":"0.1.0","profile":"release"}},
  "results": [
    {{"name": "engine.plan.lpt.100k", "group": "engine", "iters": 1, "samples": 7, "median_ns": {median}, "mean_ns": {median}, "std_ns": 100.0, "units": "ns/iter"}}
  ]
}}
"#
    );
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

fn write_multi(dir: &std::path::Path, name: &str, scale: f64) -> String {
    let path = dir.join(name);
    let (a, b) = (1_000_000.0 * scale, 10_000_000.0 * scale);
    let body = format!(
        r#"{{
  "schema": 1,
  "suite": "hotpath",
  "created": "2026-08-08",
  "env": {{"os":"linux","arch":"x86_64","cpus":1,"version":"0.1.0","profile":"release"}},
  "results": [
    {{"name": "engine.plan.lpt.100k", "group": "engine", "iters": 1, "samples": 7, "median_ns": {a}, "mean_ns": {a}, "std_ns": 100.0, "units": "ns/iter"}},
    {{"name": "ledger.replay.10k", "group": "ledger", "iters": 1, "samples": 7, "median_ns": {b}, "mean_ns": {b}, "std_ns": 100.0, "units": "ns/iter"}}
  ]
}}
"#
    );
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

/// A uniformly 1.5× slower run (a different machine, a throttled runner)
/// passes the default calibrated gate with the shift reported as a speed
/// factor, and fails only under `--absolute`.
#[test]
fn cli_regress_bench_calibrates_machine_speed() {
    let dir = temp_base("regress-calibrated");
    let baseline = write_multi(&dir, "BENCH_2026-08-01.json", 1.0);
    let slower_machine = write_multi(&dir, "BENCH_2026-08-02.json", 1.5);

    let (ok, stdout, _) = benchpark(&["regress", "--bench", &baseline, &slower_machine]);
    assert!(ok, "uniform shift must calibrate out: {stdout}");
    assert!(
        stdout.contains("machine speed vs baseline: 0.67x"),
        "got: {stdout}"
    );

    let (ok, stdout, stderr) = benchpark(&[
        "regress",
        "--bench",
        "--absolute",
        &baseline,
        &slower_machine,
    ]);
    assert!(!ok, "raw comparison must flag the shift");
    assert!(
        !stdout.contains("machine speed"),
        "no factor line: {stdout}"
    );
    assert!(stderr.contains("2 of 2"), "got: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `regress --bench` over a crafted trajectory: steady is ok (exit 0), a
/// clear slowdown fails (exit nonzero) and names the bench, and a clear
/// speedup is reported as improved.
#[test]
fn cli_regress_bench_gates_the_trajectory() {
    let dir = temp_base("regress-bench");
    let baseline = write_report(&dir, "BENCH_2026-08-01.json", 1_000_000.0);
    let steady = write_report(&dir, "BENCH_2026-08-02.json", 1_030_000.0);
    let slow = write_report(&dir, "BENCH_2026-08-03.json", 1_500_000.0);
    let fast = write_report(&dir, "BENCH_2026-08-04.json", 700_000.0);

    // within the default 10% bench threshold: ok
    let (ok, stdout, _) = benchpark(&["regress", "--bench", &baseline, &steady]);
    assert!(ok, "steady trajectory must pass: {stdout}");
    assert!(stdout.contains("within 10% of baseline"), "got: {stdout}");

    // 50% slower: fails and names the regression
    let (ok, stdout, stderr) = benchpark(&["regress", "--bench", &baseline, &slow]);
    assert!(!ok, "regression must fail the gate");
    assert!(stdout.contains("REGRESSION"), "got: {stdout}");
    assert!(stderr.contains("regressed beyond 10%"), "got: {stderr}");

    // 30% faster: passes and counts the improvement
    let (ok, stdout, _) = benchpark(&["regress", "--bench", &baseline, &fast]);
    assert!(ok);
    assert!(stdout.contains("(1 improved)"), "got: {stdout}");

    // a single file has nothing to compare against
    let (ok, _, stderr) = benchpark(&["regress", "--bench", &baseline]);
    assert!(!ok);
    assert!(stderr.contains("at least two"), "got: {stderr}");

    // a custom threshold tightens the gate: 2% flags the 3% slip
    let (ok, stdout, _) = benchpark(&[
        "regress",
        "--bench",
        "--threshold",
        "0.02",
        &baseline,
        &steady,
    ]);
    assert!(!ok, "2% gate must flag a 3% slip: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
