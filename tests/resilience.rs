//! Integration: the resilience layer end to end. A full setup → run →
//! analyze pipeline is struck by a seeded transient-fault plan — every
//! binary-cache fetch fails (tripping the circuit breaker and degrading to
//! source builds) and all but one compute node dies mid-run (forcing the
//! scheduler to requeue preempted jobs onto the survivor) — yet the run
//! completes, the analysis extracts the same figures of merit as a
//! fault-free run, and the telemetry report carries the resilience
//! counters that prove the machinery engaged.

use benchpark::cluster::{FaultPlan, TransientFault};
use benchpark::core::{Benchpark, SystemProfile};
use benchpark::ramble::ExperimentStatus;
use benchpark::telemetry::TelemetrySink;

/// Runs amg2023/openmp on cts1 under the given Benchpark driver and
/// returns the (experiment, fom-name, fom-value) triples.
fn run_amg(benchpark: &Benchpark, dir: &std::path::Path) -> Vec<(String, String, String)> {
    let mut ws = benchpark
        .setup_workspace("amg2023", "openmp", "cts1", dir.to_str().unwrap())
        .expect("setup succeeds");
    ws.run().expect("run completes despite faults");
    let analysis = ws.analyze(benchpark).expect("analyze succeeds");
    assert!(
        !analysis.results.is_empty(),
        "expected rendered experiments"
    );
    for result in &analysis.results {
        assert_eq!(
            result.status,
            ExperimentStatus::Success,
            "experiment {} did not succeed",
            result.experiment
        );
    }
    analysis
        .results
        .iter()
        .flat_map(|r| {
            r.foms
                .iter()
                .map(|f| (r.experiment.clone(), f.name.clone(), f.value.clone()))
        })
        .collect()
}

#[test]
fn faulted_pipeline_completes_and_counts_recoveries() {
    let dir = std::env::temp_dir().join("benchpark-itest-resilience-faulted");
    let _ = std::fs::remove_dir_all(&dir);

    // All nodes but one die at t=0.25s, while both amg experiments overlap.
    let survivors_victims = SystemProfile::by_name("cts1")
        .expect("cts1 profile exists")
        .machine()
        .nodes
        - 1;
    let sink = TelemetrySink::recording();
    let benchpark = Benchpark::new()
        .with_telemetry(sink.clone())
        .with_fault_plan(
            FaultPlan::new(2023)
                .with(TransientFault::FlakyCacheFetch { rate: 1.0 })
                .with(TransientFault::NodeFailureAt {
                    at_s: 0.25,
                    nodes: survivors_victims,
                })
                .with_budget(12),
        );
    let faulted_foms = run_amg(&benchpark, &dir);

    let report = sink.report().expect("recording sink has a report");
    assert!(
        report.counter("retry.attempts") > 0,
        "cache fetch retries should have fired: {:?}",
        report.counters
    );
    assert!(
        report.counter("cache.breaker.trips") > 0,
        "sustained cache outage should trip the breaker: {:?}",
        report.counters
    );
    assert!(
        report.counter("sched.requeued") > 0,
        "node failure should preempt and requeue a job: {:?}",
        report.counters
    );
    assert!(
        report.counter("sched.node_failures") > 0,
        "the node-failure event itself should be counted"
    );

    // Graceful degradation, not silent corruption: the faulted run extracts
    // the same FOMs as a fault-free run of the same experiment.
    let clean_dir = std::env::temp_dir().join("benchpark-itest-resilience-clean");
    let _ = std::fs::remove_dir_all(&clean_dir);
    let clean_sink = TelemetrySink::recording();
    let clean = Benchpark::new().with_telemetry(clean_sink.clone());
    let clean_foms = run_amg(&clean, &clean_dir);

    assert_eq!(
        faulted_foms, clean_foms,
        "faults must delay, never distort, the figures of merit"
    );
    let clean_report = clean_sink.report().expect("report");
    assert_eq!(clean_report.counter("cache.breaker.trips"), 0);
    assert_eq!(clean_report.counter("sched.requeued"), 0);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
