//! Golden justification-transcript corpus for the propagation solver.
//!
//! A stress corpus of conflicting-variant and multi-provider scenarios is
//! dry-solved with [`analyze_spec`] and the full `benchpark explain`-style
//! transcript (headline, dependency path, justification chain, provider
//! decisions, ambiguity and dead-variant warnings) is compared byte-for-byte
//! against `tests/golden/solver_explain.txt`.
//!
//! This pins down the *explanations*, where `concretize_golden` pins down
//! the *solutions*: a solver change that still finds the same answers but
//! justifies them differently fails here first. Regenerate (only when a
//! wording or chain change is intended) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test solver_explain
//! ```

use benchpark::concretizer::{analyze_spec, SiteConfig};
use benchpark::pkg::Repo;
use benchpark::spec::Spec;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/solver_explain.txt";

fn spec(s: &str) -> Spec {
    s.parse()
        .unwrap_or_else(|e| panic!("bad corpus spec `{s}`: {e}"))
}

fn render_case(out: &mut String, site: &str, text: &str, repo: &Repo, config: &SiteConfig) {
    let report = analyze_spec(repo, config, &spec(text), true);
    writeln!(out, "## {site} :: {text}").unwrap();
    out.push_str(&report.render());
    writeln!(out).unwrap();
}

/// Conflicting-variant scenarios: recipe conflicts, disjoint version
/// ranges, per-package and user-vs-recipe contradictions.
const CONFLICTING: &[&str] = &[
    "saxpy+cuda+rocm",                  // recipe conflicts(+rocm when +cuda)
    "hypre+cuda+rocm",                  // same conflict, different recipe
    "saxpy ^cmake@:3.19",               // user range disjoint from depends_on range
    "amg2023 ^hypre@:2.23",             // disjoint from depends_on, deeper in the graph
    "saxpy@2:",                         // no admitted version at the root
    "cmake@99.9",                       // no such version
    "saxpy%clang@14",                   // compiler the site does not provide
    "osu-micro-benchmarks ^openmpi@5:", // provider pinned to a dead range
];

/// Multi-provider scenarios: which provider wins, and why.
const PROVIDERS: &[&str] = &[
    "mpi",                                 // bare virtual root
    "osu-micro-benchmarks",                // virtual dependency, all providers viable
    "osu-micro-benchmarks ^openmpi@4.1.4", // user pins the provider
    "hypre",                               // blas + lapack virtuals
    "lapack",
];

fn transcript() -> String {
    let repo = Repo::builtin();
    let mut out = String::new();
    out.push_str("# solver justification corpus (generated; see tests/solver_explain.rs)\n\n");

    let cts = SiteConfig::example_cts();
    for text in CONFLICTING {
        render_case(&mut out, "example_cts", text, &repo, &cts);
    }

    // bare site: no provider preferences, so ambiguity warnings fire
    let mut bare = SiteConfig::example_cts();
    bare.provider_prefs.clear();
    bare.externals.clear();
    bare.not_buildable.clear();
    for text in PROVIDERS {
        render_case(&mut out, "bare_cts", text, &repo, &bare);
    }

    // pinned site: preferences silence the same cases
    let mut pinned = bare.clone();
    pinned
        .provider_prefs
        .insert("mpi".into(), vec!["mvapich2".into()]);
    pinned
        .provider_prefs
        .insert("blas".into(), vec!["openblas".into()]);
    pinned
        .provider_prefs
        .insert("lapack".into(), vec!["openblas".into()]);
    for text in PROVIDERS {
        render_case(&mut out, "pinned_cts", text, &repo, &pinned);
    }

    out
}

#[test]
fn solver_explanations_match_golden() {
    let actual = transcript();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH}: {e} (run with UPDATE_GOLDEN=1 to create)")
    });
    if expected != actual {
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                let _ = write!(
                    diff,
                    "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                    i + 1
                );
                break;
            }
        }
        if diff.is_empty() {
            diff = format!(
                "line counts differ: golden {} vs actual {}",
                expected.lines().count(),
                actual.lines().count()
            );
        }
        panic!("solver justification transcript diverged from golden\n{diff}");
    }
}

/// Every unsatisfiable corpus case must come with a non-empty justification
/// chain — an unexplained UNSAT is a solver bug, not a corpus problem.
#[test]
fn every_unsat_case_is_justified() {
    let repo = Repo::builtin();
    let cts = SiteConfig::example_cts();
    for text in CONFLICTING {
        let report = analyze_spec(&repo, &cts, &spec(text), false);
        assert!(
            !report.satisfiable,
            "corpus case `{text}` became satisfiable"
        );
        assert!(
            !report.chain.is_empty(),
            "unsat case `{text}` has no justification chain"
        );
    }
}
