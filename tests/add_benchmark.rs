//! Integration: the §4 "adding benchmarks to Benchpark" path — a contributed
//! benchmark runs through the unchanged workflow, and the same contribution
//! flows through the Figure 6 CI loop.

use benchpark::cluster::{AppOutput, RunContext};
use benchpark::core::Benchpark;
use benchpark::pkg::{ApplicationDef, DepType, PackageDef, SuccessMode};
use benchpark::ramble::ExperimentStatus;

fn spin_model(_ctx: &RunContext<'_>, args: &[String]) -> AppOutput {
    let reps: u64 = args
        .iter()
        .position(|a| a == "-r")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    AppOutput {
        stdout: format!("spin result: {}\nspin ok\n", reps * 7),
        duration_seconds: reps as f64 * 0.001,
        exit_code: 0,
        profile: vec![("main/spin".to_string(), reps as f64 * 0.001)],
    }
}

const TEMPLATE: &str = r#"ramble:
  applications:
    spin:
      workloads:
        basic:
          variables:
            batch_time: '10'
            n_nodes: '1'
            n_ranks: '1'
          experiments:
            spin_{reps}:
              variables:
                reps: ['5', '50']
  spack:
    packages:
      spin:
        spack_spec: spin@0.1
        compiler: default-compiler
    environments:
      spin:
        packages: [spin]
"#;

fn contributed_benchpark() -> Benchpark {
    let mut benchpark = Benchpark::new();
    benchpark.add_package(
        PackageDef::new("spin", "contributed spin benchmark")
            .version("0.1")
            .depends_on("cmake@3.14:", DepType::Build)
            .build_cost(3.0),
    );
    benchpark.add_application(
        ApplicationDef::new("spin", "spin benchmark")
            .executable("p", "spin -r {reps}", false)
            .workload("basic", &["p"])
            .workload_variable("reps", "1", "repetitions", &["basic"])
            .figure_of_merit("result", r"spin result: (?P<v>\d+)", "v", "")
            .success_criteria(
                "ok",
                SuccessMode::StringMatch,
                "spin ok",
                "{experiment_run_dir}/{experiment_name}.out",
            ),
    );
    benchpark
}

#[test]
fn contributed_benchmark_runs_end_to_end() {
    let benchpark = contributed_benchpark();
    let dir = std::env::temp_dir().join(format!("benchpark-it-add-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = benchpark
        .setup_workspace_from_template(
            "spin",
            "basic",
            TEMPLATE,
            "cts1",
            &dir,
            None,
            &[("spin", spin_model)],
        )
        .unwrap();
    assert_eq!(ws.setup_report.experiments.len(), 2);
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    for result in &analysis.results {
        assert_eq!(
            result.status,
            ExperimentStatus::Success,
            "{}",
            result.experiment
        );
    }
    let r5 = analysis.get("spin_5").unwrap();
    assert_eq!(r5.foms[0].value, "35"); // 5 × 7
    let r50 = analysis.get("spin_50").unwrap();
    assert_eq!(r50.foms[0].value, "350");
}

#[test]
fn contributed_benchmark_without_model_fails_visibly() {
    // forgetting the performance model (step 4) is a visible job failure,
    // not a silent success
    let benchpark = contributed_benchpark();
    let dir = std::env::temp_dir().join(format!("benchpark-it-nomodel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = benchpark
        .setup_workspace_from_template("spin", "basic", TEMPLATE, "cts1", &dir, None, &[])
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    assert!(analysis
        .results
        .iter()
        .all(|r| r.status == ExperimentStatus::JobError));
}

#[test]
fn contributed_package_must_concretize() {
    // a contribution whose recipe references an unknown dependency fails at
    // setup (environment build), not at run time
    let mut benchpark = Benchpark::new();
    benchpark.add_package(
        PackageDef::new("spin", "broken recipe")
            .version("0.1")
            .depends_on("does-not-exist", DepType::Link),
    );
    benchpark.add_application(
        ApplicationDef::new("spin", "spin benchmark")
            .executable("p", "spin", false)
            .workload("basic", &["p"]),
    );
    let dir = std::env::temp_dir().join(format!("benchpark-it-badpkg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let err = match benchpark.setup_workspace_from_template(
        "spin",
        "basic",
        TEMPLATE,
        "cts1",
        &dir,
        None,
        &[],
    ) {
        Err(e) => e,
        Ok(_) => panic!("broken recipe must not set up"),
    };
    assert!(err.contains("does-not-exist"), "{err}");
}
