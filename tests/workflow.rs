//! Integration: the full Figure 1c workflow across every crate — driver →
//! spack → ramble → cluster → analysis → metrics → perf modeling.

use benchpark::core::{Benchpark, MetricsDatabase};
use benchpark::perf::extrap;
use benchpark::ramble::ExperimentStatus;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_workflow_saxpy_on_cts1() {
    let benchpark = Benchpark::new();
    let mut ws = benchpark
        .setup_workspace("saxpy", "openmp", "cts1", temp_dir("wf"))
        .unwrap();

    // Figure 10's 8 experiments, rendered as Slurm scripts
    assert_eq!(ws.setup_report.experiments.len(), 8);
    for exp in &ws.setup_report.experiments {
        let script = ws.workspace.script(&exp.name).unwrap();
        assert!(script.starts_with("#!/bin/bash"), "{script}");
        assert!(script.contains("#SBATCH -N"), "{script}");
        assert!(script.contains("srun -N"), "{script}");
    }

    // software went through concretizer + install engine
    let reports = &ws.setup_report.install_reports["saxpy"];
    let built: usize = reports.iter().map(|r| r.newly_installed).sum();
    assert!(built >= 3, "expected saxpy + cmake + mpi, got {built}");

    // run on the simulated cluster and analyze
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    assert_eq!(analysis.results.len(), 8);
    for result in &analysis.results {
        assert_eq!(
            result.status,
            ExperimentStatus::Success,
            "{}",
            result.experiment
        );
        // Figure 8's FOM extracted via the rex engine
        assert!(result
            .foms
            .iter()
            .any(|f| f.name == "success" && f.value == "Kernel done"));
        let t = result
            .foms
            .iter()
            .find(|f| f.name == "kernel_time")
            .and_then(|f| f.as_f64())
            .unwrap();
        assert!(t > 0.0);
    }

    // record into the metrics DB with the manifest (§5)
    let db = MetricsDatabase::new();
    db.record("cts1", "saxpy", "openmp", &ws.manifest(), &analysis.results);
    assert_eq!(db.len(), 8);
    assert!(db.all()[0].manifest.contains("saxpy@1.0.0 +openmp"));
}

#[test]
fn stream_thread_scaling_models_bandwidth_saturation() {
    // continuous benchmarking catches the shape of the machine: STREAM triad
    // bandwidth rises with threads and saturates — Extra-P should NOT pick a
    // superlinear model.
    let benchpark = Benchpark::new();
    let db = MetricsDatabase::new();
    let mut ws = benchpark
        .setup_workspace("stream", "openmp", "cts1", temp_dir("stream"))
        .unwrap();
    ws.run().unwrap();
    let analysis = ws.analyze(&benchpark).unwrap();
    db.record(
        "cts1",
        "stream",
        "openmp",
        &ws.manifest(),
        &analysis.results,
    );

    let series = db.fom_series("stream", "cts1", "triad_bw", "n_threads");
    assert_eq!(series.len(), 4);
    assert!(series.windows(2).all(|w| w[0].1 <= w[1].1 * 1.05));
    let model = extrap::fit(&series).unwrap();
    assert!(
        model.i <= 1.0,
        "bandwidth cannot scale superlinearly: {model}"
    );
}

#[test]
fn workspace_is_reusable_for_reanalysis() {
    // analyze is a pure function of the captured outputs: running it twice
    // gives identical results (replicability, §3.2).
    let benchpark = Benchpark::new();
    let mut ws = benchpark
        .setup_workspace("lulesh", "openmp", "cts1", temp_dir("reanalyze"))
        .unwrap();
    ws.run().unwrap();
    let a = ws.analyze(&benchpark).unwrap();
    let b = ws.analyze(&benchpark).unwrap();
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.experiment, rb.experiment);
        assert_eq!(ra.foms, rb.foms);
    }
}

#[test]
fn deterministic_end_to_end() {
    // the whole pipeline is reproducible: same FOM values on a fresh run
    let run = |tag: &str| {
        let benchpark = Benchpark::new();
        let mut ws = benchpark
            .setup_workspace("amg2023", "openmp", "cts1", temp_dir(tag))
            .unwrap();
        ws.run().unwrap();
        let analysis = ws.analyze(&benchpark).unwrap();
        analysis
            .results
            .iter()
            .flat_map(|r| {
                r.foms
                    .iter()
                    .map(|f| (r.experiment.clone(), f.name.clone(), f.value.clone()))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run("det-a"), run("det-b"));
}
