//! Property: sharded ledgers are observationally equivalent to one ledger.
//!
//! Any interleaving of per-tenant appends (FIFO within a tenant, arbitrary
//! across tenants) followed by merge-on-query yields exactly the records —
//! and exactly the `history` / `regress` verdicts — of a single-file ledger
//! holding the union in canonical shard order. A second test drains the
//! same requests through the in-process serve daemon at `--jobs 1` and
//! `--jobs 8` and asserts the merged views agree.

use benchpark::bench::synth_ledger_lines;
use benchpark::core::{
    append_run, load_ledger, scan_regressions, shard_path, RunRecord, ShardedLedger,
};
use benchpark::telemetry::TelemetrySink;
use proptest::prelude::*;
use std::path::PathBuf;

const TENANTS: [&str; 3] = ["alice", "bob", "carol"];

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("benchpark-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A compact, order-sensitive digest of what `benchpark history` would
/// print: one line per run in ledger order.
fn history_digest(runs: &[RunRecord]) -> String {
    runs.iter()
        .map(|run| {
            format!(
                "#{} {}/{} on {} {}/{} ok\n",
                run.sequence,
                run.benchmark,
                run.variant,
                run.system,
                run.results.len() - run.failed_experiments(),
                run.results.len()
            )
        })
        .collect()
}

/// The full regression-scan verdict, rendered — byte-equal verdicts mean
/// `benchpark regress` prints the same thing and exits the same way.
fn regress_digest(load: &benchpark::core::LedgerLoad) -> String {
    let db = load.to_database();
    scan_regressions(&db, 0.05)
        .iter()
        .map(|report| format!("{}\n", report.render()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every tenant assignment and every cross-tenant interleaving of
    /// the append stream, the merged shard view equals a single-file ledger
    /// over the canonical union — same records, same history lines, same
    /// regression verdicts.
    #[test]
    fn interleaved_shard_appends_match_single_ledger(
        assignment in proptest::collection::vec(0usize..3, 6..20),
        picks in proptest::collection::vec(0usize..3, 32),
    ) {
        let n = assignment.len();
        let records: Vec<RunRecord> = synth_ledger_lines(n)
            .iter()
            .map(|line| RunRecord::parse_line(line).expect("synthetic line parses"))
            .collect();

        // per-tenant FIFO queues in submission order
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); TENANTS.len()];
        for (i, &tenant) in assignment.iter().enumerate() {
            queues[tenant].push(i);
        }

        // an arbitrary interleaving that preserves each tenant's FIFO order
        let mut cursors = vec![0usize; TENANTS.len()];
        let mut interleaved: Vec<(usize, usize)> = Vec::with_capacity(n); // (tenant, record)
        let mut pick_at = 0usize;
        while interleaved.len() < n {
            let nonempty: Vec<usize> = (0..TENANTS.len())
                .filter(|&t| cursors[t] < queues[t].len())
                .collect();
            let t = nonempty[picks[pick_at % picks.len()] % nonempty.len()];
            pick_at += 1;
            interleaved.push((t, queues[t][cursors[t]]));
            cursors[t] += 1;
        }

        let base = temp_base("prop");
        let shard_root = base.join("ledger");
        for &(tenant, idx) in &interleaved {
            let path = shard_path(&shard_root, TENANTS[tenant], &records[idx].system);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            let mut record = records[idx].clone();
            append_run(&path, &mut record).expect("shard append succeeds");
        }

        // canonical union: tenant-sorted, then system-sorted, then FIFO —
        // exactly the order merge-on-query promises
        let mut canonical: Vec<(usize, String, usize)> = interleaved
            .iter()
            .map(|&(tenant, idx)| (tenant, records[idx].system.clone(), idx))
            .collect();
        canonical.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let single = base.join("single.jsonl");
        for &(_, _, idx) in &canonical {
            let mut record = records[idx].clone();
            append_run(&single, &mut record).expect("single append succeeds");
        }

        let sink = TelemetrySink::noop();
        let sharded = ShardedLedger::load(&shard_root, &sink).expect("shards load");
        let reference = load_ledger(&single, &sink).expect("single ledger loads");

        prop_assert_eq!(sharded.merged.skipped, 0);
        prop_assert_eq!(reference.skipped, 0);
        let merged_lines: Vec<String> =
            sharded.merged.runs.iter().map(|r| r.to_json_line()).collect();
        let single_lines: Vec<String> =
            reference.runs.iter().map(|r| r.to_json_line()).collect();
        prop_assert_eq!(merged_lines, single_lines);
        prop_assert_eq!(
            history_digest(&sharded.merged.runs),
            history_digest(&reference.runs)
        );
        prop_assert_eq!(regress_digest(&sharded.merged), regress_digest(&reference));

        let _ = std::fs::remove_dir_all(&base);
    }
}

/// The in-process daemon drains the same replay at `--jobs 1` and
/// `--jobs 8` into separate roots: the merged history and regression
/// verdicts over the resulting shards agree, and the per-tenant FOM
/// transcripts are byte-identical.
#[test]
fn serve_drain_verdicts_agree_across_jobs() {
    use benchpark::serve::{ServeConfig, ServeDaemon};

    let base = temp_base("serve-jobs");
    let mut replay = String::new();
    for i in 0..24 {
        let tenant = TENANTS[i % TENANTS.len()];
        let system = ["cts1", "ats2"][(i / 3) % 2];
        replay.push_str(&format!("{tenant} saxpy/openmp {system}\n"));
    }

    let mut digests = Vec::new();
    for jobs in [1usize, 8] {
        let root = base.join(format!("jobs{jobs}"));
        let mut config = ServeConfig::new(&root);
        config.jobs = jobs;
        let mut daemon = ServeDaemon::new(config).expect("daemon boots");
        daemon.intake_text(&replay, &root);
        daemon.drain().expect("drain succeeds");
        let report = daemon.report();
        assert_eq!(report.completed, 24, "all requests complete at jobs={jobs}");
        assert_eq!(report.rejected, 0);

        let sink = TelemetrySink::noop();
        let sharded = ShardedLedger::load(&root.join("ledger"), &sink).expect("shards load");
        let foms: Vec<(String, String)> = TENANTS
            .iter()
            .map(|tenant| {
                let path = root.join("foms").join(format!("{tenant}.txt"));
                (
                    tenant.to_string(),
                    std::fs::read_to_string(path).expect("transcript exists"),
                )
            })
            .collect();
        digests.push((
            history_digest(&sharded.merged.runs),
            regress_digest(&sharded.merged),
            foms,
        ));
    }
    assert_eq!(digests[0].0, digests[1].0, "history verdicts differ");
    assert_eq!(digests[0].1, digests[1].1, "regress verdicts differ");
    assert_eq!(digests[0].2, digests[1].2, "FOM transcripts differ");
}
