//! # benchpark
//!
//! A Rust reproduction of **Benchpark** — the collaborative continuous
//! benchmarking system for HPC described in *Towards Collaborative Continuous
//! Benchmarking for HPC* (Pearce et al., SC-W 2023).
//!
//! This facade crate re-exports every subsystem so downstream users can depend
//! on a single crate:
//!
//! * [`yamlite`] — YAML-subset configuration parser/emitter.
//! * [`rex`] — regex engine with named groups for figure-of-merit extraction.
//! * [`archspec`] — microarchitecture taxonomy and compiler-flag selection.
//! * [`spec`] — package spec syntax and constraint algebra (Spack-style).
//! * [`pkg`] — package and application recipe repository.
//! * [`concretizer`] — abstract-to-concrete spec resolution.
//! * [`spack`] — configuration scopes, environments, install engine, binary cache.
//! * [`ramble`] — experimentation framework (workspaces, matrices, FOMs).
//! * [`cluster`] — simulated HPC systems, scheduler, and execution engine.
//! * [`perf`] — Caliper/Thicket/Extra-P-style performance analysis.
//! * [`ci`] — continuous-integration substrate (git, Hubcast, Jacamar, pipelines).
//! * [`lint`] — cross-artifact static analysis with rustc-style diagnostics.
//! * [`telemetry`] — pipeline self-instrumentation (spans, counters, event journal).
//! * [`obs`] — telemetry exporters: Chrome trace JSON, folded flamegraphs,
//!   Prometheus text exposition.
//! * [`resilience`] — retry policies, circuit breakers, and seeded fault injection.
//! * [`core`] — the Benchpark driver: systems, suites, metrics database, reports.
//! * [`serve`] — the multi-tenant service: submission queue, deficit
//!   round-robin scheduler, admission control, sharded ledgers
//!   (see `docs/SERVICE.md`).
//! * [`mod@bench`] — the hot-path suite behind `benchpark bench` and the
//!   `BENCH_<date>.json` trajectory (see `docs/perf/methodology.md`).
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use benchpark_archspec as archspec;
pub use benchpark_bench as bench;
pub use benchpark_ci as ci;
pub use benchpark_cluster as cluster;
pub use benchpark_concretizer as concretizer;
pub use benchpark_core as core;
pub use benchpark_lint as lint;
pub use benchpark_obs as obs;
pub use benchpark_perf as perf;
pub use benchpark_pkg as pkg;
pub use benchpark_ramble as ramble;
pub use benchpark_resilience as resilience;
pub use benchpark_rex as rex;
pub use benchpark_serve as serve;
pub use benchpark_spack as spack;
pub use benchpark_spec as spec;
pub use benchpark_telemetry as telemetry;
pub use benchpark_yamlite as yamlite;
