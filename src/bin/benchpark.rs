//! The `benchpark` command-line driver (paper Figure 1a, `bin/benchpark`;
//! Figure 1c step 2: `/bin/benchpark $experiment $system $workspace_dir`).
//!
//! ```text
//! benchpark list systems                 # available system profiles
//! benchpark list experiments             # available benchmark/variant pairs
//! benchpark tree                         # Figure 1a directory structure
//! benchpark table1                       # Table 1, regenerated
//! benchpark skeleton <dir>               # write the repository skeleton
//! benchpark setup <bench>/<variant> <system> <dir>   # steps 1–7
//! benchpark run   <bench>/<variant> <system> <dir>   # steps 1–9 + results
//! benchpark fig14 [linear|tree|sag]      # the Figure 14 scaling study
//! benchpark trace <bench>/<variant> <system> <dir> [--faults] [--jobs N]
//!                 [--export <dir>] [--format json] [--allow-failed]  # run + telemetry report
//! benchpark history <ledger.jsonl>       # replay a persisted run ledger
//! benchpark regress <ledger.jsonl> [--threshold P]  # cross-run regression scan
//! benchpark regress --bench <BENCH.json>... [--threshold P]  # bench-trajectory gate
//! benchpark bench [--quick] [--out PATH]  # run the hot-path suite, emit BENCH json
//! benchpark lint [paths...] [--deny warnings] [--format json]  # static analysis
//! ```

use benchpark::cluster::BcastAlgorithm;
use benchpark::core::{
    append_run, available_experiments, gate_failed_experiments, load_ledger, render_table1,
    render_tree, scaling, scan_regressions, write_skeleton, Benchpark, MetricsDatabase, RunRecord,
    SystemProfile,
};
use benchpark::telemetry::TelemetrySink;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(args.get(1).map(String::as_str)),
        Some("tree") => {
            print!("{}", render_tree());
            Ok(())
        }
        Some("table1") => {
            print!("{}", render_table1());
            Ok(())
        }
        Some("skeleton") => cmd_skeleton(args.get(1)),
        Some("setup") => cmd_workspace(&args[1..], false),
        Some("run") => cmd_workspace(&args[1..], true),
        Some("fig14") => cmd_fig14(args.get(1).map(String::as_str)),
        Some("trace") => cmd_trace(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("regress") => cmd_regress(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("fingerprints") => cmd_fingerprints(&args[1..]),
        Some("template") => cmd_template(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        _ => {
            eprintln!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("benchpark: error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  benchpark list systems|experiments
  benchpark tree
  benchpark table1
  benchpark skeleton <dir>
  benchpark setup <benchmark>/<variant> <system> <workspace_dir>
  benchpark run   <benchmark>/<variant> <system> <workspace_dir>
  benchpark fig14 [linear|tree|sag]
  benchpark trace <benchmark>/<variant> <system> <workspace_dir>
                  [--faults] [--jobs N] [--export <dir>] [--ledger <path>] [--force]
                  [--template <file>] [--format text|json] [--allow-failed]
  benchpark history <ledger.jsonl>
  benchpark regress <ledger.jsonl> [--threshold P]
  benchpark regress --bench <BENCH.json>... [--threshold P] [--absolute]
  benchpark bench [--quick] [--samples N] [--filter SUBSTR] [--out PATH] [--list]
  benchpark fingerprints <ledger.jsonl>
  benchpark template <benchmark>/<variant>
  benchpark lint [paths...] [--deny warnings] [--format text|json]

options:
  --faults   (trace) strike the run with a seeded transient-fault plan
  --jobs N   (trace) number of execution-engine workers for package installs
             (default 4; outcomes are byte-identical for any N >= 1)
  --export DIR      (trace) write trace.json (canonical Chrome trace),
                    trace.wall.json, flame.folded, metrics.prom into DIR and
                    append the run to DIR/ledger.jsonl
  --ledger PATH     (trace) consult PATH for cached experiment results by
                    content fingerprint and skip re-executing hits (defaults
                    to DIR/ledger.jsonl when --export DIR is given)
  --force           (trace) re-execute experiments even on fingerprint hits
  --template FILE   (trace) use FILE as the ramble.yaml experiment template
                    instead of the built-in one (see `benchpark template`)
  --allow-failed    (trace) exit 0 even when experiments failed
  --threshold P     (regress) relative regression threshold (default 0.05;
                    0.10 with --bench)
  --bench           (regress) compare BENCH_*.json reports (chronological
                    order; the last file is gated against the earlier ones)
                    instead of a FOM ledger. Reports are speed-calibrated:
                    each is normalized by its geometric-mean median over
                    the shared benches, so a uniformly slower machine does
                    not flag everything — only benches that moved relative
                    to the rest of the suite
  --absolute        (regress --bench) skip speed calibration and compare
                    raw medians (same-machine A/B runs)
  --quick           (bench) 3 timed samples instead of 7 (same workload
                    sizes, so medians stay comparable — for local
                    iteration; gates want the full 7 samples)
  --samples N       (bench) explicit timed sample count (minimum 2)
  --filter SUBSTR   (bench) run only benches whose name contains SUBSTR
  --out PATH        (bench) write the report to PATH (a directory gets the
                    conventional BENCH_<date>.json name inside it)
  --list            (bench) list bench names and exit without measuring
  --deny warnings   (lint) treat warnings as errors for the exit code
  --format FMT      (trace, lint) output format: text (default) or json";

fn cmd_list(what: Option<&str>) -> Result<(), String> {
    match what {
        Some("systems") => {
            for profile in SystemProfile::all() {
                let machine = profile.machine();
                println!(
                    "{:<9} {:<52} {:>5} nodes  target={}",
                    profile.name,
                    machine.description,
                    machine.nodes,
                    machine.target().name
                );
            }
            Ok(())
        }
        Some("experiments") => {
            for (benchmark, variant) in available_experiments() {
                println!("{benchmark}/{variant}");
            }
            Ok(())
        }
        _ => Err("expected `list systems` or `list experiments`".to_string()),
    }
}

fn cmd_skeleton(dir: Option<&String>) -> Result<(), String> {
    let dir = dir.ok_or("skeleton needs a target directory")?;
    write_skeleton(dir).map_err(|e| e.to_string())?;
    println!("wrote Benchpark repository skeleton to {dir}");
    Ok(())
}

fn cmd_workspace(args: &[String], run: bool) -> Result<(), String> {
    let [experiment, system, workspace_dir] = args else {
        return Err("expected <benchmark>/<variant> <system> <workspace_dir>".to_string());
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;

    let benchpark = Benchpark::new();
    let mut ws = benchpark.setup_workspace(benchmark, variant, system, workspace_dir)?;
    println!("{}", ws.log.render());
    println!(
        "\n{} experiments rendered under {}/experiments/",
        ws.setup_report.experiments.len(),
        workspace_dir
    );
    if !run {
        for exp in &ws.setup_report.experiments {
            println!("  {}", exp.name);
        }
        return Ok(());
    }

    ws.run().map_err(|e| e.to_string())?;
    let analysis = ws.analyze(&benchpark).map_err(|e| e.to_string())?;
    println!("\n{}", analysis.render());
    let db = MetricsDatabase::new();
    db.record(
        system,
        benchmark,
        variant,
        &ws.manifest(),
        &analysis.results,
    );
    print!("{}", db.render_dashboard());
    Ok(())
}

/// Runs the full setup → run → analyze pipeline with a recording telemetry
/// sink and prints the span tree, counters, and observations. With
/// `--faults`, a seeded transient-fault plan (flaky binary-cache fetches
/// plus one mid-run node failure) strikes the pipeline; the resilience
/// counters (`retry.attempts`, `cache.breaker.trips`, `sched.requeued`)
/// appear in the report. `--jobs N` sets the execution-engine worker
/// count for package installs; the engine guarantees the reports are
/// byte-identical for any `N`, so this only changes wall-clock behaviour.
///
/// `--export DIR` additionally writes the observability bundle (canonical +
/// wall Chrome traces, folded flamegraph, Prometheus text) into `DIR` and
/// appends the run to `DIR/ledger.jsonl` for later `benchpark history` /
/// `benchpark regress`. `--format json` prints the full report as one JSON
/// document instead of the text rendering. Unless `--allow-failed` is given,
/// the command exits non-zero when any experiment did not succeed (after
/// exporting, so failed runs still leave artifacts to debug).
///
/// Incremental re-benchmarking: when a run ledger is available — `--ledger
/// PATH`, or `DIR/ledger.jsonl` implied by `--export DIR` — each generated
/// experiment's content-addressed fingerprint is looked up in it, and
/// experiments with a valid successful record are *not* re-executed; their
/// stored FOMs and criteria are spliced into the report, marked `[cached]`.
/// Any input change (template, system config, application definition,
/// concrete spec, experiment variables) changes the fingerprint, so nothing
/// stale is ever reused. `--force` re-executes hits anyway (and appends the
/// fresh results). Only freshly executed experiments are appended to the
/// ledger — spliced results never re-enter it. `--template FILE` substitutes
/// a user-supplied `ramble.yaml` for the built-in experiment template (the
/// §4 path; pairs with `benchpark template` to dump a starting point).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use benchpark::core::FingerprintIndex;
    use benchpark::ramble::{AnalyzeReport, ExperimentResult};
    use std::path::PathBuf;

    let mut faults = false;
    let mut jobs: Option<usize> = None;
    let mut export: Option<String> = None;
    let mut format = "text".to_string();
    let mut allow_failed = false;
    let mut ledger_path: Option<String> = None;
    let mut force = false;
    let mut template_file: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--faults" => faults = true,
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a value")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got `{value}`"))?;
                if parsed == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(parsed);
            }
            "--export" => {
                let dir = iter.next().ok_or("--export needs a directory")?;
                export = Some(dir.clone());
            }
            "--format" => {
                let fmt = iter.next().ok_or("--format needs a value (text|json)")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("unknown format `{fmt}` (text|json)"));
                }
                format = fmt.clone();
            }
            "--allow-failed" => allow_failed = true,
            "--ledger" => {
                let path = iter.next().ok_or("--ledger needs a path")?;
                ledger_path = Some(path.clone());
            }
            "--force" => force = true,
            "--template" => {
                let path = iter.next().ok_or("--template needs a file")?;
                template_file = Some(path.clone());
            }
            _ => positional.push(arg),
        }
    }
    let [experiment, system, workspace_dir] = positional.as_slice() else {
        return Err(
            "expected <benchmark>/<variant> <system> <workspace_dir> [--faults] [--jobs N] \
             [--export <dir>] [--ledger <path>] [--force] [--template <file>] \
             [--format text|json] [--allow-failed]"
                .to_string(),
        );
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;

    let sink = TelemetrySink::recording();
    let mut benchpark = Benchpark::new().with_telemetry(sink.clone());
    if let Some(jobs) = jobs {
        benchpark = benchpark.with_jobs(jobs);
    }
    if faults {
        use benchpark::cluster::{FaultPlan, TransientFault};
        // all nodes but one die mid-drain: every running job beyond the
        // first is preempted and must requeue onto the lone survivor
        let nodes = SystemProfile::by_name(system)
            .ok_or_else(|| format!("unknown system `{system}`"))?
            .machine()
            .nodes
            .saturating_sub(1);
        benchpark = benchpark.with_fault_plan(
            FaultPlan::new(2023)
                .with(TransientFault::FlakyCacheFetch { rate: 1.0 })
                .with(TransientFault::NodeFailureAt { at_s: 0.25, nodes })
                .with_budget(12),
        );
        println!("fault plan active: flaky cache fetches + {nodes}-node failure at t=0.25s\n");
    }

    // a --ledger path wins; --export DIR implies DIR/ledger.jsonl
    let ledger_file: Option<PathBuf> = ledger_path.map(PathBuf::from).or_else(|| {
        export
            .as_ref()
            .map(|dir| Path::new(dir).join("ledger.jsonl"))
    });
    let index: Option<FingerprintIndex> = match &ledger_file {
        Some(path) if path.exists() => {
            let load = load_ledger(path, &sink)?;
            Some(FingerprintIndex::from_ledger(&load))
        }
        _ => None,
    };

    let mut ws = match &template_file {
        Some(path) => {
            let template = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read template `{path}`: {e}"))?;
            benchpark.setup_workspace_from_template(
                benchmark,
                variant,
                &template,
                system,
                workspace_dir,
                None,
                &[],
            )?
        }
        None => benchpark.setup_workspace(benchmark, variant, system, workspace_dir)?,
    };

    let plan = index.as_ref().map(|idx| ws.plan_incremental(idx, force));
    let executed: Vec<ExperimentResult> = if plan
        .as_ref()
        .is_some_and(benchpark::core::IncrementalPlan::all_cached)
    {
        Vec::new()
    } else {
        ws.run().map_err(|e| e.to_string())?;
        ws.analyze(&benchpark).map_err(|e| e.to_string())?.results
    };
    let results: Vec<ExperimentResult> = match &plan {
        Some(plan) => plan.splice(executed.clone()),
        None => executed.clone(),
    };

    let db = MetricsDatabase::new();
    db.record(system, benchmark, variant, &ws.manifest(), &results);
    let report = sink.report().expect("recording sink has a report");
    db.record_telemetry(system, &report);

    if let Some(dir) = &export {
        let dir = Path::new(dir);
        let mut written = benchpark::obs::export_all(&report, dir)?;
        let all_fingerprints: Vec<(String, String)> = ws
            .fingerprints
            .iter()
            .map(|(name, fp)| (name.clone(), fp.hex()))
            .collect();
        written.push(benchpark::obs::export_results(
            &results,
            &all_fingerprints,
            dir,
        )?);
        let ledger = dir.join("ledger.jsonl");
        if executed.is_empty() && plan.is_some() {
            eprintln!(
                "exported {} into {}; every experiment was cached — {} unchanged",
                written.join(", "),
                dir.display(),
                ledger.display()
            );
        } else {
            // the ledger is a measurement log: only freshly executed
            // results are appended, each stamped with its fingerprint
            let fingerprints: Vec<(String, String)> = ws
                .fingerprints
                .iter()
                .filter(|(name, _)| executed.iter().any(|r| &r.experiment == *name))
                .map(|(name, fp)| (name.clone(), fp.hex()))
                .collect();
            let mut record = RunRecord::from_run(
                system,
                benchmark,
                variant,
                &ws.manifest(),
                &executed,
                Some(&report),
            )
            .with_fingerprints(fingerprints);
            let sequence = append_run(&ledger, &mut record)?;
            eprintln!(
                "exported {} into {} and appended run #{sequence} to {}",
                written.join(", "),
                dir.display(),
                ledger.display()
            );
        }
    }

    if format == "json" {
        println!("{}", benchpark::obs::report_to_json(&report));
    } else {
        let rendered = AnalyzeReport {
            results: results.clone(),
        };
        print!("{}", rendered.render());
        if let Some(plan) = &plan {
            println!("{}", plan.summary());
        }
        println!();
        print!("{}", report.render());
        println!(
            "\nrecorded {} telemetry FOMs into the metrics database alongside {} benchmark results",
            report.counters.len() + report.observations.len(),
            results.len()
        );
    }
    gate_failed_experiments(&results, allow_failed)
}

/// `benchpark fingerprints <ledger.jsonl>` — lists every cached experiment
/// the ledger can satisfy: fingerprint, run sequence, provenance, and
/// status. This is exactly the index `benchpark trace --ledger` consults, so
/// it answers "what would a re-run skip?".
fn cmd_fingerprints(args: &[String]) -> Result<(), String> {
    use benchpark::core::FingerprintIndex;
    let [ledger] = args else {
        return Err("expected <ledger.jsonl>".to_string());
    };
    let sink = TelemetrySink::noop();
    let load = load_ledger(Path::new(ledger), &sink)?;
    let index = FingerprintIndex::from_ledger(&load);
    if index.is_empty() {
        println!("no reusable experiment records (run `benchpark trace --export` first)");
        return Ok(());
    }
    for entry in index.iter() {
        println!(
            "{}  #{:<3} {}/{} on {:<9} {}",
            entry.fingerprint,
            entry.sequence,
            entry.benchmark,
            entry.variant,
            entry.system,
            entry.result.experiment
        );
    }
    println!(
        "{} reusable experiment record(s) across {} run(s)",
        index.len(),
        load.runs.len()
    );
    Ok(())
}

/// `benchpark template <benchmark>/<variant>` — dumps the built-in
/// `ramble.yaml` experiment template to stdout. Redirect it to a file, edit,
/// and feed it back with `benchpark trace --template FILE`: the edit changes
/// every affected experiment's fingerprint, so exactly those experiments
/// re-run.
fn cmd_template(args: &[String]) -> Result<(), String> {
    use benchpark::core::experiment_template;
    let [experiment] = args else {
        return Err("expected <benchmark>/<variant>".to_string());
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;
    let template = experiment_template(benchmark, variant)
        .ok_or_else(|| format!("unknown experiment `{benchmark}/{variant}`"))?;
    print!("{template}");
    Ok(())
}

/// `benchpark history <ledger.jsonl>` — lists every persisted run: sequence,
/// experiment provenance, success counts, and the resilience counters that
/// explain *why* a run was slow or partial. Corrupt ledger lines are skipped
/// and tallied, never fatal.
fn cmd_history(args: &[String]) -> Result<(), String> {
    let [ledger] = args else {
        return Err("expected <ledger.jsonl>".to_string());
    };
    let sink = TelemetrySink::noop();
    let load = load_ledger(Path::new(ledger), &sink)?;
    if load.runs.is_empty() && load.skipped == 0 {
        println!("ledger is empty");
        return Ok(());
    }
    for run in &load.runs {
        let total = run.results.len();
        let ok = total - run.failed_experiments();
        let mut notes = Vec::new();
        for counter in ["retry.attempts", "sched.requeued", "cache.breaker.trips"] {
            let value = run.counter(counter);
            if value > 0 {
                notes.push(format!("{counter}={value}"));
            }
        }
        let notes = if notes.is_empty() {
            String::new()
        } else {
            format!("  [{}]", notes.join(" "))
        };
        println!(
            "#{:<3} {}/{} on {:<9} {:>2}/{} experiments ok{}",
            run.sequence, run.benchmark, run.variant, run.system, ok, total, notes
        );
    }
    if load.skipped > 0 {
        println!(
            "({} corrupt or unknown-schema line(s) skipped)",
            load.skipped
        );
    }
    Ok(())
}

/// `benchpark regress <ledger.jsonl> [--threshold P]` — replays the ledger
/// into a metrics database and scans every (benchmark, system, FOM) triple
/// for regressions, directions inferred from FOM units. Exits non-zero when
/// any triple regressed.
///
/// `benchpark regress --bench <BENCH.json>... [--threshold P]` — the same
/// statistical gate applied to the repository's own bench trajectory: the
/// files are a chronological series of `benchpark bench` reports, and the
/// last one is compared against the medians of all the earlier ones. The
/// default threshold is coarser (10%) because bench wall-clock numbers cross
/// machines in CI; see `docs/perf/methodology.md`.
fn cmd_regress(args: &[String]) -> Result<(), String> {
    let mut threshold: Option<f64> = None;
    let mut bench_mode = false;
    let mut absolute = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().ok_or("--threshold needs a value")?;
                threshold = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--threshold expects a number, got `{value}`"))?,
                );
            }
            "--bench" => bench_mode = true,
            "--absolute" => absolute = true,
            _ => positional.push(arg),
        }
    }
    if bench_mode {
        return cmd_regress_bench(&positional, threshold.unwrap_or(0.10), absolute);
    }
    if absolute {
        return Err("--absolute only applies to --bench trajectories".to_string());
    }
    let threshold = threshold.unwrap_or(0.05);
    let [ledger] = positional.as_slice() else {
        return Err("expected <ledger.jsonl> [--threshold P]".to_string());
    };
    let sink = TelemetrySink::recording();
    let load = load_ledger(Path::new(ledger), &sink)?;
    if load.skipped > 0 {
        eprintln!(
            "warning: skipped {} corrupt or unknown-schema ledger line(s)",
            load.skipped
        );
    }
    if load.runs.is_empty() {
        return Err(format!("ledger `{ledger}` holds no readable runs"));
    }
    let db = load.to_database();
    let reports = scan_regressions(&db, threshold);
    if reports.is_empty() {
        println!(
            "no FOM has enough history for a verdict ({} run(s) loaded; need >= 3 with successes)",
            load.runs.len()
        );
        return Ok(());
    }
    let mut regressed = 0usize;
    for report in &reports {
        println!("{}", report.render());
        if report.regressed {
            regressed += 1;
        }
    }
    if regressed > 0 {
        Err(format!(
            "{regressed} of {} FOM histories regressed beyond {:.0}%",
            reports.len(),
            threshold * 100.0
        ))
    } else {
        println!(
            "\nall {} FOM histories within {:.0}% of baseline",
            reports.len(),
            threshold * 100.0
        );
        Ok(())
    }
}

/// The `--bench` arm of [`cmd_regress`]: parses each file as a
/// [`benchpark::core::BenchReport`], compares the last against the earlier
/// ones, prints one verdict per bench, and exits non-zero when any bench
/// regressed beyond the threshold *and* the 2σ noise band.
fn cmd_regress_bench(files: &[&String], threshold: f64, absolute: bool) -> Result<(), String> {
    use benchpark::core::{
        calibration_speed_factor, compare_bench_reports, compare_bench_reports_calibrated,
        BenchReport,
    };
    if files.len() < 2 {
        return Err(
            "expected at least two BENCH_*.json files in chronological order (baseline... latest)"
                .to_string(),
        );
    }
    let mut reports = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read bench report `{file}`: {e}"))?;
        let report =
            BenchReport::parse(&text).map_err(|e| format!("bench report `{file}`: {e}"))?;
        reports.push(report);
    }
    let refs: Vec<&BenchReport> = reports.iter().collect();
    let comparisons = if absolute {
        compare_bench_reports(&refs, threshold)
    } else {
        compare_bench_reports_calibrated(&refs, threshold)
    };
    if !absolute {
        match calibration_speed_factor(&refs) {
            Some(factor) => println!(
                "machine speed vs baseline: {factor:.2}x (geometric mean over shared benches; \
                 uniform shifts are calibrated out — pass --absolute to compare raw numbers)"
            ),
            None => println!(
                "trajectory not calibratable (fewer than two shared benches); comparing raw numbers"
            ),
        }
    }
    if comparisons.is_empty() {
        println!(
            "no bench in the latest report has a baseline sighting across {} earlier report(s)",
            reports.len() - 1
        );
        return Ok(());
    }
    let mut regressed = 0usize;
    let mut improved = 0usize;
    for comparison in &comparisons {
        println!("{}", comparison.render());
        if comparison.regressed {
            regressed += 1;
        }
        if comparison.improved {
            improved += 1;
        }
    }
    let fresh = reports
        .last()
        .map(|r| r.results.len() - comparisons.len())
        .unwrap_or(0);
    if fresh > 0 {
        println!("({fresh} bench(es) have no baseline yet and were skipped)");
    }
    if regressed > 0 {
        Err(format!(
            "{regressed} of {} bench trajectories regressed beyond {:.0}%",
            comparisons.len(),
            threshold * 100.0
        ))
    } else {
        println!(
            "\nall {} bench trajectories within {:.0}% of baseline ({improved} improved)",
            comparisons.len(),
            threshold * 100.0
        );
        Ok(())
    }
}

/// `benchpark bench` — runs the deterministic hot-path suite and emits the
/// schema-versioned BENCH report (`docs/perf/methodology.md`). Without
/// `--out` the JSON goes to stdout (progress lines go to stderr, so
/// redirection captures a clean document); with `--out PATH` the report is
/// written there, and a `PATH` that is a directory gets the conventional
/// `BENCH_<date>.json` name inside it.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    use benchpark::bench::{run_suite, suite_names, Scale, SuiteConfig};
    let mut config = SuiteConfig::full(benchpark::core::today_utc());
    let mut out: Option<String> = None;
    let mut list = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config.samples = 3,
            "--samples" => {
                let value = iter.next().ok_or("--samples needs a value")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("--samples expects a positive integer, got `{value}`"))?;
                if parsed < 2 {
                    return Err("--samples must be at least 2".to_string());
                }
                config.samples = parsed;
            }
            "--filter" => {
                let value = iter.next().ok_or("--filter needs a substring")?;
                config.filter = Some(value.clone());
            }
            "--out" => {
                let path = iter.next().ok_or("--out needs a path")?;
                out = Some(path.clone());
            }
            "--list" => list = true,
            other => return Err(format!("unknown bench argument `{other}`")),
        }
    }
    if list {
        for name in suite_names(Scale::Full) {
            println!("{name}");
        }
        return Ok(());
    }
    if cfg!(debug_assertions) {
        eprintln!(
            "warning: debug build — numbers are not comparable with the committed trajectory"
        );
    }
    eprintln!(
        "running hot-path suite ({} samples per bench){}",
        config.samples,
        config
            .filter
            .as_deref()
            .map(|f| format!(", filter `{f}`"))
            .unwrap_or_default()
    );
    let report = run_suite(&config, |line| eprintln!("  {line}"));
    if report.results.is_empty() {
        return Err("filter matched no benches (try `benchpark bench --list`)".to_string());
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            let path = Path::new(&path);
            let target = if path.is_dir() {
                path.join(report.file_name())
            } else {
                path.to_path_buf()
            };
            if let Some(parent) = target.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
            }
            std::fs::write(&target, &json)
                .map_err(|e| format!("cannot write `{}`: {e}", target.display()))?;
            eprintln!(
                "wrote {} ({} benches) to {}",
                report.file_name(),
                report.results.len(),
                target.display()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// `benchpark lint [paths...] [--deny warnings] [--format text|json]` —
/// cross-artifact static analysis. Each directory of YAML artifacts is linted
/// as one composed set (so cross-file references resolve); files named
/// directly form one set of their own. Exits non-zero when errors (or, under
/// `--deny warnings`, warnings) are found.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    use benchpark::lint::{ArtifactSet, LintReport, Linter};
    use std::path::{Path, PathBuf};

    let mut deny_warnings = false;
    let mut format = "text".to_string();
    let mut paths: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--deny" => {
                let what = iter.next().ok_or("--deny needs a value (warnings)")?;
                if what != "warnings" {
                    return Err(format!("unknown --deny target `{what}` (only: warnings)"));
                }
                deny_warnings = true;
            }
            "--format" => {
                let fmt = iter.next().ok_or("--format needs a value (text|json)")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("unknown format `{fmt}` (text|json)"));
                }
                format = fmt.clone();
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        paths.push("examples".to_string());
    }

    fn is_yaml(path: &Path) -> bool {
        matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("yaml") | Some("yml")
        )
    }
    fn walk(path: &Path, found: &mut Vec<PathBuf>) -> Result<(), String> {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for entry in entries {
                walk(&entry, found)?;
            }
        } else if is_yaml(path) {
            found.push(path.to_path_buf());
        }
        Ok(())
    }

    // group artifacts by directory: one directory = one composed set
    let mut loose: Vec<PathBuf> = Vec::new();
    let mut files: Vec<PathBuf> = Vec::new();
    for path in &paths {
        let path = Path::new(path);
        if !path.exists() {
            return Err(format!("no such path `{}`", path.display()));
        }
        if path.is_dir() {
            walk(path, &mut files)?;
        } else {
            loose.push(path.to_path_buf());
        }
    }
    let mut groups: Vec<(PathBuf, Vec<PathBuf>)> = Vec::new();
    for file in files {
        let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
        match groups.iter_mut().find(|(d, _)| *d == dir) {
            Some((_, members)) => members.push(file),
            None => groups.push((dir, vec![file])),
        }
    }
    if !loose.is_empty() {
        groups.push((PathBuf::from("."), loose));
    }

    let linter = Linter::new();
    let mut report = LintReport::new();
    let mut scanned = 0usize;
    for (_, members) in &groups {
        let mut set = ArtifactSet::new();
        for file in members {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read `{}`: {e}", file.display()))?;
            set.add(&file.display().to_string(), &text);
            scanned += 1;
        }
        report.diagnostics.extend(linter.lint(&set).diagnostics);
    }
    report.finish();

    if format == "json" {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
        println!("({scanned} artifacts checked)");
    }
    if report.is_clean(deny_warnings) {
        Ok(())
    } else {
        Err(report.summary())
    }
}

fn cmd_fig14(algorithm: Option<&str>) -> Result<(), String> {
    let algorithm = match algorithm {
        None | Some("linear") => None,
        Some("tree") => Some(BcastAlgorithm::BinomialTree),
        Some("sag") => Some(BcastAlgorithm::ScatterAllgather),
        Some(other) => return Err(format!("unknown algorithm `{other}` (linear|tree|sag)")),
    };
    let dir = std::env::temp_dir().join("benchpark-cli-fig14");
    let _ = std::fs::remove_dir_all(&dir);
    let db = MetricsDatabase::new();
    let study = scaling::bcast_scaling_study("cts1", algorithm, dir, &db)?;
    print!("{}", study.render());
    Ok(())
}
