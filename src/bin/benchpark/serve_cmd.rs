//! Multi-tenant service subcommands: `serve`, `submit`, `drain`.
//!
//! No network dependency: requests arrive as a replay file (`serve
//! --replay FILE`) or through the spool at `<root>/queue` (`submit`
//! appends, `drain`/`serve` consume). See `docs/SERVICE.md` for the
//! queue/fairness/quota semantics and a replay walkthrough.

use benchpark::serve::{ExperimentRequest, ServeConfig, ServeDaemon, SloSpec};
use std::path::{Path, PathBuf};

struct ServeArgs {
    root: PathBuf,
    replay: Option<PathBuf>,
    config: ServeConfig,
    report_path: Option<PathBuf>,
    positional: Vec<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut root: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut queue = benchpark::serve::QueueConfig::default();
    let mut report_path: Option<PathBuf> = None;
    let mut slo: Option<SloSpec> = None;
    let mut status_out: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--slo" => {
                let file = iter.next().ok_or("--slo needs a file")?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read SLO file `{file}`: {e}"))?;
                // malformed targets are a CLI error, not a daemon one
                slo = Some(SloSpec::parse(&text)?);
            }
            "--status-out" => {
                let path = iter.next().ok_or("--status-out needs a path")?;
                status_out = Some(PathBuf::from(path));
            }
            "--root" => {
                let dir = iter.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--replay" => {
                let file = iter.next().ok_or("--replay needs a file")?;
                replay = Some(PathBuf::from(file));
            }
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a value")?;
                jobs = value
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got `{value}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--max-queued" => {
                let value = iter.next().ok_or("--max-queued needs a value")?;
                queue.max_queued_per_tenant = value.parse().map_err(|_| {
                    format!("--max-queued expects a positive integer, got `{value}`")
                })?;
            }
            "--global-queued" => {
                let value = iter.next().ok_or("--global-queued needs a value")?;
                queue.max_queued_global = value.parse().map_err(|_| {
                    format!("--global-queued expects a positive integer, got `{value}`")
                })?;
            }
            "--max-inflight" => {
                let value = iter.next().ok_or("--max-inflight needs a value")?;
                queue.max_inflight_per_tenant = value.parse().map_err(|_| {
                    format!("--max-inflight expects a positive integer, got `{value}`")
                })?;
            }
            "--quantum" => {
                let value = iter.next().ok_or("--quantum needs a value")?;
                queue.quantum = value
                    .parse()
                    .map_err(|_| format!("--quantum expects a positive integer, got `{value}`"))?;
            }
            "--report" => {
                let path = iter.next().ok_or("--report needs a path")?;
                report_path = Some(PathBuf::from(path));
            }
            other => positional.push(other.to_string()),
        }
    }
    let root = root.ok_or("--root DIR is required")?;
    let mut config = ServeConfig::new(&root);
    config.queue = queue;
    config.jobs = jobs;
    config.slo = slo;
    config.status_out = status_out;
    Ok(ServeArgs {
        root,
        replay,
        config,
        report_path,
        positional,
    })
}

fn run_daemon(parsed: ServeArgs) -> Result<(), String> {
    let spool = parsed.root.join("queue");
    let (text, base, from_spool) = match &parsed.replay {
        Some(file) => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read replay file `{}`: {e}", file.display()))?;
            let base = file
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .unwrap_or(Path::new("."))
                .to_path_buf();
            (text, base, false)
        }
        None => {
            let text = match std::fs::read_to_string(&spool) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(format!("cannot read spool `{}`: {e}", spool.display())),
            };
            (text, parsed.root.clone(), true)
        }
    };
    let mut daemon = ServeDaemon::new(parsed.config)?;
    daemon.intake_text(&text, &base);
    daemon.drain()?;
    if from_spool && spool.exists() {
        // the spool is consumed: every line was either completed or
        // rejected with a recorded reason
        std::fs::remove_file(&spool)
            .map_err(|e| format!("cannot consume spool `{}`: {e}", spool.display()))?;
    }
    let report = daemon.report();
    print!("{}", report.render());
    if let Some(path) = &parsed.report_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write report `{}`: {e}", path.display()))?;
        eprintln!("wrote throughput report to {}", path.display());
    }
    Ok(())
}

/// `benchpark serve --root DIR [--replay FILE]` — boots the daemon over the
/// root's ledger shards, intakes the replay file (or the spool), drains the
/// queue with per-tenant fairness, and prints the throughput report.
pub fn cmd_serve(args: &[String]) -> Result<(), String> {
    let parsed = parse_serve_args(args)?;
    if !parsed.positional.is_empty() {
        return Err(format!(
            "unexpected serve argument `{}`",
            parsed.positional[0]
        ));
    }
    run_daemon(parsed)
}

/// `benchpark drain --root DIR` — drains the spool at `<root>/queue`
/// (exactly `serve` without `--replay`).
pub fn cmd_drain(args: &[String]) -> Result<(), String> {
    let parsed = parse_serve_args(args)?;
    if !parsed.positional.is_empty() {
        return Err(format!(
            "unexpected drain argument `{}`",
            parsed.positional[0]
        ));
    }
    if parsed.replay.is_some() {
        return Err("drain reads the spool; use `serve --replay` for files".to_string());
    }
    run_daemon(parsed)
}

/// `benchpark submit --root DIR <tenant> <benchmark>/<variant> <system>
/// [faults] [template=PATH]` — validates the request line and appends it to
/// the spool at `<root>/queue` for a later `benchpark drain`.
pub fn cmd_submit(args: &[String]) -> Result<(), String> {
    let parsed = parse_serve_args(args)?;
    if parsed.replay.is_some() {
        return Err("--replay does not apply to submit".to_string());
    }
    let line = parsed.positional.join(" ");
    let request = ExperimentRequest::parse_line(&line)?
        .ok_or("expected <tenant> <benchmark>/<variant> <system> [faults] [template=PATH]")?;
    std::fs::create_dir_all(&parsed.root)
        .map_err(|e| format!("cannot create root `{}`: {e}", parsed.root.display()))?;
    let spool = parsed.root.join("queue");
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&spool)
        .map_err(|e| format!("cannot open spool `{}`: {e}", spool.display()))?;
    writeln!(file, "{}", request.to_line())
        .map_err(|e| format!("cannot append to spool `{}`: {e}", spool.display()))?;
    println!(
        "spooled {} for tenant {} (drain with `benchpark drain --root {}`)",
        request.to_line(),
        request.tenant,
        parsed.root.display()
    );
    Ok(())
}
