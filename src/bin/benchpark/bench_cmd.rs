//! `benchpark bench` — the deterministic hot-path suite.

use std::path::Path;

/// `benchpark bench` — runs the deterministic hot-path suite and emits the
/// schema-versioned BENCH report (`docs/perf/methodology.md`). Without
/// `--out` the JSON goes to stdout (progress lines go to stderr, so
/// redirection captures a clean document); with `--out PATH` the report is
/// written there, and a `PATH` that is a directory gets the conventional
/// `BENCH_<date>.json` name inside it.
pub fn cmd_bench(args: &[String]) -> Result<(), String> {
    use benchpark::bench::{run_suite, suite_names, Scale, SuiteConfig};
    let mut config = SuiteConfig::full(benchpark::core::today_utc());
    let mut out: Option<String> = None;
    let mut list = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config.samples = 3,
            "--samples" => {
                let value = iter.next().ok_or("--samples needs a value")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("--samples expects a positive integer, got `{value}`"))?;
                if parsed < 2 {
                    return Err("--samples must be at least 2".to_string());
                }
                config.samples = parsed;
            }
            "--filter" => {
                let value = iter.next().ok_or("--filter needs a substring")?;
                config.filter = Some(value.clone());
            }
            "--out" => {
                let path = iter.next().ok_or("--out needs a path")?;
                out = Some(path.clone());
            }
            "--list" => list = true,
            other => return Err(format!("unknown bench argument `{other}`")),
        }
    }
    if list {
        for name in suite_names(Scale::Full) {
            println!("{name}");
        }
        return Ok(());
    }
    if cfg!(debug_assertions) {
        eprintln!(
            "warning: debug build — numbers are not comparable with the committed trajectory"
        );
    }
    eprintln!(
        "running hot-path suite ({} samples per bench){}",
        config.samples,
        config
            .filter
            .as_deref()
            .map(|f| format!(", filter `{f}`"))
            .unwrap_or_default()
    );
    let report = run_suite(&config, |line| eprintln!("  {line}"));
    if report.results.is_empty() {
        return Err("filter matched no benches (try `benchpark bench --list`)".to_string());
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            let path = Path::new(&path);
            let target = if path.is_dir() {
                path.join(report.file_name())
            } else {
                path.to_path_buf()
            };
            if let Some(parent) = target.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
            }
            std::fs::write(&target, &json)
                .map_err(|e| format!("cannot write `{}`: {e}", target.display()))?;
            eprintln!(
                "wrote {} ({} benches) to {}",
                report.file_name(),
                report.results.len(),
                target.display()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}
