//! `benchpark lint` — cross-artifact static analysis.

/// `benchpark lint [paths...] [--deny warnings] [--solve] [--format
/// text|json]` — cross-artifact static analysis. Each directory of YAML
/// artifacts is linted as one composed set (so cross-file references
/// resolve); files named directly form one set of their own. `--solve` adds
/// the BP05xx rules: every spec in a set is dry-concretized against the
/// set's own site configuration. Exits non-zero when errors (or, under
/// `--deny warnings`, warnings) are found.
pub fn cmd_lint(args: &[String]) -> Result<(), String> {
    use benchpark::lint::{ArtifactSet, LintReport, Linter};
    use std::path::{Path, PathBuf};

    let mut deny_warnings = false;
    let mut solve = false;
    let mut format = "text".to_string();
    let mut paths: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--solve" => solve = true,
            "--deny" => {
                let what = iter.next().ok_or("--deny needs a value (warnings)")?;
                if what != "warnings" {
                    return Err(format!("unknown --deny target `{what}` (only: warnings)"));
                }
                deny_warnings = true;
            }
            "--format" => {
                let fmt = iter.next().ok_or("--format needs a value (text|json)")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("unknown format `{fmt}` (text|json)"));
                }
                format = fmt.clone();
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        paths.push("examples".to_string());
    }

    fn is_yaml(path: &Path) -> bool {
        matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("yaml") | Some("yml")
        )
    }
    fn walk(path: &Path, found: &mut Vec<PathBuf>) -> Result<(), String> {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for entry in entries {
                walk(&entry, found)?;
            }
        } else if is_yaml(path) {
            found.push(path.to_path_buf());
        }
        Ok(())
    }

    // group artifacts by directory: one directory = one composed set
    let mut loose: Vec<PathBuf> = Vec::new();
    let mut files: Vec<PathBuf> = Vec::new();
    for path in &paths {
        let path = Path::new(path);
        if !path.exists() {
            return Err(format!("no such path `{}`", path.display()));
        }
        if path.is_dir() {
            walk(path, &mut files)?;
        } else {
            loose.push(path.to_path_buf());
        }
    }
    let mut groups: Vec<(PathBuf, Vec<PathBuf>)> = Vec::new();
    for file in files {
        let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
        match groups.iter_mut().find(|(d, _)| *d == dir) {
            Some((_, members)) => members.push(file),
            None => groups.push((dir, vec![file])),
        }
    }
    if !loose.is_empty() {
        groups.push((PathBuf::from("."), loose));
    }

    let linter = Linter::new().with_solve(solve);
    let mut report = LintReport::new();
    let mut scanned = 0usize;
    for (_, members) in &groups {
        let mut set = ArtifactSet::new();
        for file in members {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read `{}`: {e}", file.display()))?;
            set.add(&file.display().to_string(), &text);
            scanned += 1;
        }
        report.diagnostics.extend(linter.lint(&set).diagnostics);
    }
    report.finish();

    if format == "json" {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
        println!("({scanned} artifacts checked)");
    }
    if report.is_clean(deny_warnings) {
        Ok(())
    } else {
        Err(report.summary())
    }
}
