//! Ledger-reading subcommands: `history`, `regress`, `fingerprints`.
//!
//! Each accepts either a single `ledger.jsonl` file or a directory of
//! per-tenant shards (a serve root, or its `ledger/` subdirectory): the
//! sharded case loads the merge-on-query view, so the same queries run
//! unchanged over the union of every tenant's runs.

use benchpark::core::{load_ledger, scan_regressions, LedgerLoad, ShardedLedger};
use benchpark::telemetry::TelemetrySink;
use std::path::Path;

/// Loads `path` as a single-file ledger, or — when it is a directory — as
/// the merged view over its shards. A serve root (containing a `ledger/`
/// subdirectory) is accepted directly.
fn load_merged(path: &Path, sink: &TelemetrySink) -> Result<LedgerLoad, String> {
    if path.is_dir() {
        let root = if path.join("ledger").is_dir() {
            path.join("ledger")
        } else {
            path.to_path_buf()
        };
        Ok(ShardedLedger::load(&root, sink)?.merged)
    } else {
        load_ledger(path, sink)
    }
}

/// `benchpark history <ledger.jsonl|shard-root>` — lists every persisted
/// run: sequence, experiment provenance, success counts, and the resilience
/// counters that explain *why* a run was slow or partial. Corrupt ledger
/// lines are skipped and tallied, never fatal.
pub fn cmd_history(args: &[String]) -> Result<(), String> {
    let [ledger] = args else {
        return Err("expected <ledger.jsonl>".to_string());
    };
    let sink = TelemetrySink::noop();
    let load = load_merged(Path::new(ledger), &sink)?;
    if load.runs.is_empty() && load.skipped == 0 {
        println!("ledger is empty");
        return Ok(());
    }
    for run in &load.runs {
        let total = run.results.len();
        let ok = total - run.failed_experiments();
        let mut notes = Vec::new();
        for counter in ["retry.attempts", "sched.requeued", "cache.breaker.trips"] {
            let value = run.counter(counter);
            if value > 0 {
                notes.push(format!("{counter}={value}"));
            }
        }
        // schema-3 records minted by the serve daemon carry a request trace
        if let Some(trace) = &run.request {
            notes.push(format!(
                "tenant={} wait={}t exec={}t",
                trace.tenant, trace.queue_wait_ticks, trace.execute_ticks
            ));
        }
        let notes = if notes.is_empty() {
            String::new()
        } else {
            format!("  [{}]", notes.join(" "))
        };
        println!(
            "#{:<3} {}/{} on {:<9} {:>2}/{} experiments ok{}",
            run.sequence, run.benchmark, run.variant, run.system, ok, total, notes
        );
    }
    if load.skipped > 0 {
        println!(
            "({} corrupt or unknown-schema line(s) skipped)",
            load.skipped
        );
    }
    Ok(())
}

/// `benchpark fingerprints <ledger.jsonl|shard-root>` — lists every cached
/// experiment the ledger can satisfy: fingerprint, run sequence, provenance,
/// and status. This is exactly the index `benchpark trace --ledger` consults,
/// so it answers "what would a re-run skip?".
pub fn cmd_fingerprints(args: &[String]) -> Result<(), String> {
    use benchpark::core::FingerprintIndex;
    let [ledger] = args else {
        return Err("expected <ledger.jsonl>".to_string());
    };
    let sink = TelemetrySink::noop();
    let load = load_merged(Path::new(ledger), &sink)?;
    let index = FingerprintIndex::from_ledger(&load);
    if index.is_empty() {
        println!("no reusable experiment records (run `benchpark trace --export` first)");
        return Ok(());
    }
    for entry in index.iter() {
        println!(
            "{}  #{:<3} {}/{} on {:<9} {}",
            entry.fingerprint,
            entry.sequence,
            entry.benchmark,
            entry.variant,
            entry.system,
            entry.result.experiment
        );
    }
    println!(
        "{} reusable experiment record(s) across {} run(s)",
        index.len(),
        load.runs.len()
    );
    Ok(())
}

/// `benchpark regress <ledger.jsonl|shard-root> [--threshold P]` — replays
/// the ledger into a metrics database and scans every (benchmark, system,
/// FOM) triple for regressions, directions inferred from FOM units. Exits
/// non-zero when any triple regressed.
///
/// `benchpark regress --bench <BENCH.json>... [--threshold P]` — the same
/// statistical gate applied to the repository's own bench trajectory: the
/// files are a chronological series of `benchpark bench` reports, and the
/// last one is compared against the medians of all the earlier ones. The
/// default threshold is coarser (10%) because bench wall-clock numbers cross
/// machines in CI; see `docs/perf/methodology.md`.
pub fn cmd_regress(args: &[String]) -> Result<(), String> {
    let mut threshold: Option<f64> = None;
    let mut bench_mode = false;
    let mut absolute = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().ok_or("--threshold needs a value")?;
                threshold = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--threshold expects a number, got `{value}`"))?,
                );
            }
            "--bench" => bench_mode = true,
            "--absolute" => absolute = true,
            _ => positional.push(arg),
        }
    }
    if bench_mode {
        return cmd_regress_bench(&positional, threshold.unwrap_or(0.10), absolute);
    }
    if absolute {
        return Err("--absolute only applies to --bench trajectories".to_string());
    }
    let threshold = threshold.unwrap_or(0.05);
    let [ledger] = positional.as_slice() else {
        return Err("expected <ledger.jsonl> [--threshold P]".to_string());
    };
    let sink = TelemetrySink::recording();
    let load = load_merged(Path::new(ledger), &sink)?;
    if load.skipped > 0 {
        eprintln!(
            "warning: skipped {} corrupt or unknown-schema ledger line(s)",
            load.skipped
        );
    }
    if load.runs.is_empty() {
        return Err(format!("ledger `{ledger}` holds no readable runs"));
    }
    let db = load.to_database();
    let reports = scan_regressions(&db, threshold);
    if reports.is_empty() {
        println!(
            "no FOM has enough history for a verdict ({} run(s) loaded; need >= 3 with successes)",
            load.runs.len()
        );
        return Ok(());
    }
    let mut regressed = 0usize;
    for report in &reports {
        println!("{}", report.render());
        if report.regressed {
            regressed += 1;
        }
    }
    if regressed > 0 {
        Err(format!(
            "{regressed} of {} FOM histories regressed beyond {:.0}%",
            reports.len(),
            threshold * 100.0
        ))
    } else {
        println!(
            "\nall {} FOM histories within {:.0}% of baseline",
            reports.len(),
            threshold * 100.0
        );
        Ok(())
    }
}

/// The `--bench` arm of [`cmd_regress`]: parses each file as a
/// [`benchpark::core::BenchReport`], compares the last against the earlier
/// ones, prints one verdict per bench, and exits non-zero when any bench
/// regressed beyond the threshold *and* the 2σ noise band.
fn cmd_regress_bench(files: &[&String], threshold: f64, absolute: bool) -> Result<(), String> {
    use benchpark::core::{
        calibration_speed_factor, compare_bench_reports, compare_bench_reports_calibrated,
        BenchReport,
    };
    if files.len() < 2 {
        return Err(
            "expected at least two BENCH_*.json files in chronological order (baseline... latest)"
                .to_string(),
        );
    }
    let mut reports = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read bench report `{file}`: {e}"))?;
        let report =
            BenchReport::parse(&text).map_err(|e| format!("bench report `{file}`: {e}"))?;
        reports.push(report);
    }
    let refs: Vec<&BenchReport> = reports.iter().collect();
    let comparisons = if absolute {
        compare_bench_reports(&refs, threshold)
    } else {
        compare_bench_reports_calibrated(&refs, threshold)
    };
    if !absolute {
        match calibration_speed_factor(&refs) {
            Some(factor) => println!(
                "machine speed vs baseline: {factor:.2}x (geometric mean over shared benches; \
                 uniform shifts are calibrated out — pass --absolute to compare raw numbers)"
            ),
            None => println!(
                "trajectory not calibratable (fewer than two shared benches); comparing raw numbers"
            ),
        }
    }
    if comparisons.is_empty() {
        println!(
            "no bench in the latest report has a baseline sighting across {} earlier report(s)",
            reports.len() - 1
        );
        return Ok(());
    }
    let mut regressed = 0usize;
    let mut improved = 0usize;
    for comparison in &comparisons {
        println!("{}", comparison.render());
        if comparison.regressed {
            regressed += 1;
        }
        if comparison.improved {
            improved += 1;
        }
    }
    let fresh = reports
        .last()
        .map(|r| r.results.len() - comparisons.len())
        .unwrap_or(0);
    if fresh > 0 {
        println!("({fresh} bench(es) have no baseline yet and were skipped)");
    }
    if regressed > 0 {
        Err(format!(
            "{regressed} of {} bench trajectories regressed beyond {:.0}%",
            comparisons.len(),
            threshold * 100.0
        ))
    } else {
        println!(
            "\nall {} bench trajectories within {:.0}% of baseline ({improved} improved)",
            comparisons.len(),
            threshold * 100.0
        );
        Ok(())
    }
}
