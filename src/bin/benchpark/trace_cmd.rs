//! `benchpark trace` — the one-shot instrumented pipeline, built on the
//! same staged setup → execute → collect path the serve daemon schedules.

use benchpark::core::{gate_failed_experiments, load_ledger, Benchpark, MetricsDatabase};
use benchpark::telemetry::TelemetrySink;
use std::path::Path;

/// Runs the full setup → run → analyze pipeline with a recording telemetry
/// sink and prints the span tree, counters, and observations. With
/// `--faults`, a seeded transient-fault plan (flaky binary-cache fetches
/// plus one mid-run node failure) strikes the pipeline; the resilience
/// counters (`retry.attempts`, `cache.breaker.trips`, `sched.requeued`)
/// appear in the report. `--jobs N` sets the execution-engine worker
/// count for package installs; the engine guarantees the reports are
/// byte-identical for any `N`, so this only changes wall-clock behaviour.
///
/// `--export DIR` additionally writes the observability bundle (canonical +
/// wall Chrome traces, folded flamegraph, Prometheus text) into `DIR` and
/// appends the run to `DIR/ledger.jsonl` for later `benchpark history` /
/// `benchpark regress`. `--format json` prints the full report as one JSON
/// document instead of the text rendering. Unless `--allow-failed` is given,
/// the command exits non-zero when any experiment did not succeed (after
/// exporting, so failed runs still leave artifacts to debug).
///
/// Incremental re-benchmarking: when a run ledger is available — `--ledger
/// PATH`, or `DIR/ledger.jsonl` implied by `--export DIR` — each generated
/// experiment's content-addressed fingerprint is looked up in it, and
/// experiments with a valid successful record are *not* re-executed; their
/// stored FOMs and criteria are spliced into the report, marked `[cached]`.
/// Any input change (template, system config, application definition,
/// concrete spec, experiment variables) changes the fingerprint, so nothing
/// stale is ever reused. `--force` re-executes hits anyway (and appends the
/// fresh results). Only freshly executed experiments are appended to the
/// ledger — spliced results never re-enter it. `--template FILE` substitutes
/// a user-supplied `ramble.yaml` for the built-in experiment template (the
/// §4 path; pairs with `benchpark template` to dump a starting point).
pub fn cmd_trace(args: &[String]) -> Result<(), String> {
    use benchpark::core::{FingerprintIndex, RunSpec};
    use benchpark::ramble::AnalyzeReport;
    use std::path::PathBuf;

    let mut faults = false;
    let mut jobs: Option<usize> = None;
    let mut export: Option<String> = None;
    let mut format = "text".to_string();
    let mut allow_failed = false;
    let mut ledger_path: Option<String> = None;
    let mut force = false;
    let mut template_file: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--faults" => faults = true,
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a value")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got `{value}`"))?;
                if parsed == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(parsed);
            }
            "--export" => {
                let dir = iter.next().ok_or("--export needs a directory")?;
                export = Some(dir.clone());
            }
            "--format" => {
                let fmt = iter.next().ok_or("--format needs a value (text|json)")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("unknown format `{fmt}` (text|json)"));
                }
                format = fmt.clone();
            }
            "--allow-failed" => allow_failed = true,
            "--ledger" => {
                let path = iter.next().ok_or("--ledger needs a path")?;
                ledger_path = Some(path.clone());
            }
            "--force" => force = true,
            "--template" => {
                let path = iter.next().ok_or("--template needs a file")?;
                template_file = Some(path.clone());
            }
            _ => positional.push(arg),
        }
    }
    let [experiment, system, workspace_dir] = positional.as_slice() else {
        return Err(
            "expected <benchmark>/<variant> <system> <workspace_dir> [--faults] [--jobs N] \
             [--export <dir>] [--ledger <path>] [--force] [--template <file>] \
             [--format text|json] [--allow-failed]"
                .to_string(),
        );
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;

    let sink = TelemetrySink::recording();
    let mut benchpark = Benchpark::new().with_telemetry(sink.clone());
    if let Some(jobs) = jobs {
        benchpark = benchpark.with_jobs(jobs);
    }
    if faults {
        let nodes = benchpark::core::SystemProfile::by_name(system)
            .ok_or_else(|| format!("unknown system `{system}`"))?
            .machine()
            .nodes
            .saturating_sub(1);
        benchpark = benchpark.with_fault_plan(benchpark::serve::demo_fault_plan(system)?);
        println!("fault plan active: flaky cache fetches + {nodes}-node failure at t=0.25s\n");
    }

    // a --ledger path wins; --export DIR implies DIR/ledger.jsonl
    let ledger_file: Option<PathBuf> = ledger_path.map(PathBuf::from).or_else(|| {
        export
            .as_ref()
            .map(|dir| Path::new(dir).join("ledger.jsonl"))
    });
    let index: Option<FingerprintIndex> = match &ledger_file {
        Some(path) if path.exists() => {
            let load = load_ledger(path, &sink)?;
            Some(FingerprintIndex::from_ledger(&load))
        }
        _ => None,
    };

    let mut spec = RunSpec::new(benchmark, variant, system, workspace_dir);
    if let Some(path) = &template_file {
        let template = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read template `{path}`: {e}"))?;
        spec = spec.with_template(template);
    }
    let collected = benchpark.run_request(&spec, index.as_ref(), force)?;

    let db = MetricsDatabase::new();
    db.record(
        system,
        benchmark,
        variant,
        &collected.manifest,
        &collected.results,
    );
    let report = sink.report().expect("recording sink has a report");
    db.record_telemetry(system, &report);

    if let Some(dir) = &export {
        let dir = Path::new(dir);
        let mut written = benchpark::obs::export_all(&report, dir)?;
        let all_fingerprints: Vec<(String, String)> = collected
            .fingerprints
            .iter()
            .map(|(name, fp)| (name.clone(), fp.hex()))
            .collect();
        written.push(benchpark::obs::export_results(
            &collected.results,
            &all_fingerprints,
            dir,
        )?);
        let ledger = dir.join("ledger.jsonl");
        // the ledger is a measurement log: only freshly executed results
        // are appended, each stamped with its fingerprint
        match collected.to_record(Some(&report)) {
            None => {
                eprintln!(
                    "exported {} into {}; every experiment was cached — {} unchanged",
                    written.join(", "),
                    dir.display(),
                    ledger.display()
                );
            }
            Some(mut record) => {
                let sequence = benchpark::core::append_run(&ledger, &mut record)?;
                eprintln!(
                    "exported {} into {} and appended run #{sequence} to {}",
                    written.join(", "),
                    dir.display(),
                    ledger.display()
                );
            }
        }
    }

    if format == "json" {
        println!("{}", benchpark::obs::report_to_json(&report));
    } else {
        let rendered = AnalyzeReport {
            results: collected.results.clone(),
        };
        print!("{}", rendered.render());
        if let Some(plan) = &collected.plan {
            println!("{}", plan.summary());
        }
        println!();
        print!("{}", report.render());
        println!(
            "\nrecorded {} telemetry FOMs into the metrics database alongside {} benchmark results",
            report.counters.len() + report.observations.len(),
            collected.results.len()
        );
    }
    gate_failed_experiments(&collected.results, allow_failed)
}
