//! One-shot workspace subcommands: `list`, `skeleton`, `setup`, `run`,
//! `fig14`, `template`.

use benchpark::cluster::BcastAlgorithm;
use benchpark::core::{
    available_experiments, scaling, write_skeleton, Benchpark, MetricsDatabase, SystemProfile,
};

pub fn cmd_list(what: Option<&str>) -> Result<(), String> {
    match what {
        Some("systems") => {
            for profile in SystemProfile::all() {
                let machine = profile.machine();
                println!(
                    "{:<9} {:<52} {:>5} nodes  target={}",
                    profile.name,
                    machine.description,
                    machine.nodes,
                    machine.target().name
                );
            }
            Ok(())
        }
        Some("experiments") => {
            for (benchmark, variant) in available_experiments() {
                println!("{benchmark}/{variant}");
            }
            Ok(())
        }
        _ => Err("expected `list systems` or `list experiments`".to_string()),
    }
}

pub fn cmd_skeleton(dir: Option<&String>) -> Result<(), String> {
    let dir = dir.ok_or("skeleton needs a target directory")?;
    write_skeleton(dir).map_err(|e| e.to_string())?;
    println!("wrote Benchpark repository skeleton to {dir}");
    Ok(())
}

pub fn cmd_workspace(args: &[String], run: bool) -> Result<(), String> {
    let [experiment, system, workspace_dir] = args else {
        return Err("expected <benchmark>/<variant> <system> <workspace_dir>".to_string());
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;

    let benchpark = Benchpark::new();
    let mut ws = benchpark.setup_workspace(benchmark, variant, system, workspace_dir)?;
    println!("{}", ws.log.render());
    println!(
        "\n{} experiments rendered under {}/experiments/",
        ws.setup_report.experiments.len(),
        workspace_dir
    );
    if !run {
        for exp in &ws.setup_report.experiments {
            println!("  {}", exp.name);
        }
        return Ok(());
    }

    ws.run().map_err(|e| e.to_string())?;
    let analysis = ws.analyze(&benchpark).map_err(|e| e.to_string())?;
    println!("\n{}", analysis.render());
    let db = MetricsDatabase::new();
    db.record(
        system,
        benchmark,
        variant,
        &ws.manifest(),
        &analysis.results,
    );
    print!("{}", db.render_dashboard());
    Ok(())
}

/// `benchpark template <benchmark>/<variant>` — dumps the built-in
/// `ramble.yaml` experiment template to stdout. Redirect it to a file, edit,
/// and feed it back with `benchpark trace --template FILE`: the edit changes
/// every affected experiment's fingerprint, so exactly those experiments
/// re-run.
pub fn cmd_template(args: &[String]) -> Result<(), String> {
    use benchpark::core::experiment_template;
    let [experiment] = args else {
        return Err("expected <benchmark>/<variant>".to_string());
    };
    let (benchmark, variant) = experiment
        .split_once('/')
        .ok_or("experiment must be <benchmark>/<variant>")?;
    let template = experiment_template(benchmark, variant)
        .ok_or_else(|| format!("unknown experiment `{benchmark}/{variant}`"))?;
    print!("{template}");
    Ok(())
}

pub fn cmd_fig14(algorithm: Option<&str>) -> Result<(), String> {
    let algorithm = match algorithm {
        None | Some("linear") => None,
        Some("tree") => Some(BcastAlgorithm::BinomialTree),
        Some("sag") => Some(BcastAlgorithm::ScatterAllgather),
        Some(other) => return Err(format!("unknown algorithm `{other}` (linear|tree|sag)")),
    };
    let dir = std::env::temp_dir().join("benchpark-cli-fig14");
    let _ = std::fs::remove_dir_all(&dir);
    let db = MetricsDatabase::new();
    let study = scaling::bcast_scaling_study("cts1", algorithm, dir, &db)?;
    print!("{}", study.render());
    Ok(())
}
