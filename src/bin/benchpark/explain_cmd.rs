//! `benchpark explain <spec>` — dry-solve one spec and print the solver's
//! report: satisfiability, provider decisions, ambiguity and dead-variant
//! warnings, and (for unsatisfiable specs) the justification chain.

/// `benchpark explain <spec> [--system NAME] [--format text|json]`. Solves
/// against the named system profile (default: the example CTS site). Exits
/// non-zero when the spec is unsatisfiable, so scripts can gate on it.
pub fn cmd_explain(args: &[String]) -> Result<(), String> {
    use benchpark::concretizer::{analyze_spec, SiteConfig};
    use benchpark::core::SystemProfile;
    use benchpark::pkg::Repo;
    use benchpark::spec::Spec;

    let mut system: Option<String> = None;
    let mut format = "text".to_string();
    let mut spec_text: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--system" => {
                system = Some(iter.next().ok_or("--system needs a value")?.clone());
            }
            "--format" => {
                let fmt = iter.next().ok_or("--format needs a value (text|json)")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("unknown format `{fmt}` (text|json)"));
                }
                format = fmt.clone();
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown explain option `{other}`"));
            }
            other => match &mut spec_text {
                None => spec_text = Some(other.to_string()),
                // spec strings contain spaces; join loose words back together
                Some(text) => {
                    text.push(' ');
                    text.push_str(other);
                }
            },
        }
    }
    let text = spec_text.ok_or("explain needs a spec, e.g. `benchpark explain saxpy+openmp`")?;
    let spec: Spec = text
        .parse()
        .map_err(|e| format!("spec `{text}` does not parse: {e}"))?;

    let (site_name, config) = match &system {
        None => ("example_cts".to_string(), SiteConfig::example_cts()),
        Some(name) if name == "example_cts" => (name.clone(), SiteConfig::example_cts()),
        Some(name) => {
            let profile = SystemProfile::all()
                .into_iter()
                .find(|p| &p.name == name)
                .ok_or_else(|| {
                    let known: Vec<String> =
                        SystemProfile::all().into_iter().map(|p| p.name).collect();
                    format!(
                        "unknown system `{name}` (known: example_cts, {})",
                        known.join(", ")
                    )
                })?;
            (name.clone(), profile.site_config())
        }
    };

    let repo = Repo::builtin();
    let report = analyze_spec(&repo, &config, &spec, true);
    if format == "json" {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.satisfiable {
        Ok(())
    } else {
        Err(format!("spec `{text}` is unsatisfiable on {site_name}"))
    }
}
