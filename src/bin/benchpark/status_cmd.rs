//! `benchpark status` — render a serve daemon's status snapshot.
//!
//! Reads the `status.json` a daemon wrote (atomically, so it is safe to
//! read while the daemon is mid-drain via `--status-out`) and renders the
//! per-tenant table with stage latencies, rolling windows, and SLO
//! verdicts. `--format json` re-emits the raw snapshot; `--check` turns a
//! failing SLO into a non-zero exit for CI gates.

use benchpark::serve::StatusSnapshot;
use std::path::{Path, PathBuf};

/// `benchpark status <root|status.json> [--format text|json] [--check]`.
pub fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut target: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut check = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                if value != "text" && value != "json" {
                    return Err(format!("--format expects text or json, got `{value}`"));
                }
                format = value.clone();
            }
            "--check" => check = true,
            other if other.starts_with("--") => {
                return Err(format!("unexpected status argument `{other}`"));
            }
            other => {
                if target.is_some() {
                    return Err(format!("unexpected status argument `{other}`"));
                }
                target = Some(PathBuf::from(other));
            }
        }
    }
    let target = target
        .ok_or("usage: benchpark status <root|status.json> [--format text|json] [--check]")?;
    // a service root holds status.json; a file path is the snapshot itself
    let path = if target.is_dir() {
        target.join("status.json")
    } else {
        target
    };
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read status snapshot `{}`: {e} (did the daemon run with this root?)",
            path.display()
        )
    })?;
    let snapshot = StatusSnapshot::parse(&text)
        .map_err(|e| format!("malformed status snapshot `{}`: {e}", path.display()))?;
    if format == "json" {
        print!("{text}");
        if !text.ends_with('\n') {
            println!();
        }
    } else {
        print!("{}", snapshot.render());
    }
    if check && snapshot.has_failing_slo() {
        return Err(failing_summary(&snapshot, &path));
    }
    Ok(())
}

fn failing_summary(snapshot: &StatusSnapshot, path: &Path) -> String {
    let failing: Vec<&str> = snapshot
        .slo
        .iter()
        .filter(|s| s.verdict == "FAIL")
        .map(|s| s.target.as_str())
        .collect();
    format!(
        "SLO check failed ({}): {}",
        path.display(),
        failing.join("; ")
    )
}
