//! The `benchpark` command-line driver (paper Figure 1a, `bin/benchpark`;
//! Figure 1c step 2: `/bin/benchpark $experiment $system $workspace_dir`).
//!
//! ```text
//! benchpark list systems                 # available system profiles
//! benchpark list experiments             # available benchmark/variant pairs
//! benchpark tree                         # Figure 1a directory structure
//! benchpark table1                       # Table 1, regenerated
//! benchpark skeleton <dir>               # write the repository skeleton
//! benchpark setup <bench>/<variant> <system> <dir>   # steps 1–7
//! benchpark run   <bench>/<variant> <system> <dir>   # steps 1–9 + results
//! benchpark fig14 [linear|tree|sag]      # the Figure 14 scaling study
//! benchpark trace <bench>/<variant> <system> <dir> [--faults] [--jobs N]
//!                 [--export <dir>] [--format json] [--allow-failed]  # run + telemetry report
//! benchpark history <ledger.jsonl>       # replay a persisted run ledger
//! benchpark regress <ledger.jsonl> [--threshold P]  # cross-run regression scan
//! benchpark regress --bench <BENCH.json>... [--threshold P]  # bench-trajectory gate
//! benchpark bench [--quick] [--out PATH]  # run the hot-path suite, emit BENCH json
//! benchpark lint [paths...] [--deny warnings] [--solve] [--format json]  # static analysis
//! benchpark explain <spec> [--system NAME]   # dry-solve one spec, with justification
//! benchpark serve --root DIR --replay FILE [--jobs N] [--slo FILE]  # multi-tenant drain
//! benchpark submit --root DIR <tenant> <bench>/<variant> <system>  # spool a request
//! benchpark drain --root DIR [--jobs N]   # drain the spool
//! benchpark status <root> [--format json] [--check]  # service status + SLO verdicts
//! ```
//!
//! One module per subcommand family; this file is the dispatch table and the
//! usage text.

mod bench_cmd;
mod explain_cmd;
mod ledger_cmds;
mod lint_cmd;
mod serve_cmd;
mod status_cmd;
mod trace_cmd;
mod workspace_cmds;

use benchpark::core::{render_table1, render_tree};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => workspace_cmds::cmd_list(args.get(1).map(String::as_str)),
        Some("tree") => {
            print!("{}", render_tree());
            Ok(())
        }
        Some("table1") => {
            print!("{}", render_table1());
            Ok(())
        }
        Some("skeleton") => workspace_cmds::cmd_skeleton(args.get(1)),
        Some("setup") => workspace_cmds::cmd_workspace(&args[1..], false),
        Some("run") => workspace_cmds::cmd_workspace(&args[1..], true),
        Some("fig14") => workspace_cmds::cmd_fig14(args.get(1).map(String::as_str)),
        Some("trace") => trace_cmd::cmd_trace(&args[1..]),
        Some("history") => ledger_cmds::cmd_history(&args[1..]),
        Some("regress") => ledger_cmds::cmd_regress(&args[1..]),
        Some("bench") => bench_cmd::cmd_bench(&args[1..]),
        Some("fingerprints") => ledger_cmds::cmd_fingerprints(&args[1..]),
        Some("template") => workspace_cmds::cmd_template(&args[1..]),
        Some("lint") => lint_cmd::cmd_lint(&args[1..]),
        Some("explain") => explain_cmd::cmd_explain(&args[1..]),
        Some("serve") => serve_cmd::cmd_serve(&args[1..]),
        Some("submit") => serve_cmd::cmd_submit(&args[1..]),
        Some("drain") => serve_cmd::cmd_drain(&args[1..]),
        Some("status") => status_cmd::cmd_status(&args[1..]),
        _ => {
            eprintln!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("benchpark: error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  benchpark list systems|experiments
  benchpark tree
  benchpark table1
  benchpark skeleton <dir>
  benchpark setup <benchmark>/<variant> <system> <workspace_dir>
  benchpark run   <benchmark>/<variant> <system> <workspace_dir>
  benchpark fig14 [linear|tree|sag]
  benchpark trace <benchmark>/<variant> <system> <workspace_dir>
                  [--faults] [--jobs N] [--export <dir>] [--ledger <path>] [--force]
                  [--template <file>] [--format text|json] [--allow-failed]
  benchpark history <ledger.jsonl|shard-root>
  benchpark regress <ledger.jsonl|shard-root> [--threshold P]
  benchpark regress --bench <BENCH.json>... [--threshold P] [--absolute]
  benchpark bench [--quick] [--samples N] [--filter SUBSTR] [--out PATH] [--list]
  benchpark fingerprints <ledger.jsonl|shard-root>
  benchpark template <benchmark>/<variant>
  benchpark lint [paths...] [--deny warnings] [--solve] [--format text|json]
  benchpark explain <spec> [--system NAME] [--format text|json]
  benchpark serve --root DIR [--replay FILE] [--jobs N] [--max-queued N]
                  [--max-inflight N] [--global-queued N] [--quantum N]
                  [--report PATH] [--slo FILE] [--status-out PATH]
  benchpark submit --root DIR <tenant> <benchmark>/<variant> <system>
                   [faults] [template=PATH]
  benchpark drain --root DIR [--jobs N] [--report PATH] [--slo FILE]
                  [--status-out PATH]
  benchpark status <root|status.json> [--format text|json] [--check]

options:
  --faults   (trace) strike the run with a seeded transient-fault plan
  --jobs N   (trace) number of execution-engine workers for package installs
             (default 4; outcomes are byte-identical for any N >= 1)
  --export DIR      (trace) write trace.json (canonical Chrome trace),
                    trace.wall.json, flame.folded, metrics.prom into DIR and
                    append the run to DIR/ledger.jsonl
  --ledger PATH     (trace) consult PATH for cached experiment results by
                    content fingerprint and skip re-executing hits (defaults
                    to DIR/ledger.jsonl when --export DIR is given)
  --force           (trace) re-execute experiments even on fingerprint hits
  --template FILE   (trace) use FILE as the ramble.yaml experiment template
                    instead of the built-in one (see `benchpark template`)
  --allow-failed    (trace) exit 0 even when experiments failed
  --threshold P     (regress) relative regression threshold (default 0.05;
                    0.10 with --bench)
  --bench           (regress) compare BENCH_*.json reports (chronological
                    order; the last file is gated against the earlier ones)
                    instead of a FOM ledger. Reports are speed-calibrated:
                    each is normalized by its geometric-mean median over
                    the shared benches, so a uniformly slower machine does
                    not flag everything — only benches that moved relative
                    to the rest of the suite
  --absolute        (regress --bench) skip speed calibration and compare
                    raw medians (same-machine A/B runs)
  --quick           (bench) 3 timed samples instead of 7 (same workload
                    sizes, so medians stay comparable — for local
                    iteration; gates want the full 7 samples)
  --samples N       (bench) explicit timed sample count (minimum 2)
  --filter SUBSTR   (bench) run only benches whose name contains SUBSTR
  --out PATH        (bench) write the report to PATH (a directory gets the
                    conventional BENCH_<date>.json name inside it)
  --list            (bench) list bench names and exit without measuring
  --deny warnings   (lint) treat warnings as errors for the exit code
  --solve           (lint) also dry-concretize every spec in each set against
                    the set's own site configuration (BP05xx rules:
                    unsatisfiable specs with justification chains, dead
                    variants, ambiguous virtual providers, conflicting
                    constraint pairs)
  --system NAME     (explain) solve against this system profile
                    (default example_cts)
  --format FMT      (trace, lint, explain) output format: text (default)
                    or json
  --root DIR        (serve, submit, drain) the service root: ledger shards
                    under DIR/ledger/<tenant>/<system>.jsonl, FOM
                    transcripts under DIR/foms/, request spool at DIR/queue
  --replay FILE     (serve) intake requests from FILE instead of the spool
                    (one `<tenant> <benchmark>/<variant> <system> [faults]
                    [template=PATH]` per line; `#` comments allowed)
  --jobs N          (serve, drain) worker-pool width per scheduler batch
                    (default 1; shards and FOM transcripts are
                    byte-identical for any N >= 1)
  --max-queued N    (serve, drain) per-tenant queue quota (default 1024)
  --global-queued N (serve, drain) global queue quota (default 8192)
  --max-inflight N  (serve, drain) per-tenant in-flight cap per batch
                    (default 4)
  --quantum N       (serve, drain) deficit round-robin quantum (default 2)
  --report PATH     (serve, drain) also write the throughput report as JSON
                    to PATH
  --slo FILE        (serve, drain) evaluate declarative SLO targets (one
                    `<metric> <=|>= <threshold>` per line, e.g.
                    `p99_queue_wait <= 2048 ticks`) over fast/slow burn
                    horizons; verdicts land in the status snapshot
  --status-out PATH (serve, drain) atomically write the live status
                    snapshot (JSON) to PATH after every drain round; the
                    final snapshot always lands at DIR/status.json
  --check           (status) exit non-zero when any SLO verdict is FAIL";
